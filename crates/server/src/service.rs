//! The serving layer behind every transport — a thin, cache-aware shell
//! over the unified solver [`Engine`]: every solve/pareto request becomes
//! one [`Engine::solve`] call (capability filtering, exact-first
//! selection, portfolio racing and budget-cutoff fallback all live in the
//! engine), and this module adds what only a *service* can: the sharded
//! front cache (completeness-aware, keyed by the canonical instance
//! hash), batching (one front per distinct instance), chunked
//! `front_part` streaming, per-request deadlines and the fixed worker
//! pool. Threshold queries are reads off a front — fresh fronts are
//! engine answers, cached ones replay with their original
//! [`Provenance`].

use crate::admission::{Admission, ServingOptions};
use crate::cache::{CachedEntry, CachedFront, CachedResult, SolutionCache};
use crate::metrics::{CommandMetrics, ExplainMetrics, SolverMetrics};
use crate::protocol::{
    CacheFillResult, CacheStatsOut, Command, ErrorKind, ExplainResult, FrontEndResult,
    FrontPartResult, GenResult, Meta, ParetoPointOut, ParetoResult, Request, Response, RingResult,
    ServingStatsOut, SimulateResult, SolveResult, StatsResult, TraceEntryOut, TraceResult,
};
use crate::router::{AsyncForward, LocalRouter, Router};
use crossbeam::channel::{self, Sender};
use rpwf_algo::engine::{Answer, Engine, SolveRequest, Want};
use rpwf_algo::explain::{self, FrontOracle, OracleFront};
use rpwf_algo::front::{threshold_read, threshold_read_batch};
use rpwf_algo::{BiSolution, Explanation, Objective, Provenance};
use rpwf_core::budget::{Budget, CancelHandle};
use rpwf_core::hash::instance_key;
use rpwf_core::mapping::IntervalMapping;
use rpwf_core::pareto::ParetoFront;
use rpwf_core::platform::{FailureClass, Platform, PlatformClass};
use rpwf_core::stage::Pipeline;
use rpwf_core::trace::{Trace, TraceId, TraceScope};
use serde::Serialize;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Index of the root span in every per-request trace (opened first).
const ROOT_SPAN: u32 = 0;

/// Recent-window size of the slow-query ring: the [`Command::Trace`]
/// command reports the slowest of the last this-many traced requests.
const TRACE_RING: usize = 64;

/// The per-node slow-query ring: a bounded FIFO of recently traced
/// requests, reported slowest-first by the `Trace` command. Only requests
/// that opted in with `"trace": true` enter (untraced requests pay zero
/// cost), so one short lock per *traced* request is off the common path.
#[derive(Debug, Default)]
struct TraceLog {
    entries: Mutex<VecDeque<TraceEntryOut>>,
}

impl TraceLog {
    fn push(&self, entry: TraceEntryOut) {
        let mut entries = self.entries.lock().expect("trace log lock");
        if entries.len() == TRACE_RING {
            entries.pop_front();
        }
        entries.push_back(entry);
    }

    fn snapshot(&self, limit: usize) -> TraceResult {
        let mut entries: Vec<TraceEntryOut> = self
            .entries
            .lock()
            .expect("trace log lock")
            .iter()
            .cloned()
            .collect();
        entries.sort_by_key(|e| std::cmp::Reverse(e.elapsed_us));
        entries.truncate(limit);
        TraceResult {
            capacity: TRACE_RING,
            entries,
        }
    }

    fn len(&self) -> usize {
        self.entries.lock().expect("trace log lock").len()
    }
}

/// Fleet hook: produces the `Ring` command's payload (installed by a
/// `RingRouter`; absent on single-node services).
type RingReporter = Box<dyn Fn() -> Option<RingResult> + Send + Sync>;

/// Fleet hook: appends extra gauges to the `Metrics` text dump.
type MetricsExtension = Box<dyn Fn(&mut String) + Send + Sync>;

/// Transport hook: produces the `Stats` command's serving-plane payload
/// (installed by the reactor transport; absent on stdin/in-process
/// services, which have no serving plane to report).
type ServingReporter = Box<dyn Fn() -> ServingStatsOut + Send + Sync>;

/// Reactor hook on the [`WorkerPool`]: receives a worker-prepared
/// [`AsyncForward`] so the peer roundtrip runs as a nonblocking
/// continuation on the reactor instead of pinning the worker.
type ForwardSink = Box<dyn Fn(AsyncForward) + Send + Sync>;

/// Fleet hook: called after a **locally solved, complete** front lands in
/// the cache, so the fleet layer can replicate it to the key's ring
/// successor (`CacheFill`). Never called for fronts received *via*
/// `CacheFill` — that is what keeps replication loop-free even when ring
/// views disagree during a rollout.
type FrontStoredHook = Box<dyn Fn(&Pipeline, &Platform, u128, &CachedFront) + Send + Sync>;

/// Service tuning knobs.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads in the pool (0 = available parallelism).
    pub workers: usize,
    /// Cache entries across all shards (0 disables caching).
    pub cache_capacity: usize,
    /// Cache shards.
    pub cache_shards: usize,
    /// Seed for the heuristic portfolio (fixed ⇒ deterministic answers).
    pub seed: u64,
    /// Worker threads each exact branch-and-bound search runs on
    /// (`1` = sequential, `0` = one per available core). The effective
    /// count is capped so `solver threads × pool workers` never
    /// oversubscribes the machine — see
    /// [`ServiceConfig::effective_solver_threads`]. Answers are
    /// byte-identical at every thread count.
    pub solver_threads: usize,
    /// Fleet identity of this node (the `host:port` peers know it by),
    /// stamped into every response's `meta.node`. `None` outside fleet
    /// mode.
    pub node_id: Option<String>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 0,
            cache_capacity: 4096,
            cache_shards: 16,
            seed: 0xCAFE,
            solver_threads: 1,
            node_id: None,
        }
    }
}

impl ServiceConfig {
    /// The effective worker count (resolving 0 to the hardware).
    #[must_use]
    pub fn effective_workers(&self) -> usize {
        if self.workers == 0 {
            std::thread::available_parallelism().map_or(2, std::num::NonZeroUsize::get)
        } else {
            self.workers
        }
    }

    /// The solver-thread count the engine is actually built with:
    /// `solver_threads` (0 resolving to the core count), capped at
    /// `max(1, cores / effective_workers())` so a full worker pool of
    /// concurrent solves cannot oversubscribe the machine.
    #[must_use]
    pub fn effective_solver_threads(&self) -> usize {
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let requested = if self.solver_threads == 0 {
            cores
        } else {
            self.solver_threads
        };
        requested.min((cores / self.effective_workers()).max(1))
    }
}

/// The transport-independent solver service.
pub struct SolverService {
    config: ServiceConfig,
    engine: Engine,
    cache: SolutionCache,
    requests: AtomicU64,
    metrics: CommandMetrics,
    solver_metrics: SolverMetrics,
    explain_metrics: ExplainMetrics,
    trace_log: TraceLog,
    traces: AtomicU64,
    trace_spans: AtomicU64,
    started: Instant,
    ring_reporter: OnceLock<RingReporter>,
    metrics_ext: Mutex<Vec<MetricsExtension>>,
    front_stored: OnceLock<FrontStoredHook>,
    serving_stats: OnceLock<ServingReporter>,
}

impl SolverService {
    /// Builds a service.
    #[must_use]
    pub fn new(config: ServiceConfig) -> Self {
        let cache = SolutionCache::new(config.cache_capacity, config.cache_shards);
        let engine = Engine::with_parallel_backends(config.seed, config.effective_solver_threads());
        let solver_metrics =
            SolverMetrics::new(engine.solvers().iter().map(|s| s.name()).collect());
        SolverService {
            config,
            engine,
            cache,
            requests: AtomicU64::new(0),
            metrics: CommandMetrics::new(),
            solver_metrics,
            explain_metrics: ExplainMetrics::new(),
            trace_log: TraceLog::default(),
            traces: AtomicU64::new(0),
            trace_spans: AtomicU64::new(0),
            started: Instant::now(),
            ring_reporter: OnceLock::new(),
            metrics_ext: Mutex::new(Vec::new()),
            front_stored: OnceLock::new(),
            serving_stats: OnceLock::new(),
        }
    }

    /// The configuration in effect.
    #[must_use]
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The solver engine answering this service's requests.
    #[must_use]
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Installs the fleet hook behind the `Ring` command (first caller
    /// wins; a `RingRouter` installs it at construction).
    pub fn set_ring_reporter(&self, reporter: RingReporter) {
        let _ = self.ring_reporter.set(reporter);
    }

    /// Installs a hook appending gauges to the `Metrics` dump. Additive:
    /// every installed extension renders, in installation order (the
    /// fleet router and the reactor transport each contribute one).
    pub fn set_metrics_extension(&self, extension: MetricsExtension) {
        self.metrics_ext
            .lock()
            .expect("metrics extension lock")
            .push(extension);
    }

    /// Installs the transport hook behind the `Stats` command's `serving`
    /// payload (first caller wins; the reactor installs it at bind).
    pub fn set_serving_stats(&self, reporter: ServingReporter) {
        let _ = self.serving_stats.set(reporter);
    }

    /// Installs the fleet replication hook, called after every locally
    /// solved complete front is cached (first caller wins; a `RingRouter`
    /// with replication installs it at construction).
    pub fn set_front_stored_hook(&self, hook: FrontStoredHook) {
        let _ = self.front_stored.set(hook);
    }

    /// Snapshot of every live cache key.
    #[must_use]
    pub fn cache_keys(&self) -> Vec<u128> {
        self.cache.keys()
    }

    /// Snapshot of the live **front** cache keys — the entries keyed by
    /// the canonical instance hash ([`rpwf_core::hash::instance_key`]),
    /// i.e. the same space the fleet ring places. The fleet layer
    /// censuses these against ring ownership; per-query result entries
    /// (keyed by [`Command::cache_key`]) live in an unrelated hash space
    /// and are excluded.
    #[must_use]
    pub fn front_cache_keys(&self) -> Vec<u128> {
        self.cache
            .keys_where(|entry| matches!(entry, CachedEntry::Front(_)))
    }

    /// This node's fleet identity, stamped into response metadata.
    fn node(&self) -> Option<String> {
        self.config.node_id.clone()
    }

    /// Records a finished trace into the slow-query ring and the trace
    /// counters. Called by the request path for local traces and by the
    /// fleet router for merged entry+owner traces.
    pub(crate) fn record_trace(&self, entry: TraceEntryOut) {
        self.traces.fetch_add(1, Ordering::Relaxed);
        self.trace_spans
            .fetch_add(entry.spans.spans.len() as u64, Ordering::Relaxed);
        self.trace_log.push(entry);
    }

    /// Response metadata for solver-shaped answers.
    fn meta(
        &self,
        cache_hit: bool,
        solver: Option<Provenance>,
        exact_complete: Option<bool>,
        start: Instant,
    ) -> Meta {
        Meta {
            cache_hit,
            solver,
            exact_complete,
            elapsed_us: elapsed_us(start),
            node: self.node(),
            trace: None,
            explain: None,
        }
    }

    /// Response metadata with no solver provenance.
    fn meta_plain(&self, start: Instant) -> Meta {
        self.meta(false, None, None, start)
    }

    /// Parses and handles one request line received at `received`,
    /// producing the response line(s), newline-joined (streamed requests
    /// emit several lines; everything else emits one).
    #[must_use]
    pub fn handle_line(&self, line: &str, received: Instant) -> String {
        self.handle_line_cancellable(line, received, None)
    }

    /// [`handle_line`](Self::handle_line) with an optional cancellation
    /// handle linked into the request budget — the transport passes its
    /// per-connection handle so a dropped client aborts the solve.
    #[must_use]
    pub fn handle_line_cancellable(
        &self,
        line: &str,
        received: Instant,
        cancel: Option<&CancelHandle>,
    ) -> String {
        let mut lines: Vec<String> = Vec::with_capacity(1);
        self.handle_line_into(line, received, cancel, &mut |l| lines.push(l));
        lines.join("\n")
    }

    /// Parses and handles one request line, emitting each response line
    /// (no trailing newline) through `emit` as it is produced — the
    /// streaming entry point the transports use, so a chunked front never
    /// materializes as one string.
    pub fn handle_line_into(
        &self,
        line: &str,
        received: Instant,
        cancel: Option<&CancelHandle>,
        emit: &mut dyn FnMut(String),
    ) {
        let start = Instant::now();
        let trimmed = line.trim();
        if trimmed.is_empty() {
            emit(
                Response::error(
                    None,
                    ErrorKind::Invalid,
                    "empty request line",
                    self.meta_plain(start),
                )
                .to_line(),
            );
            return;
        }
        match serde_json::from_str::<Request>(trimmed) {
            Ok(request) => {
                self.handle_request_into(request, received, cancel, &mut |resp| {
                    emit(resp.to_line());
                });
            }
            Err(e) => emit(
                Response::error(
                    None,
                    ErrorKind::Invalid,
                    format!("malformed request: {e}"),
                    self.meta_plain(start),
                )
                .to_line(),
            ),
        }
    }

    /// Handles one parsed request, returning the **final** response (for
    /// streamed requests the preceding `part` responses are discarded —
    /// use [`handle_request_into`](Self::handle_request_into) to observe
    /// them). Panics anywhere in the handling path (including instance
    /// hashing — serde does not re-validate model invariants, so a
    /// structurally broken instance can panic deep in solver or digest
    /// code) are caught and reported as `internal` errors so a malformed
    /// instance cannot take a worker down.
    #[must_use]
    pub fn handle(&self, request: Request, received: Instant) -> Response {
        self.handle_cancellable(request, received, None)
    }

    /// [`handle`](Self::handle) with an optional cancellation handle
    /// linked into the request budget.
    #[must_use]
    pub fn handle_cancellable(
        &self,
        request: Request,
        received: Instant,
        cancel: Option<&CancelHandle>,
    ) -> Response {
        let mut last: Option<Response> = None;
        self.handle_request_into(request, received, cancel, &mut |resp| last = Some(resp));
        last.expect("every request produces at least one response")
    }

    /// Handles one parsed request, emitting every response (parts first,
    /// the fulfilling `ok`/`error` last). Panic-isolated per request.
    ///
    /// This is where a `"trace": true` request's collector comes to life:
    /// the root span opens here, backdated to `received` (the instant the
    /// transport read the line — "decode" covers the parse-and-queue
    /// window before dispatch), every layer below appends spans through
    /// it, and the finished tree is attached to the final response's
    /// `meta.trace` and pushed into the slow-query ring.
    pub fn handle_request_into(
        &self,
        request: Request,
        received: Instant,
        cancel: Option<&CancelHandle>,
        emit: &mut dyn FnMut(Response),
    ) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let start = Instant::now();
        let id = request.id;
        let name = request.cmd.name();
        let trace = request.trace.unwrap_or(false).then(|| {
            // A forwarded request continues the entry node's trace id so
            // the merged tree reads as one trace fleet-wide.
            let trace_id = request
                .trace_ctx
                .map_or_else(TraceId::next, |ctx| TraceId(ctx.id));
            let trace = Trace::new(trace_id, received);
            let root = trace.begin_root("request");
            trace.attr(ROOT_SPAN, "cmd", name);
            if let Some(node) = self.node() {
                trace.attr(ROOT_SPAN, "node", node);
            }
            if request.hop == Some(true) {
                trace.attr(ROOT_SPAN, "hop", "true");
            }
            trace.add("decode", Some(ROOT_SPAN), 0, trace.elapsed_us(), Vec::new());
            (trace, root)
        });
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut emit_traced = |mut resp: Response| {
                if let Some((trace, root)) = &trace {
                    if resp.status != "part" {
                        trace.end(root);
                        let tree = trace.finish();
                        self.record_trace(TraceEntryOut {
                            id: tree.id.0,
                            command: name.to_string(),
                            status: resp.status.clone(),
                            elapsed_us: tree.root().map_or(0, |r| r.elapsed_us),
                            node: self.node(),
                            spans: tree.clone(),
                        });
                        resp.meta.trace = Some(tree);
                    }
                }
                emit(resp);
            };
            let scope = trace
                .as_ref()
                .map(|(trace, _)| TraceScope::new(trace, ROOT_SPAN));
            self.handle_inner(request, received, start, cancel, scope, &mut emit_traced);
        }));
        if let Err(panic) = outcome {
            emit(Response::error(
                id,
                ErrorKind::Internal,
                format!("request handling panicked: {}", panic_message(&panic)),
                self.meta_plain(start),
            ));
        }
        self.metrics.record(name, elapsed_us(start));
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_inner(
        &self,
        request: Request,
        received: Instant,
        start: Instant,
        cancel: Option<&CancelHandle>,
        trace: Option<TraceScope<'_>>,
        emit: &mut dyn FnMut(Response),
    ) {
        let id = request.id;
        let mut budget = match request.deadline_ms {
            Some(ms) => Budget::with_deadline_at(received + Duration::from_millis(ms)),
            None => Budget::unlimited(),
        };
        if let Some(handle) = cancel {
            budget = budget.linked(handle);
        }
        let use_cache = !request.no_cache.unwrap_or(false);
        let explain = request.explain.unwrap_or(false);

        // Expensive commands check the budget only *after* their cache
        // lookup (each handler does, via `doomed_solve`): a request whose
        // deadline expired while queued is still answered instantly when
        // its front or result sits in the cache.
        match request.cmd {
            Command::Solve {
                pipeline,
                platform,
                objective,
            } => emit(self.handle_solve(
                id, &pipeline, &platform, objective, &budget, use_cache, explain, start, trace,
            )),
            Command::Explain {
                pipeline,
                platform,
                objective,
            } => emit(self.handle_explain(
                id, &pipeline, &platform, objective, &budget, use_cache, start, trace,
            )),
            Command::Pareto {
                pipeline,
                platform,
                chunk,
            } => self.handle_pareto(
                id, &pipeline, &platform, chunk, &budget, use_cache, start, trace, emit,
            ),
            Command::Simulate {
                pipeline,
                platform,
                trials,
            } => emit(self.handle_simulate(
                id, &pipeline, &platform, trials, &budget, use_cache, start, trace,
            )),
            Command::CacheFill {
                pipeline,
                platform,
                front,
                complete,
                solver,
                exact_capable,
            } => emit(self.handle_cache_fill(
                id,
                &pipeline,
                &platform,
                front,
                complete,
                solver,
                exact_capable,
                start,
            )),
            cmd => emit(match self.dispatch_simple(&cmd) {
                Ok(result) => Response::ok(id, result, self.meta_plain(start)),
                Err((kind, message)) => Response::error(id, kind, message, self.meta_plain(start)),
            }),
        }
    }

    // -- Front-shaped commands --------------------------------------------

    /// Threshold solve = front read. The front comes from the cache when a
    /// usable entry exists; otherwise the request collapses onto one
    /// [`Engine::solve`] call — the engine picks the backends, races the
    /// portfolio and handles budget cutoffs — and any front built along
    /// the way goes back into the cache (completeness-aware) for every
    /// later query over the same instance.
    #[allow(clippy::too_many_arguments)]
    fn handle_solve(
        &self,
        id: Option<u64>,
        pipeline: &Pipeline,
        platform: &Platform,
        objective: Objective,
        budget: &Budget,
        use_cache: bool,
        explain: bool,
        start: Instant,
        trace: Option<TraceScope<'_>>,
    ) -> Response {
        let pipeline = pipeline.clone().with_rebuilt_cache();
        let key = use_cache.then(|| instance_key(&pipeline, platform));

        // 1. Answer from a cached front when one is usable.
        let lookup_start = trace.map(|scope| scope.trace.elapsed_us());
        let cached = key.and_then(|k| self.usable_cached_front(k, budget));
        cache_span(
            trace,
            "front",
            lookup_start,
            cached.is_some(),
            cached.as_ref().map(|hit| hit.complete),
        );
        if let Some(hit) = cached {
            if let Some(sol) = threshold_read(&hit.front, objective) {
                return Response::ok(
                    id,
                    solve_result(sol),
                    self.meta(true, Some(hit.solver), Some(hit.complete), start),
                );
            }
            if hit.complete {
                // A complete front proves infeasibility.
                let mut meta = self.meta(true, Some(hit.solver), Some(true), start);
                if explain {
                    meta.explain = Some(self.attach_explanation(
                        &pipeline, platform, objective, budget, use_cache, trace,
                    ));
                }
                return Response::infeasible(
                    id,
                    objective,
                    format!("no mapping satisfies {objective:?}"),
                    meta,
                );
            }
            // Incomplete front with no satisfying point: solve fresh.
        }
        if let Some(timeout) = self.doomed_solve(id, budget, start) {
            return timeout;
        }

        // 2. The per-query result cache applies only when the engine has
        //    no front to share (no exact front backend, or caching off):
        //    fronts amortize across thresholds, point answers cannot.
        //    The capability probe repeats inside Engine::solve; the scan
        //    is a handful of class/bound checks (E18 bounds the whole
        //    dispatch at ≲1% of a solve), accepted to keep the
        //    cache-policy decision out of the engine.
        let keep_front = key.is_some() && self.engine.front_backend(&pipeline, platform).is_some();
        let qkey = (!keep_front)
            .then(|| {
                use_cache
                    .then(|| {
                        Command::Solve {
                            pipeline: pipeline.clone(),
                            platform: platform.clone(),
                            objective,
                        }
                        .cache_key()
                    })
                    .flatten()
            })
            .flatten();
        if let Some(k) = qkey {
            let lookup_start = trace.map(|scope| scope.trace.elapsed_us());
            let hit = match self.cache.get(k) {
                Some(CachedEntry::Result(hit)) => Some(hit),
                _ => None,
            };
            cache_span(trace, "result", lookup_start, hit.is_some(), None);
            if let Some(hit) = hit {
                return Response::ok(
                    id,
                    hit.result,
                    self.meta(true, hit.solver, hit.exact_complete, start),
                );
            }
        }

        // 3. One engine call answers the request, whatever the instance.
        let report = self.engine.solve_traced(
            &SolveRequest {
                pipeline: &pipeline,
                platform,
                want: Want::Point {
                    objective,
                    keep_front,
                },
                budget,
            },
            trace,
        );
        self.solver_metrics.record(&report.stats);
        if let (Some(k), Some(artifact)) = (key, &report.front) {
            let write_start = trace.map(|scope| scope.trace.elapsed_us());
            self.store_front(
                &pipeline,
                platform,
                k,
                Arc::clone(&artifact.front),
                artifact.complete,
                artifact.provenance,
                artifact.exact_capable,
            );
            cache_write_span(trace, "front", write_start, Some(artifact.complete));
        }
        let completeness = report.completeness;
        match report.answer {
            Answer::Point(Some(sol)) => {
                let result = solve_result(sol);
                // Cutoff answers may be beaten by a rerun with more
                // budget; never let them poison the cache. (Front-backed
                // answers cache the front above instead.)
                if report.front.is_none() {
                    if let (Some(k), true) = (qkey, completeness.cacheable_point()) {
                        self.cache.insert(
                            k,
                            CachedEntry::Result(CachedResult {
                                result: result.clone(),
                                solver: report.provenance,
                                exact_complete: Some(completeness.exact_complete),
                            }),
                        );
                    }
                }
                Response::ok(
                    id,
                    result,
                    self.meta(
                        false,
                        report.provenance,
                        Some(completeness.exact_complete),
                        start,
                    ),
                )
            }
            Answer::Point(None) if completeness.exact_complete => {
                let mut meta = self.meta_plain(start);
                if explain {
                    meta.explain = Some(self.attach_explanation(
                        &pipeline, platform, objective, budget, use_cache, trace,
                    ));
                }
                Response::infeasible(
                    id,
                    objective,
                    format!("no mapping satisfies {objective:?}"),
                    meta,
                )
            }
            Answer::Point(None) if budget.is_exhausted() => Response::error(
                id,
                ErrorKind::Timeout,
                "deadline expired before any feasible solution was found",
                self.meta_plain(start),
            ),
            Answer::Point(None) => {
                let mut meta = self.meta_plain(start);
                if explain {
                    meta.explain = Some(self.attach_explanation(
                        &pipeline, platform, objective, budget, use_cache, trace,
                    ));
                }
                Response::infeasible(
                    id,
                    objective,
                    format!(
                        "no feasible solution found for {objective:?} \
                         (heuristic search; not a proof of infeasibility)"
                    ),
                    meta,
                )
            }
            Answer::Front(_) | Answer::Explain(_) => {
                unreachable!("point request yields a point answer")
            }
        }
    }

    /// The `Explain` command: MARCO-style MUS/MCS enumeration over the
    /// query's constraint universe plus the nearest-feasible what-if,
    /// with engine front solves as the sat oracle and the front cache in
    /// the loop (complete fronts only — see [`ServiceOracle`]). Routed by
    /// instance key like `Solve`, so every fleet entry node lands it on
    /// the same owner and the payload is byte-identical wherever it
    /// enters the fleet.
    #[allow(clippy::too_many_arguments)]
    fn handle_explain(
        &self,
        id: Option<u64>,
        pipeline: &Pipeline,
        platform: &Platform,
        objective: Objective,
        budget: &Budget,
        use_cache: bool,
        start: Instant,
        trace: Option<TraceScope<'_>>,
    ) -> Response {
        let pipeline = pipeline.clone().with_rebuilt_cache();
        if let Some(timeout) = self.doomed_solve(id, budget, start) {
            return timeout;
        }
        let explanation =
            self.build_explanation(&pipeline, platform, objective, budget, use_cache, trace);
        let solver = if explanation.proven {
            Provenance::Exact
        } else {
            Provenance::Heuristic
        };
        let meta = self.meta(
            explanation.oracle_cached > 0,
            Some(solver),
            Some(explanation.proven),
            start,
        );
        Response::ok(
            id,
            ExplainResult::from_explanation(&explanation).to_value(),
            meta,
        )
    }

    /// Builds the opt-in `meta.explain` payload attached to infeasible
    /// `Solve` responses: the same explanation a standalone `Explain`
    /// command returns, from the same oracle, so the two renderings are
    /// byte-identical.
    fn attach_explanation(
        &self,
        pipeline: &Pipeline,
        platform: &Platform,
        objective: Objective,
        budget: &Budget,
        use_cache: bool,
        trace: Option<TraceScope<'_>>,
    ) -> ExplainResult {
        let explanation =
            self.build_explanation(pipeline, platform, objective, budget, use_cache, trace);
        ExplainResult::from_explanation(&explanation)
    }

    /// Runs the MARCO enumeration and the relaxation read against the
    /// service oracle, recording the `explain.marco` / `explain.relax`
    /// trace spans and the explain metrics.
    fn build_explanation(
        &self,
        pipeline: &Pipeline,
        platform: &Platform,
        objective: Objective,
        budget: &Budget,
        use_cache: bool,
        trace: Option<TraceScope<'_>>,
    ) -> Explanation {
        let mut oracle = ServiceOracle {
            service: self,
            budget,
            use_cache,
        };
        let marco_start = trace.map(|scope| scope.trace.elapsed_us());
        let outcome = explain::marco(pipeline, platform, objective, &mut oracle);
        if let Some(scope) = trace {
            let span_start = marco_start.unwrap_or(0);
            scope.trace.add(
                "explain.marco",
                Some(scope.parent),
                span_start,
                scope.trace.elapsed_us().saturating_sub(span_start),
                vec![
                    ("feasible".to_owned(), outcome.feasible.to_string()),
                    ("oracle_calls".to_owned(), outcome.oracle_calls.to_string()),
                    (
                        "oracle_cached".to_owned(),
                        outcome.oracle_cached.to_string(),
                    ),
                ],
            );
        }
        let relax_start = trace.map(|scope| scope.trace.elapsed_us());
        let explanation = explain::assemble(objective, platform, &outcome);
        if let Some(scope) = trace {
            let span_start = relax_start.unwrap_or(0);
            let mut attrs = vec![("proven".to_owned(), explanation.proven.to_string())];
            if let Some(relaxation) = explanation.relaxation {
                attrs.push(("axis".to_owned(), relaxation.axis.to_owned()));
            }
            scope.trace.add(
                "explain.relax",
                Some(scope.parent),
                span_start,
                scope.trace.elapsed_us().saturating_sub(span_start),
                attrs,
            );
        }
        self.explain_metrics.record(&explanation);
        explanation
    }

    /// The Pareto command: produce (or fetch) the front, then render it as
    /// one `ParetoResult` line or stream it as `front_part` chunks of at
    /// most `chunk` points closed by a `front_end` line.
    #[allow(clippy::too_many_arguments)]
    fn handle_pareto(
        &self,
        id: Option<u64>,
        pipeline: &Pipeline,
        platform: &Platform,
        chunk: Option<usize>,
        budget: &Budget,
        use_cache: bool,
        start: Instant,
        trace: Option<TraceScope<'_>>,
        emit: &mut dyn FnMut(Response),
    ) {
        if chunk == Some(0) {
            emit(Response::error(
                id,
                ErrorKind::Invalid,
                "chunk must be at least 1 point",
                self.meta_plain(start),
            ));
            return;
        }
        let pipeline = pipeline.clone().with_rebuilt_cache();
        let key = use_cache.then(|| instance_key(&pipeline, platform));

        let lookup_start = trace.map(|scope| scope.trace.elapsed_us());
        let cached = key.and_then(|k| self.usable_cached_front(k, budget));
        cache_span(
            trace,
            "front",
            lookup_start,
            cached.is_some(),
            cached.as_ref().map(|hit| hit.complete),
        );
        let (entry, cache_hit) = match cached {
            Some(hit) => (hit, true),
            None => {
                if let Some(timeout) = self.doomed_solve(id, budget, start) {
                    emit(timeout);
                    return;
                }
                // One engine call: the exact front backend where one
                // applies, the heuristic portfolio sweep beyond — the
                // command answers on every instance, flagged by
                // completeness.
                let report = self.engine.solve_traced(
                    &SolveRequest {
                        pipeline: &pipeline,
                        platform,
                        want: match chunk {
                            Some(chunk) => Want::FrontStream { chunk },
                            None => Want::Front,
                        },
                        budget,
                    },
                    trace,
                );
                self.solver_metrics.record(&report.stats);
                let complete = report.completeness.exact_complete;
                let exact_capable = report.completeness.exact_capable;
                let solver = report.provenance.unwrap_or(Provenance::Heuristic);
                let front = match report.answer {
                    Answer::Front(front) => front,
                    Answer::Point(_) | Answer::Explain(_) => {
                        unreachable!("front request yields a front answer")
                    }
                };
                if front.is_empty() && !complete {
                    emit(Response::error(
                        id,
                        ErrorKind::Timeout,
                        "deadline expired before any Pareto point was found",
                        self.meta_plain(start),
                    ));
                    return;
                }
                if let Some(k) = key {
                    let write_start = trace.map(|scope| scope.trace.elapsed_us());
                    self.store_front(
                        &pipeline,
                        platform,
                        k,
                        Arc::clone(&front),
                        complete,
                        solver,
                        exact_capable,
                    );
                    cache_write_span(trace, "front", write_start, Some(complete));
                }
                (
                    CachedFront {
                        front,
                        complete,
                        solver,
                        exact_capable,
                    },
                    false,
                )
            }
        };

        let meta =
            |start: Instant| self.meta(cache_hit, Some(entry.solver), Some(entry.complete), start);
        match chunk {
            None => emit(Response::ok(
                id,
                ParetoResult {
                    points: entry.front.iter().map(pareto_point_out).collect(),
                    complete: entry.complete,
                }
                .to_value(),
                meta(start),
            )),
            Some(size) => {
                let mut parts = 0u64;
                for points in entry.front.chunks(size) {
                    emit(Response::part(
                        id,
                        FrontPartResult {
                            seq: parts,
                            points: points.iter().map(pareto_point_out).collect(),
                        }
                        .to_value(),
                        meta(start),
                    ));
                    parts += 1;
                }
                emit(Response::ok(
                    id,
                    FrontEndResult {
                        complete: entry.complete,
                        parts,
                        points_total: entry.front.len() as u64,
                    }
                    .to_value(),
                    meta(start),
                ));
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_simulate(
        &self,
        id: Option<u64>,
        pipeline: &Pipeline,
        platform: &Platform,
        trials: Option<usize>,
        budget: &Budget,
        use_cache: bool,
        start: Instant,
        trace: Option<TraceScope<'_>>,
    ) -> Response {
        let qkey = use_cache
            .then(|| {
                Command::Simulate {
                    pipeline: pipeline.clone(),
                    platform: platform.clone(),
                    trials,
                }
                .cache_key()
            })
            .flatten();
        if let Some(k) = qkey {
            let lookup_start = trace.map(|scope| scope.trace.elapsed_us());
            let hit = match self.cache.get(k) {
                Some(CachedEntry::Result(hit)) => Some(hit),
                _ => None,
            };
            cache_span(trace, "result", lookup_start, hit.is_some(), None);
            if let Some(hit) = hit {
                return Response::ok(
                    id,
                    hit.result,
                    self.meta(true, hit.solver, hit.exact_complete, start),
                );
            }
        }
        if let Some(timeout) = self.doomed_solve(id, budget, start) {
            return timeout;
        }
        let pipeline = pipeline.clone().with_rebuilt_cache();
        let trials = trials.unwrap_or(10_000).clamp(1, 10_000_000);
        let safest = rpwf_algo::mono::minimize_failure(&pipeline, platform);
        let mc = rpwf_sim::MonteCarlo {
            trials,
            ..Default::default()
        };
        let mc_span = trace.map(|scope| scope.trace.begin("simulate.mc", Some(scope.parent)));
        let (report, complete) = mc.run_with_budget(&pipeline, platform, &safest.mapping, budget);
        if let (Some(scope), Some(handle)) = (trace, mc_span) {
            scope.trace.end(&handle);
            scope
                .trace
                .attr(handle.index(), "trials", report.trials.to_string());
            scope
                .trace
                .attr(handle.index(), "complete", complete.to_string());
        }
        if report.trials == 0 {
            return Response::error(
                id,
                ErrorKind::Timeout,
                "deadline expired before any Monte Carlo trial ran",
                self.meta_plain(start),
            );
        }
        let result = SimulateResult {
            mapping_display: safest.mapping.to_string(),
            analytic_fp: safest.failure_prob,
            mc_failure_rate: 1.0 - report.success_rate,
            wilson95: report.wilson95,
            trials: report.trials,
            latency_min: report.latency.min,
            latency_mean: report.latency.mean,
            latency_max: report.latency.max,
        }
        .to_value();
        // A cut-off sample is a valid but smaller estimate; never cache it
        // in place of the full run.
        if let (Some(k), true) = (qkey, complete) {
            self.cache.insert(
                k,
                CachedEntry::Result(CachedResult {
                    result: result.clone(),
                    solver: Some(Provenance::Exact),
                    exact_complete: Some(complete),
                }),
            );
        }
        Response::ok(
            id,
            result,
            self.meta(false, Some(Provenance::Exact), Some(complete), start),
        )
    }

    // -- Plain commands ----------------------------------------------------

    fn dispatch_simple(&self, cmd: &Command) -> Result<serde::Value, (ErrorKind, String)> {
        match cmd {
            Command::Ping => Ok(serde::Value::Str("pong".into())),
            Command::Stats => {
                let cache = self.cache.stats();
                Ok(StatsResult {
                    workers: self.config.effective_workers(),
                    requests: self.requests.load(Ordering::Relaxed),
                    cache: CacheStatsOut {
                        shards: self.cache.shard_count(),
                        capacity: self.cache.capacity(),
                        entries: cache.entries,
                        hits: cache.hits,
                        misses: cache.misses,
                        evictions: cache.evictions,
                    },
                    commands: self.metrics.summaries(),
                    solvers: self.solver_metrics.snapshot(),
                    serving: self.serving_stats.get().map(|reporter| reporter()),
                }
                .to_value())
            }
            Command::Metrics => Ok(serde::Value::Str(self.render_metrics())),
            Command::Trace { limit } => {
                // Node-local like `Ring`: each node reports its own
                // slow-query ring; a fleet-wide view is one `trace` call
                // per node.
                Ok(self.trace_log.snapshot(limit.unwrap_or(16)).to_value())
            }
            Command::Ring => {
                // Fleet mode: the RingRouter's installed reporter answers;
                // single-node services report themselves as a solo ring.
                let result = self
                    .ring_reporter
                    .get()
                    .and_then(|reporter| reporter())
                    .unwrap_or_else(|| {
                        let node = self.config.node_id.clone().unwrap_or_else(|| "solo".into());
                        RingResult {
                            nodes: vec![node.clone()],
                            node,
                            vnodes: 0,
                            replicas: 1,
                            // Front keys only — the same unit fleet mode
                            // reports, so the field compares across
                            // deployments.
                            owned_cache_keys: self.front_cache_keys().len() as u64,
                            replica_cache_keys: 0,
                            foreign_cache_keys: 0,
                            hops_received: 0,
                            failovers: 0,
                            forwards: Vec::new(),
                        }
                    });
                Ok(result.to_value())
            }
            Command::Gen {
                class,
                failure,
                n,
                m,
                seed,
            } => {
                let class = match class.as_str() {
                    "fh" => PlatformClass::FullyHomogeneous,
                    "ch" => PlatformClass::CommHomogeneous,
                    "het" => PlatformClass::FullyHeterogeneous,
                    other => {
                        return Err((
                            ErrorKind::Invalid,
                            format!("class must be fh|ch|het, got {other:?}"),
                        ))
                    }
                };
                let failure = match failure.as_str() {
                    "hom" => FailureClass::Homogeneous,
                    "het" => FailureClass::Heterogeneous,
                    other => {
                        return Err((
                            ErrorKind::Invalid,
                            format!("failure must be hom|het, got {other:?}"),
                        ))
                    }
                };
                let (n, m) = (*n, *m);
                if n == 0 || m == 0 || n > 64 || m > 64 {
                    return Err((
                        ErrorKind::Invalid,
                        format!("gen size out of range: n={n}, m={m}"),
                    ));
                }
                let inst = rpwf_gen::make_instance(class, failure, n, m, *seed);
                Ok(GenResult {
                    pipeline: inst.pipeline,
                    platform: inst.platform,
                }
                .to_value())
            }
            Command::Solve { .. }
            | Command::Pareto { .. }
            | Command::Explain { .. }
            | Command::Simulate { .. }
            | Command::CacheFill { .. } => {
                unreachable!("front-shaped commands are dispatched by handle_inner")
            }
        }
    }

    /// The Prometheus-style plain-text metrics dump served by the
    /// `Metrics` command.
    #[must_use]
    pub fn render_metrics(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let cache = self.cache.stats();
        writeln!(out, "rpwf_workers {}", self.config.effective_workers()).expect("write");
        writeln!(
            out,
            "rpwf_engine_solver_threads {}",
            self.engine.solver_threads()
        )
        .expect("write");
        writeln!(
            out,
            "rpwf_requests_total {}",
            self.requests.load(Ordering::Relaxed)
        )
        .expect("write");
        writeln!(out, "rpwf_cache_hits_total {}", cache.hits).expect("write");
        writeln!(out, "rpwf_cache_misses_total {}", cache.misses).expect("write");
        writeln!(out, "rpwf_cache_evictions_total {}", cache.evictions).expect("write");
        writeln!(out, "rpwf_cache_entries {}", cache.entries).expect("write");
        writeln!(out, "rpwf_cache_capacity {}", self.cache.capacity()).expect("write");
        // Ratio gauge: 0 when no lookup happened yet (not NaN).
        let lookups = cache.hits + cache.misses;
        let hit_ratio = if lookups == 0 {
            0.0
        } else {
            cache.hits as f64 / lookups as f64
        };
        writeln!(out, "rpwf_cache_hit_ratio {hit_ratio:.6}").expect("write");
        writeln!(
            out,
            "rpwf_uptime_seconds {}",
            self.started.elapsed().as_secs()
        )
        .expect("write");
        writeln!(
            out,
            "rpwf_build_info{{version=\"{}\"}} 1",
            env!("CARGO_PKG_VERSION")
        )
        .expect("write");
        writeln!(
            out,
            "rpwf_trace_requests_total {}",
            self.traces.load(Ordering::Relaxed)
        )
        .expect("write");
        writeln!(
            out,
            "rpwf_trace_spans_total {}",
            self.trace_spans.load(Ordering::Relaxed)
        )
        .expect("write");
        writeln!(out, "rpwf_trace_slowlog_entries {}", self.trace_log.len()).expect("write");
        // Per-shard counters expose hot-shard skew the aggregate hides.
        for (i, shard) in self.cache.shard_stats().iter().enumerate() {
            writeln!(
                out,
                "rpwf_cache_shard_hits_total{{shard=\"{i}\"}} {}",
                shard.hits
            )
            .expect("write");
            writeln!(
                out,
                "rpwf_cache_shard_misses_total{{shard=\"{i}\"}} {}",
                shard.misses
            )
            .expect("write");
            writeln!(
                out,
                "rpwf_cache_shard_evictions_total{{shard=\"{i}\"}} {}",
                shard.evictions
            )
            .expect("write");
            writeln!(
                out,
                "rpwf_cache_shard_entries{{shard=\"{i}\"}} {}",
                shard.entries
            )
            .expect("write");
        }
        self.metrics.render_prometheus(&mut out);
        self.solver_metrics.render_prometheus(&mut out);
        self.explain_metrics.render_prometheus(&mut out);
        for extension in self
            .metrics_ext
            .lock()
            .expect("metrics extension lock")
            .iter()
        {
            extension(&mut out);
        }
        out
    }

    // -- Front cache -------------------------------------------------------

    /// A cached front usable for this request: complete fronts always;
    /// incomplete fronts only when the request itself carries a
    /// **deadline** (best-effort is the contract anyway — a mere
    /// cancellation link, which every TCP request has, does not count) or
    /// when no exact backend could do better. Never lets a cutoff
    /// masquerade as exact — the entry's `complete` flag travels into
    /// `meta.exact_complete`.
    fn usable_cached_front(&self, key: u128, budget: &Budget) -> Option<CachedFront> {
        let deadline_bound = budget.remaining().is_some();
        match self.cache.get(key) {
            Some(CachedEntry::Front(hit)) => {
                (hit.complete || deadline_bound || !hit.exact_capable).then_some(hit)
            }
            _ => None,
        }
    }

    /// Caches a **locally solved** front and, when it landed and is
    /// complete, fires the fleet replication hook so the key's ring
    /// successor gets a `CacheFill`. Fronts arriving *via* `CacheFill` go
    /// through [`store_front_raw`](Self::store_front_raw) instead — fills
    /// are terminal, never re-replicated.
    #[allow(clippy::too_many_arguments)]
    fn store_front(
        &self,
        pipeline: &Pipeline,
        platform: &Platform,
        key: u128,
        front: Arc<ParetoFront<IntervalMapping>>,
        complete: bool,
        solver: Provenance,
        exact_capable: bool,
    ) {
        let entry = CachedFront {
            front,
            complete,
            solver,
            exact_capable,
        };
        let stored = self.store_front_raw(key, entry.clone());
        if stored && complete {
            if let Some(hook) = self.front_stored.get() {
                hook(pipeline, platform, key, &entry);
            }
        }
    }

    /// Inserts a front, never letting an incomplete one replace a complete
    /// incumbent or a *richer* incomplete one (fewer points would degrade
    /// every later best-effort read), and never caching an empty cutoff
    /// (it carries no answers, only the false impression of one). Returns
    /// whether the entry actually landed.
    fn store_front_raw(&self, key: u128, entry: CachedFront) -> bool {
        if !entry.complete && entry.front.is_empty() {
            return false;
        }
        let points = entry.front.len();
        let complete = entry.complete;
        self.cache
            .insert_if(key, CachedEntry::Front(entry), |existing| match existing {
                CachedEntry::Front(old) => complete || (!old.complete && points >= old.front.len()),
                CachedEntry::Result(_) => true,
            })
    }

    /// Replica fill: a peer that just solved an instance pushes the front
    /// to this node (the key's ring successor), so the replica answers
    /// warm if the primary dies. The write goes through the same
    /// completeness-aware insert policy as a local solve — a fill never
    /// degrades a richer incumbent — and never re-fires the replication
    /// hook, which keeps replication loop-free even when two nodes' ring
    /// views disagree about who owns the key during a membership change.
    #[allow(clippy::too_many_arguments)]
    fn handle_cache_fill(
        &self,
        id: Option<u64>,
        pipeline: &Pipeline,
        platform: &Platform,
        front: ParetoFront<IntervalMapping>,
        complete: bool,
        solver: Provenance,
        exact_capable: bool,
        start: Instant,
    ) -> Response {
        if !front.invariant_holds() {
            return Response::error(
                id,
                ErrorKind::Invalid,
                "cache_fill front violates the Pareto dominance invariant",
                self.meta_plain(start),
            );
        }
        let pipeline = pipeline.clone().with_rebuilt_cache();
        let key = instance_key(&pipeline, platform);
        let points = front.len() as u64;
        let stored = self.store_front_raw(
            key,
            CachedFront {
                front: Arc::new(front),
                complete,
                solver,
                exact_capable,
            },
        );
        Response::ok(
            id,
            CacheFillResult { stored, points }.to_value(),
            self.meta_plain(start),
        )
    }

    /// A structured timeout for a request whose budget is already gone —
    /// checked *after* the cache lookup, so queued-past-deadline requests
    /// with cached answers are still served, and before any compute
    /// starts, so a doomed solve never occupies a worker.
    fn doomed_solve(&self, id: Option<u64>, budget: &Budget, start: Instant) -> Option<Response> {
        budget.is_exhausted().then(|| {
            Response::error(
                id,
                ErrorKind::Timeout,
                "deadline expired or request cancelled before solving started",
                self.meta_plain(start),
            )
        })
    }

    /// Pre-computes (and caches) the complete front for an instance, so a
    /// batch of threshold queries over it is answered by front reads. Used
    /// by batch grouping; a no-op when caching is disabled, when a usable
    /// front is already cached, or when no exact front backend applies
    /// (queried through the engine's capability surface). Panics from
    /// malformed instances are contained (the per-request path will report
    /// them as structured errors).
    pub fn warm_front(&self, pipeline: &Pipeline, platform: &Platform) {
        if self.cache.capacity() == 0 {
            return;
        }
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let pipeline = pipeline.clone().with_rebuilt_cache();
            let key = instance_key(&pipeline, platform);
            if let Some(CachedEntry::Front(hit)) = self.cache.get(key) {
                if hit.complete || !hit.exact_capable {
                    return;
                }
            }
            if self.engine.front_backend(&pipeline, platform).is_none() {
                return;
            }
            let report = self.engine.solve(&SolveRequest {
                pipeline: &pipeline,
                platform,
                want: Want::Front,
                budget: &Budget::unlimited(),
            });
            self.solver_metrics.record(&report.stats);
            let complete = report.completeness.exact_complete;
            let provenance = report.provenance.unwrap_or(Provenance::Exact);
            let exact_capable = report.completeness.exact_capable;
            if let Answer::Front(front) = report.answer {
                self.store_front(
                    &pipeline,
                    platform,
                    key,
                    front,
                    complete,
                    provenance,
                    exact_capable,
                );
            }
        }));
    }

    /// Answers a group of threshold queries over one instance from its
    /// cached **complete** front in a single vectorized sweep
    /// ([`threshold_read_batch`]) — `None` when no complete front is
    /// cached under `key` (callers fall back to the per-request path).
    /// Each `(slot, id, objective)` query yields `(slot, response)`; the
    /// responses are byte-identical to what the per-request cache-hit
    /// path produces (same payload rendering, same metadata, same proven
    /// infeasibility on a complete front), and the request/latency
    /// counters advance exactly as if each query had been handled alone.
    #[must_use]
    pub fn read_solves_from_front(
        &self,
        key: u128,
        queries: &[(usize, Option<u64>, Objective)],
    ) -> Option<Vec<(usize, Response)>> {
        let hit = match self.cache.get(key) {
            Some(CachedEntry::Front(hit)) if hit.complete => hit,
            _ => return None,
        };
        let objectives: Vec<Objective> = queries.iter().map(|&(_, _, o)| o).collect();
        let answers = threshold_read_batch(&hit.front, &objectives);
        let responses = queries
            .iter()
            .zip(answers)
            .map(|(&(slot, id, objective), answer)| {
                // Per-query clock: each response's elapsed_us and
                // histogram sample covers its own rendering, not the
                // whole batch so far.
                let start = Instant::now();
                self.requests.fetch_add(1, Ordering::Relaxed);
                let meta = self.meta(true, Some(hit.solver), Some(true), start);
                let response = match answer {
                    Some(sol) => Response::ok(id, solve_result(sol), meta),
                    // The front is complete, so an empty read proves
                    // infeasibility — same contract (and same structured
                    // `bound` echo) as the per-request path.
                    None => Response::infeasible(
                        id,
                        objective,
                        format!("no mapping satisfies {objective:?}"),
                        meta,
                    ),
                };
                self.metrics.record("solve", elapsed_us(start));
                (slot, response)
            })
            .collect();
        Some(responses)
    }
}

/// The service-side sat oracle behind explanations: engine front solves
/// with the front cache in the loop. Only **complete** cached fronts are
/// served from the cache — an incomplete front's shape depends on which
/// node solved it and under what budget, and explanations must be
/// byte-identical from every fleet entry node — and every freshly solved
/// front goes back through the same completeness-aware store (and fleet
/// replication hook) as a solve, so an explanation warms the cache for
/// later queries over the same (possibly relaxed) instances.
struct ServiceOracle<'a> {
    service: &'a SolverService,
    budget: &'a Budget,
    use_cache: bool,
}

impl FrontOracle for ServiceOracle<'_> {
    fn front(&mut self, pipeline: &Pipeline, platform: &Platform, _variant: u8) -> OracleFront {
        let key = self.use_cache.then(|| instance_key(pipeline, platform));
        if let Some(k) = key {
            if let Some(CachedEntry::Front(hit)) = self.service.cache.get(k) {
                if hit.complete {
                    return OracleFront {
                        front: hit.front,
                        complete: true,
                        cached: true,
                    };
                }
            }
        }
        let report = self.service.engine.solve(&SolveRequest {
            pipeline,
            platform,
            want: Want::Front,
            budget: self.budget,
        });
        self.service.solver_metrics.record(&report.stats);
        let complete = report.completeness.exact_complete;
        let exact_capable = report.completeness.exact_capable;
        let solver = report.provenance.unwrap_or(Provenance::Heuristic);
        let front = report
            .front_answer()
            .cloned()
            .unwrap_or_else(|| Arc::new(ParetoFront::new()));
        if let Some(k) = key {
            self.service.store_front(
                pipeline,
                platform,
                k,
                Arc::clone(&front),
                complete,
                solver,
                exact_capable,
            );
        }
        OracleFront {
            front,
            complete,
            cached: false,
        }
    }
}

/// Records a `cache.lookup` span covering a finished lookup. `kind` names
/// the entry class (`front` / `result`); `complete` (when known) records
/// the completeness tier of the hit.
fn cache_span(
    trace: Option<TraceScope<'_>>,
    kind: &str,
    start_us: Option<u64>,
    hit: bool,
    complete: Option<bool>,
) {
    let Some(scope) = trace else { return };
    let start = start_us.unwrap_or(0);
    let mut attrs = vec![
        ("kind".to_owned(), kind.to_owned()),
        ("hit".to_owned(), hit.to_string()),
    ];
    if let Some(complete) = complete {
        attrs.push(("complete".to_owned(), complete.to_string()));
    }
    scope.trace.add(
        "cache.lookup",
        Some(scope.parent),
        start,
        scope.trace.elapsed_us().saturating_sub(start),
        attrs,
    );
}

/// Records a `cache.write` span covering a finished insert.
fn cache_write_span(
    trace: Option<TraceScope<'_>>,
    kind: &str,
    start_us: Option<u64>,
    complete: Option<bool>,
) {
    let Some(scope) = trace else { return };
    let start = start_us.unwrap_or(0);
    let mut attrs = vec![("kind".to_owned(), kind.to_owned())];
    if let Some(complete) = complete {
        attrs.push(("complete".to_owned(), complete.to_string()));
    }
    scope.trace.add(
        "cache.write",
        Some(scope.parent),
        start,
        scope.trace.elapsed_us().saturating_sub(start),
        attrs,
    );
}

/// Renders a solution as the `Solve` result payload.
fn solve_result(sol: BiSolution) -> serde::Value {
    SolveResult {
        mapping_display: sol.mapping.to_string(),
        mapping: sol.mapping,
        latency: sol.latency,
        failure_prob: sol.failure_prob,
    }
    .to_value()
}

fn pareto_point_out(pt: &rpwf_core::pareto::ParetoPoint<IntervalMapping>) -> ParetoPointOut {
    ParetoPointOut {
        latency: pt.latency,
        failure_prob: pt.failure_prob,
        mapping_display: pt.payload.to_string(),
    }
}

fn elapsed_us(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX)
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic".into()
    }
}

// ---------------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------------

/// One queued request: the raw line, its receipt time (deadlines count
/// from here, including queue wait), where to deliver each response line
/// (streamed requests deliver several), and an optional cancellation
/// handle (shared per connection) linked into the request budget.
pub struct Job {
    /// Raw request line.
    pub line: String,
    /// Receipt instant.
    pub received: Instant,
    /// Response consumer, called once per response line in order.
    pub respond: Box<dyn FnMut(String) + Send>,
    /// Cancellation handle; firing it aborts the solve mid-flight.
    pub cancel: Option<CancelHandle>,
    /// Forces local handling, bypassing the router's placement: set by
    /// the reactor's async-forward machinery when every owning peer is
    /// unreachable (the fallback solve) — re-routing would just re-enter
    /// the forward path it came from.
    pub local: bool,
}

/// A fixed pool of solver workers fed by an MPMC channel. Every job goes
/// through the pool's [`Router`] — single-node pools route everything to
/// the local service ([`LocalRouter`]); fleet pools place each request on
/// the ring's owning node.
pub struct WorkerPool {
    router: Arc<dyn Router>,
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    admission: Arc<Admission>,
    forward_sink: Arc<OnceLock<ForwardSink>>,
}

impl WorkerPool {
    /// Spawns `service.config().effective_workers()` workers routing
    /// everything to `service` (single-node behavior).
    #[must_use]
    pub fn new(service: Arc<SolverService>) -> Self {
        Self::with_router(Arc::new(LocalRouter::new(service)))
    }

    /// Spawns a pool whose workers route jobs through `router`.
    #[must_use]
    pub fn with_router(router: Arc<dyn Router>) -> Self {
        Self::with_options(router, &ServingOptions::default())
    }

    /// [`with_router`](Self::with_router) with explicit serving-plane
    /// tuning — the queue bound and default admission deadline feed the
    /// pool's `Admission` controller (consulted by the reactor
    /// transport; direct `submit` callers are never shed).
    #[must_use]
    pub fn with_options(router: Arc<dyn Router>, options: &ServingOptions) -> Self {
        let count = router.service().config().effective_workers().max(1);
        let admission = Arc::new(Admission::new(
            options.effective_max_queue(),
            count,
            options.admission_deadline,
        ));
        let forward_sink: Arc<OnceLock<ForwardSink>> = Arc::new(OnceLock::new());
        let (tx, rx) = channel::unbounded::<Job>();
        let workers = (0..count)
            .map(|i| {
                let rx = rx.clone();
                let router = Arc::clone(&router);
                let admission = Arc::clone(&admission);
                let forward_sink = Arc::clone(&forward_sink);
                std::thread::Builder::new()
                    .name(format!("rpwf-worker-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            admission.on_dequeue();
                            let start = Instant::now();
                            let mut job = if job.local || forward_sink.get().is_none() {
                                job
                            } else {
                                // Reactor attached: a request owned by a
                                // reachable peer becomes a nonblocking
                                // continuation instead of pinning this
                                // worker for a network roundtrip.
                                match router.prepare_async_forward(job) {
                                    Ok(forward) => {
                                        (forward_sink.get().expect("checked above"))(forward);
                                        admission.on_complete(start.elapsed().as_micros() as u64);
                                        continue;
                                    }
                                    Err(job) => job,
                                }
                            };
                            if job.local {
                                router.service().handle_line_into(
                                    &job.line,
                                    job.received,
                                    job.cancel.as_ref(),
                                    &mut job.respond,
                                );
                            } else {
                                router.handle_line(
                                    &job.line,
                                    job.received,
                                    job.cancel.as_ref(),
                                    &mut job.respond,
                                );
                            }
                            admission.on_complete(start.elapsed().as_micros() as u64);
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool {
            router,
            tx: Some(tx),
            workers,
            admission,
            forward_sink,
        }
    }

    /// The pool's admission controller (shared with the reactor, which
    /// consults it before enqueueing and reports its counters).
    pub(crate) fn admission(&self) -> &Arc<Admission> {
        &self.admission
    }

    /// Installs the reactor's async-forward sink (first caller wins).
    /// Until one is installed, workers forward synchronously — the
    /// pre-reactor behavior every non-TCP entry point keeps.
    pub(crate) fn set_forward_sink(&self, sink: ForwardSink) {
        let _ = self.forward_sink.set(sink);
    }

    /// Enqueues a fully built [`Job`], keeping the admission queue-depth
    /// gauge exact. Every submission path funnels through here.
    pub(crate) fn submit_job(&self, job: Job) {
        self.admission.on_enqueue();
        assert!(
            self.tx
                .as_ref()
                .expect("pool alive while not dropped")
                .send(job)
                .is_ok(),
            "workers outlive the pool handle"
        );
    }

    /// The shared service.
    #[must_use]
    pub fn service(&self) -> &Arc<SolverService> {
        self.router.service()
    }

    /// The router the workers dispatch through.
    #[must_use]
    pub fn router(&self) -> &Arc<dyn Router> {
        &self.router
    }

    /// Enqueues a request line; each response line is passed to `respond`
    /// on a worker thread, in order.
    pub fn submit(&self, line: String, received: Instant, respond: Box<dyn FnMut(String) + Send>) {
        self.submit_cancellable(line, received, respond, None);
    }

    /// [`submit`](Self::submit) with a cancellation handle linked into
    /// the request budget — the TCP transport passes its per-connection
    /// handle here so a client disconnect aborts the connection's
    /// in-flight work.
    pub fn submit_cancellable(
        &self,
        line: String,
        received: Instant,
        respond: Box<dyn FnMut(String) + Send>,
        cancel: Option<CancelHandle>,
    ) {
        self.submit_job(Job {
            line,
            received,
            respond,
            cancel,
            local: false,
        });
    }

    /// Handles a batch of lines with **front grouping**: requests are
    /// grouped by the canonical instance hash and one complete Pareto
    /// front is computed per distinct `(pipeline, platform)` (in parallel
    /// across instances). Threshold queries over a grouped instance are
    /// then answered in one **vectorized sweep** over its cached front
    /// ([`rpwf_algo::front::threshold_read_batch`] — `k` sorted cutoffs in
    /// one pass instead of `k` binary searches); everything else is
    /// answered concurrently through the pool. Answers are byte-identical
    /// to per-request solving — the per-request path reads the same cached
    /// fronts, and the batch sweep is property-tested equal to independent
    /// reads. Responses come back in input order (a streamed request's
    /// lines are newline-joined into its slot).
    ///
    /// On a sharded (fleet) router the grouping pass is skipped — each
    /// request routes to its owning node, and grouping is that node's
    /// business.
    #[must_use]
    pub fn submit_batch(&self, lines: Vec<String>) -> Vec<String> {
        if self.router.is_sharded() {
            return self.submit_batch_ungrouped(lines);
        }
        // One parse pass shared by the warm and fast-read stages (the
        // worker path re-parses only the slots it actually handles).
        let parsed: Vec<Option<Request>> = lines
            .iter()
            .map(|line| serde_json::from_str::<Request>(line.trim()).ok())
            .collect();
        self.warm_batch_fronts(&parsed);
        let mut fast = self.batch_front_reads(&parsed);
        if fast.is_empty() {
            return self.submit_batch_ungrouped(lines);
        }
        let received = Instant::now();
        let n = lines.len();
        let (tx, rx) = channel::unbounded::<(usize, String)>();
        for (i, line) in lines.into_iter().enumerate() {
            if fast.contains_key(&i) {
                continue;
            }
            let tx = tx.clone();
            self.submit(
                line,
                received,
                Box::new(move |resp| {
                    let _ = tx.send((i, resp));
                }),
            );
        }
        drop(tx);
        let mut out: Vec<Vec<String>> = vec![Vec::new(); n];
        for (i, line) in fast.drain() {
            out[i].push(line);
        }
        while let Ok((i, resp)) = rx.recv() {
            out[i].push(resp);
        }
        out.into_iter().map(|lines| lines.join("\n")).collect()
    }

    /// [`submit_batch`](Self::submit_batch) without the grouping pass:
    /// every request is solved independently. The per-request baseline of
    /// the E16 batch-amortization experiment, and the right choice when a
    /// batch is known to have no shared instances.
    #[must_use]
    pub fn submit_batch_ungrouped(&self, lines: Vec<String>) -> Vec<String> {
        let received = Instant::now();
        let n = lines.len();
        let (tx, rx) = channel::unbounded::<(usize, String)>();
        for (i, line) in lines.into_iter().enumerate() {
            let tx = tx.clone();
            self.submit(
                line,
                received,
                Box::new(move |resp| {
                    let _ = tx.send((i, resp));
                }),
            );
        }
        drop(tx);
        let mut out: Vec<Vec<String>> = vec![Vec::new(); n];
        while let Ok((i, resp)) = rx.recv() {
            out[i].push(resp);
        }
        out.into_iter().map(|lines| lines.join("\n")).collect()
    }

    /// The grouping pass of [`submit_batch`](Self::submit_batch): collect
    /// the distinct instances behind the batch's front-shaped commands and
    /// warm the front cache for each, spreading the distinct solves over
    /// the configured worker parallelism. `no_cache` requests opt out of
    /// grouping (they would bypass the shared front anyway).
    fn warm_batch_fronts(&self, requests: &[Option<Request>]) {
        if self.service().config().cache_capacity == 0 {
            return; // nowhere to share fronts through
        }
        let mut distinct: HashMap<u128, (Pipeline, Platform)> = HashMap::new();
        for request in requests.iter().flatten() {
            if request.no_cache.unwrap_or(false) {
                continue;
            }
            // Malformed instances can panic inside the canonical digest;
            // skip them here and let the per-request path report the
            // structured error.
            let key =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| request.cmd.front_key()));
            let Ok(Some(key)) = key else { continue };
            if let Command::Solve {
                pipeline, platform, ..
            }
            | Command::Pareto {
                pipeline, platform, ..
            } = &request.cmd
            {
                distinct
                    .entry(key)
                    .or_insert_with(|| (pipeline.clone(), platform.clone()));
            }
        }
        if distinct.is_empty() {
            return;
        }
        let instances: Vec<(Pipeline, Platform)> = distinct.into_values().collect();
        let workers = self.service().config().effective_workers().max(1);
        let per_thread = instances.len().div_ceil(workers).max(1);
        let service = self.service();
        std::thread::scope(|scope| {
            for chunk in instances.chunks(per_thread) {
                scope.spawn(move || {
                    for (pipeline, platform) in chunk {
                        service.warm_front(pipeline, platform);
                    }
                });
            }
        });
    }

    /// The vectorized read pass of [`submit_batch`](Self::submit_batch):
    /// threshold (`Solve`) queries that share a warmed instance are
    /// answered together in one sorted sweep over its cached complete
    /// front. Returns the pre-answered response line per input slot;
    /// slots not answered here go through the normal per-request path.
    fn batch_front_reads(&self, requests: &[Option<Request>]) -> HashMap<usize, String> {
        let mut answered = HashMap::new();
        let service = self.service();
        if service.config().cache_capacity == 0 {
            return answered;
        }
        // Group the batch's plain threshold queries by instance.
        let mut groups: HashMap<u128, Vec<(usize, Option<u64>, Objective)>> = HashMap::new();
        for (i, request) in requests.iter().enumerate() {
            let Some(request) = request else { continue };
            if request.no_cache.unwrap_or(false) {
                continue;
            }
            // Traced requests keep the full per-request span path — the
            // vectorized sweep has no cache/engine spans to report.
            if request.trace.unwrap_or(false) {
                continue;
            }
            // Explain-flagged requests do too: an infeasible answer must
            // attach `meta.explain`, which the sweep does not build.
            if request.explain.unwrap_or(false) {
                continue;
            }
            let key =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| request.cmd.front_key()));
            let Ok(Some(key)) = key else { continue };
            if let Command::Solve { objective, .. } = &request.cmd {
                groups
                    .entry(key)
                    .or_default()
                    .push((i, request.id, *objective));
            }
        }
        for (key, group) in groups {
            // A single query gains nothing over the per-request read.
            if group.len() < 2 {
                continue;
            }
            let Some(responses) = service.read_solves_from_front(key, &group) else {
                continue;
            };
            for (slot, response) in responses {
                answered.insert(slot, response.to_line());
            }
        }
        answered
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Disconnect the channel, then wait for in-flight work.
        self.tx = None;
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpwf_algo::Objective;
    use serde::Deserialize as _;

    fn service() -> SolverService {
        SolverService::new(ServiceConfig {
            workers: 2,
            ..Default::default()
        })
    }

    fn solve_request(id: u64, latency_bound: f64) -> Request {
        Request {
            id: Some(id),
            deadline_ms: None,
            no_cache: None,
            hop: None,
            trace: None,
            trace_ctx: None,
            explain: None,
            cmd: Command::Solve {
                pipeline: rpwf_gen::figure5_pipeline(),
                platform: rpwf_gen::figure5_platform(),
                objective: Objective::MinFpUnderLatency(latency_bound),
            },
        }
    }

    #[test]
    fn ping_pongs() {
        let svc = service();
        let resp = svc.handle(
            Request {
                id: Some(1),
                deadline_ms: None,
                no_cache: None,
                hop: None,
                trace: None,
                trace_ctx: None,
                explain: None,
                cmd: Command::Ping,
            },
            Instant::now(),
        );
        assert_eq!(resp.status, "ok");
        assert_eq!(resp.result, Some(serde::Value::Str("pong".into())));
    }

    #[test]
    fn solve_figure5_is_exact_and_cached_on_repeat() {
        let svc = service();
        let first = svc.handle(solve_request(1, 22.0), Instant::now());
        assert_eq!(first.status, "ok", "{:?}", first.error);
        assert!(!first.meta.cache_hit);
        assert_eq!(first.meta.solver, Some(Provenance::Exact));
        assert_eq!(first.meta.exact_complete, Some(true));

        let second = svc.handle(solve_request(2, 22.0), Instant::now());
        assert_eq!(second.status, "ok");
        assert!(
            second.meta.cache_hit,
            "identical request must hit the cache"
        );
        // Byte-identical result payload.
        assert_eq!(
            serde_json::to_string(&first.result).unwrap(),
            serde_json::to_string(&second.result).unwrap()
        );
    }

    #[test]
    fn different_thresholds_share_one_cached_front() {
        let svc = service();
        let first = svc.handle(solve_request(1, 22.0), Instant::now());
        assert!(!first.meta.cache_hit);
        // A *different* threshold over the same instance is a read off the
        // same cached front — the front, not the query, is the cache unit.
        let other = svc.handle(solve_request(2, 30.0), Instant::now());
        assert_eq!(other.status, "ok", "{:?}", other.error);
        assert!(
            other.meta.cache_hit,
            "a new threshold over a cached instance must hit the front cache"
        );
        assert_eq!(other.meta.exact_complete, Some(true));
        // And the Pareto command reads the very same entry.
        let front = svc.handle(
            Request {
                id: Some(3),
                deadline_ms: None,
                no_cache: None,
                hop: None,
                trace: None,
                trace_ctx: None,
                explain: None,
                cmd: Command::Pareto {
                    pipeline: rpwf_gen::figure5_pipeline(),
                    platform: rpwf_gen::figure5_platform(),
                    chunk: None,
                },
            },
            Instant::now(),
        );
        assert_eq!(front.status, "ok");
        assert!(front.meta.cache_hit, "pareto shares the solve's front");
    }

    #[test]
    fn traced_solve_returns_span_tree_and_feeds_the_slow_log() {
        let svc = service();
        let mut req = solve_request(1, 22.0);
        req.trace = Some(true);
        let resp = svc.handle(req, Instant::now());
        assert_eq!(resp.status, "ok", "{:?}", resp.error);
        let tree = resp.meta.trace.expect("trace requested");
        let names: Vec<&str> = tree.spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names[0], "request");
        assert!(names.contains(&"decode"), "{names:?}");
        assert!(names.contains(&"cache.lookup"), "{names:?}");
        assert!(names.contains(&"engine.plan"), "{names:?}");
        assert!(names.contains(&"cache.write"), "{names:?}");
        assert!(names.iter().any(|n| n.starts_with("solver.")), "{names:?}");
        // Every non-root span fits inside the root's window.
        let root_elapsed = tree.root().unwrap().elapsed_us;
        for span in &tree.spans[1..] {
            assert!(
                span.start_us + span.elapsed_us <= root_elapsed + 1,
                "span {} [{}..{}] escapes the root window {root_elapsed}",
                span.name,
                span.start_us,
                span.start_us + span.elapsed_us,
            );
            assert!(span.parent.is_some(), "only the root is parentless");
        }

        // An untraced request carries no tree and does not enter the log.
        let plain = svc.handle(solve_request(2, 23.0), Instant::now());
        assert!(plain.meta.trace.is_none());

        // The slow-query ring lists the traced request.
        let dump = svc.handle(
            Request {
                id: Some(3),
                deadline_ms: None,
                no_cache: None,
                hop: None,
                trace: None,
                trace_ctx: None,
                explain: None,
                cmd: Command::Trace { limit: None },
            },
            Instant::now(),
        );
        assert_eq!(dump.status, "ok");
        let result = TraceResult::from_value(&dump.result.expect("result")).expect("shape");
        assert_eq!(result.entries.len(), 1);
        assert_eq!(result.entries[0].id, tree.id.0);
        assert_eq!(result.entries[0].command, "solve");
        assert_eq!(result.entries[0].spans, tree);
    }

    #[test]
    fn trace_counters_and_solver_metrics_reach_the_prometheus_dump() {
        let svc = service();
        let mut req = solve_request(1, 22.0);
        req.trace = Some(true);
        let _ = svc.handle(req, Instant::now());
        let dump = svc.render_metrics();
        assert!(dump.contains("rpwf_cache_hit_ratio "), "{dump}");
        assert!(dump.contains("rpwf_uptime_seconds "), "{dump}");
        assert!(dump.contains("rpwf_build_info{version="), "{dump}");
        assert!(dump.contains("rpwf_trace_requests_total 1"), "{dump}");
        assert!(dump.contains("rpwf_trace_slowlog_entries 1"), "{dump}");
        assert!(
            dump.contains("rpwf_engine_solver_calls_total{solver="),
            "{dump}"
        );
        // The solve above ran at least one engine backend.
        let stats = svc.handle(
            Request {
                id: Some(2),
                deadline_ms: None,
                no_cache: None,
                hop: None,
                trace: None,
                trace_ctx: None,
                explain: None,
                cmd: Command::Stats,
            },
            Instant::now(),
        );
        let result = StatsResult::from_value(&stats.result.expect("result")).expect("shape");
        assert!(
            result.solvers.iter().any(|s| s.calls > 0),
            "{:?}",
            result.solvers
        );
    }

    #[test]
    fn infeasible_threshold_from_a_cached_front_is_proven() {
        let svc = service();
        let _ = svc.handle(solve_request(1, 22.0), Instant::now());
        let impossible = svc.handle(solve_request(2, 1e-6), Instant::now());
        assert_eq!(impossible.status, "error");
        let err = impossible.error.expect("error body");
        assert_eq!(err.kind, "infeasible");
        let bound = err.bound.expect("structured bound");
        assert_eq!(bound.axis, "latency");
        assert_eq!(bound.value, 1e-6);
    }

    #[test]
    fn expired_deadline_yields_structured_timeout() {
        let svc = service();
        let mut req = solve_request(9, 22.0);
        req.deadline_ms = Some(0);
        // Received "long ago" relative to a 0 ms deadline.
        let resp = svc.handle(req, Instant::now() - Duration::from_millis(5));
        assert_eq!(resp.status, "error");
        let err = resp.error.expect("error body");
        assert_eq!(err.kind, "timeout");
    }

    #[test]
    fn cached_front_answers_even_after_the_deadline_expired() {
        // A request that sat in the queue past its deadline is still
        // served instantly when its instance's front is cached — the
        // budget check runs after the cache lookup, not before.
        let svc = service();
        let _ = svc.handle(solve_request(1, 22.0), Instant::now());
        let mut req = solve_request(2, 22.0);
        req.deadline_ms = Some(0);
        let resp = svc.handle(req, Instant::now() - Duration::from_millis(5));
        assert_eq!(resp.status, "ok", "{:?}", resp.error);
        assert!(resp.meta.cache_hit);
        assert_eq!(resp.meta.exact_complete, Some(true));
    }

    #[test]
    fn infeasible_is_reported_as_such() {
        let svc = service();
        let req = Request {
            id: None,
            deadline_ms: None,
            no_cache: None,
            hop: None,
            trace: None,
            trace_ctx: None,
            explain: None,
            cmd: Command::Solve {
                pipeline: Pipeline::uniform(2, 100.0, 100.0).unwrap(),
                platform: Platform::fully_homogeneous(3, 1.0, 1.0, 0.9).unwrap(),
                objective: Objective::MinFpUnderLatency(1.0),
            },
        };
        let resp = svc.handle(req, Instant::now());
        assert_eq!(resp.status, "error");
        let err = resp.error.expect("error body");
        assert_eq!(err.kind, "infeasible");
        let bound = err.bound.expect("structured bound");
        assert_eq!(bound.axis, "latency");
        assert_eq!(bound.value, 1.0);
    }

    fn impossible_request(id: u64, cmd: fn(Pipeline, Platform, Objective) -> Command) -> Request {
        Request {
            id: Some(id),
            deadline_ms: None,
            no_cache: None,
            hop: None,
            trace: None,
            trace_ctx: None,
            explain: None,
            cmd: cmd(
                Pipeline::uniform(2, 100.0, 100.0).unwrap(),
                Platform::fully_homogeneous(3, 1.0, 1.0, 0.9).unwrap(),
                Objective::MinFpUnderLatency(1.0),
            ),
        }
    }

    #[test]
    fn explain_command_enumerates_conflicts_and_what_ifs() {
        let svc = service();
        let resp = svc.handle(
            impossible_request(1, |pipeline, platform, objective| Command::Explain {
                pipeline,
                platform,
                objective,
            }),
            Instant::now(),
        );
        assert_eq!(resp.status, "ok", "{:?}", resp.error);
        assert_eq!(resp.meta.exact_complete, Some(true));
        let result: ExplainResult =
            serde_json::from_str(&serde_json::to_string(&resp.result).expect("serializes"))
                .expect("explain payload");
        assert!(!result.feasible);
        assert!(result.proven);
        assert_eq!(result.universe.len(), 4);
        assert!(!result.muses.is_empty());
        assert!(!result.mcses.is_empty());
        // Every conflict involves the bound (index 0): without it any
        // subset is trivially satisfiable.
        assert!(result.muses.iter().all(|mus| mus.contains(&0)));
        let relaxation = result.relaxation.expect("infeasible has a what-if");
        assert_eq!(relaxation.axis, "latency");
        assert!(relaxation.latency.expect("nearest latency") > 1.0);
    }

    #[test]
    fn explain_of_a_feasible_query_has_nothing_to_explain() {
        let svc = service();
        let resp = svc.handle(
            Request {
                id: Some(1),
                deadline_ms: None,
                no_cache: None,
                hop: None,
                trace: None,
                trace_ctx: None,
                explain: None,
                cmd: Command::Explain {
                    pipeline: rpwf_gen::figure5_pipeline(),
                    platform: rpwf_gen::figure5_platform(),
                    objective: Objective::MinFpUnderLatency(22.0),
                },
            },
            Instant::now(),
        );
        assert_eq!(resp.status, "ok", "{:?}", resp.error);
        let result: ExplainResult =
            serde_json::from_str(&serde_json::to_string(&resp.result).expect("serializes"))
                .expect("explain payload");
        assert!(result.feasible);
        assert!(result.muses.is_empty());
        assert!(result.mcses.is_empty());
        assert!(result.relaxation.is_none());
    }

    #[test]
    fn explain_flag_attaches_the_explanation_to_infeasible_solves() {
        let svc = service();
        // Feasible solves never carry `meta.explain`, flag or not.
        let mut ok = solve_request(1, 22.0);
        ok.explain = Some(true);
        let resp = svc.handle(ok, Instant::now());
        assert_eq!(resp.status, "ok", "{:?}", resp.error);
        assert!(resp.meta.explain.is_none());

        let mut req = impossible_request(2, |pipeline, platform, objective| Command::Solve {
            pipeline,
            platform,
            objective,
        });
        req.explain = Some(true);
        let resp = svc.handle(req, Instant::now());
        assert_eq!(resp.status, "error");
        assert_eq!(resp.error.expect("error body").kind, "infeasible");
        let attached = resp.meta.explain.expect("explanation attached");
        // Byte-identical with the standalone `Explain` command's payload.
        let standalone = svc.handle(
            impossible_request(3, |pipeline, platform, objective| Command::Explain {
                pipeline,
                platform,
                objective,
            }),
            Instant::now(),
        );
        let standalone: ExplainResult =
            serde_json::from_str(&serde_json::to_string(&standalone.result).expect("serializes"))
                .expect("explain payload");
        assert_eq!(attached, standalone);

        // Without the flag an infeasible solve stays lean.
        let bare = svc.handle(
            impossible_request(4, |pipeline, platform, objective| Command::Solve {
                pipeline,
                platform,
                objective,
            }),
            Instant::now(),
        );
        assert_eq!(bare.status, "error");
        assert!(bare.meta.explain.is_none());
    }

    #[test]
    fn explain_warms_the_front_cache_and_reuses_it() {
        let svc = service();
        let cold = svc.handle(
            impossible_request(1, |pipeline, platform, objective| Command::Explain {
                pipeline,
                platform,
                objective,
            }),
            Instant::now(),
        );
        assert_eq!(cold.status, "ok", "{:?}", cold.error);
        let warm = svc.handle(
            impossible_request(2, |pipeline, platform, objective| Command::Explain {
                pipeline,
                platform,
                objective,
            }),
            Instant::now(),
        );
        assert!(warm.meta.cache_hit, "warm explain reads cached fronts");
        // Identical payloads warm or cold — effort never leaks into them.
        assert_eq!(
            serde_json::to_string(&cold.result).expect("serializes"),
            serde_json::to_string(&warm.result).expect("serializes"),
        );
        let metrics = svc.render_metrics();
        assert!(metrics.contains("rpwf_explain_calls_total 2"), "{metrics}");
        assert!(
            metrics.contains("rpwf_explain_oracle_cached_total"),
            "{metrics}"
        );
    }

    #[test]
    fn malformed_line_is_invalid_not_a_crash() {
        let svc = service();
        let line = svc.handle_line("{not json", Instant::now());
        let resp: Response = serde_json::from_str(&line).expect("well-formed response");
        assert_eq!(resp.status, "error");
        assert_eq!(resp.error.expect("error body").kind, "invalid");
    }

    #[test]
    fn gen_stats_roundtrip() {
        let svc = service();
        let gen = svc.handle(
            Request {
                id: Some(5),
                deadline_ms: None,
                no_cache: None,
                hop: None,
                trace: None,
                trace_ctx: None,
                explain: None,
                cmd: Command::Gen {
                    class: "ch".into(),
                    failure: "het".into(),
                    n: 3,
                    m: 4,
                    seed: 11,
                },
            },
            Instant::now(),
        );
        assert_eq!(gen.status, "ok");
        let stats = svc.handle(
            Request {
                id: Some(6),
                deadline_ms: None,
                no_cache: None,
                hop: None,
                trace: None,
                trace_ctx: None,
                explain: None,
                cmd: Command::Stats,
            },
            Instant::now(),
        );
        assert_eq!(stats.status, "ok");
        let text = serde_json::to_string(&stats.result).unwrap();
        assert!(text.contains("\"workers\""), "{text}");
        assert!(text.contains("\"cache\""), "{text}");
        // The gen request above is summarized in the command histograms.
        assert!(text.contains("\"commands\""), "{text}");
        assert!(text.contains("\"command\":\"gen\""), "{text}");
    }

    #[test]
    fn metrics_dump_is_prometheus_style() {
        let svc = service();
        let _ = svc.handle(solve_request(1, 22.0), Instant::now());
        let resp = svc.handle(
            Request {
                id: Some(2),
                deadline_ms: None,
                no_cache: None,
                hop: None,
                trace: None,
                trace_ctx: None,
                explain: None,
                cmd: Command::Metrics,
            },
            Instant::now(),
        );
        assert_eq!(resp.status, "ok");
        let text = match resp.result.expect("metrics text") {
            serde::Value::Str(s) => s,
            other => panic!("metrics result must be text, got {other:?}"),
        };
        // The solve plus the metrics request itself.
        assert!(text.contains("rpwf_requests_total 2"), "{text}");
        assert!(text.contains("rpwf_cache_entries 1"), "{text}");
        assert!(
            text.contains("rpwf_command_requests_total{cmd=\"solve\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("rpwf_command_latency_us_count{cmd=\"solve\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn streamed_front_reassembles_to_the_one_shot_front() {
        let svc = service();
        let pareto = |id: u64, chunk: Option<usize>| Request {
            id: Some(id),
            deadline_ms: None,
            no_cache: Some(true),
            hop: None,
            trace: None,
            trace_ctx: None,
            explain: None,
            cmd: Command::Pareto {
                pipeline: rpwf_gen::figure5_pipeline(),
                platform: rpwf_gen::figure5_platform(),
                chunk,
            },
        };
        let one_shot = svc.handle(pareto(1, None), Instant::now());
        assert_eq!(one_shot.status, "ok");
        let one_shot_points = one_shot
            .result
            .as_ref()
            .and_then(|r| r.get("points"))
            .cloned()
            .expect("points");

        let mut responses: Vec<Response> = Vec::new();
        svc.handle_request_into(pareto(2, Some(3)), Instant::now(), None, &mut |r| {
            responses.push(r);
        });
        let (end, parts) = responses.split_last().expect("at least the end line");
        assert_eq!(end.status, "ok");
        assert!(!parts.is_empty(), "figure 5 front is larger than one chunk");
        assert!(parts.iter().all(|p| p.status == "part"));
        let mut reassembled: Vec<serde::Value> = Vec::new();
        for (i, part) in parts.iter().enumerate() {
            let result = part.result.as_ref().expect("part payload");
            assert_eq!(
                result.get("seq").and_then(serde::Value::as_u64),
                Some(i as u64)
            );
            let points = result.get("points").and_then(serde::Value::as_seq).unwrap();
            assert!(points.len() <= 3, "chunk bound respected");
            reassembled.extend(points.iter().cloned());
        }
        let end_result = end.result.as_ref().expect("end payload");
        assert_eq!(
            end_result.get("parts").and_then(serde::Value::as_u64),
            Some(parts.len() as u64)
        );
        assert_eq!(
            end_result
                .get("points_total")
                .and_then(serde::Value::as_u64),
            Some(reassembled.len() as u64)
        );
        assert_eq!(end_result.get("complete"), Some(&serde::Value::Bool(true)));
        // Bit-identical to the unstreamed points.
        assert_eq!(
            serde_json::to_string(&serde::Value::Seq(reassembled)).unwrap(),
            serde_json::to_string(&one_shot_points).unwrap()
        );
    }

    #[test]
    fn zero_chunk_is_invalid() {
        let svc = service();
        let resp = svc.handle(
            Request {
                id: Some(1),
                deadline_ms: None,
                no_cache: None,
                hop: None,
                trace: None,
                trace_ctx: None,
                explain: None,
                cmd: Command::Pareto {
                    pipeline: rpwf_gen::figure5_pipeline(),
                    platform: rpwf_gen::figure5_platform(),
                    chunk: Some(0),
                },
            },
            Instant::now(),
        );
        assert_eq!(resp.status, "error");
        assert_eq!(resp.error.expect("error body").kind, "invalid");
    }

    #[test]
    fn pareto_beyond_exact_backends_returns_a_heuristic_front() {
        // m = 14 fully heterogeneous: no exact front source applies, yet
        // the command answers with a sound (incomplete) heuristic front.
        let inst = rpwf_gen::make_instance(
            PlatformClass::FullyHeterogeneous,
            FailureClass::Heterogeneous,
            3,
            14,
            5,
        );
        let svc = service();
        let resp = svc.handle(
            Request {
                id: Some(1),
                deadline_ms: None,
                no_cache: None,
                hop: None,
                trace: None,
                trace_ctx: None,
                explain: None,
                cmd: Command::Pareto {
                    pipeline: inst.pipeline,
                    platform: inst.platform,
                    chunk: None,
                },
            },
            Instant::now(),
        );
        assert_eq!(resp.status, "ok", "{:?}", resp.error);
        assert_eq!(resp.meta.solver, Some(Provenance::Heuristic));
        assert_eq!(resp.meta.exact_complete, Some(false));
        let result = resp.result.expect("front payload");
        assert_eq!(result.get("complete"), Some(&serde::Value::Bool(false)));
        assert!(
            !result
                .get("points")
                .and_then(serde::Value::as_seq)
                .unwrap()
                .is_empty(),
            "heuristic front is non-empty"
        );
    }

    #[test]
    fn cancelled_handle_aborts_a_solve_as_timeout() {
        let svc = service();
        let handle = rpwf_core::budget::CancelHandle::new();
        handle.cancel();
        let mut req = solve_request(3, 22.0);
        req.no_cache = Some(true);
        let resp = svc.handle_cancellable(req, Instant::now(), Some(&handle));
        assert_eq!(resp.status, "error");
        assert_eq!(resp.error.expect("error body").kind, "timeout");
    }

    #[test]
    fn uncancelled_handle_does_not_disturb_a_solve() {
        let svc = service();
        let handle = rpwf_core::budget::CancelHandle::new();
        let resp = svc.handle_cancellable(solve_request(4, 22.0), Instant::now(), Some(&handle));
        assert_eq!(resp.status, "ok", "{:?}", resp.error);
    }

    #[test]
    fn no_cache_flag_bypasses_the_cache() {
        let svc = service();
        let mut req = solve_request(1, 22.0);
        req.no_cache = Some(true);
        let _ = svc.handle(req.clone(), Instant::now());
        let again = svc.handle(req, Instant::now());
        assert!(!again.meta.cache_hit);
    }

    #[test]
    fn warm_front_then_solve_hits_the_cache() {
        let svc = service();
        let pipeline = rpwf_gen::figure5_pipeline();
        let platform = rpwf_gen::figure5_platform();
        svc.warm_front(&pipeline, &platform);
        let resp = svc.handle(solve_request(1, 22.0), Instant::now());
        assert_eq!(resp.status, "ok", "{:?}", resp.error);
        assert!(resp.meta.cache_hit, "warmed front must answer the query");
        assert_eq!(resp.meta.exact_complete, Some(true));
    }

    #[test]
    fn grouped_batch_matches_ungrouped_byte_for_byte() {
        let make_lines = || -> Vec<String> {
            let pipeline = rpwf_gen::figure5_pipeline();
            let platform = rpwf_gen::figure5_platform();
            (0..10u64)
                .map(|i| {
                    serde_json::to_string(&Request {
                        id: Some(i),
                        deadline_ms: None,
                        no_cache: None,
                        hop: None,
                        trace: None,
                        trace_ctx: None,
                        explain: None,
                        cmd: Command::Solve {
                            pipeline: pipeline.clone(),
                            platform: platform.clone(),
                            objective: Objective::MinFpUnderLatency(22.0 + i as f64),
                        },
                    })
                    .unwrap()
                })
                .collect()
        };
        let grouped_pool = WorkerPool::new(Arc::new(service()));
        let grouped = grouped_pool.submit_batch(make_lines());
        let ungrouped_pool = WorkerPool::new(Arc::new(service()));
        let ungrouped = ungrouped_pool.submit_batch_ungrouped(make_lines());
        assert_eq!(grouped.len(), ungrouped.len());
        for (g, u) in grouped.iter().zip(&ungrouped) {
            let g: Response = serde_json::from_str(g).unwrap();
            let u: Response = serde_json::from_str(u).unwrap();
            assert_eq!(g.status, "ok", "{:?}", g.error);
            assert_eq!(
                serde_json::to_string(&g.result).unwrap(),
                serde_json::to_string(&u.result).unwrap(),
                "grouped and independent answers must be byte-identical"
            );
        }
    }

    #[test]
    fn pool_answers_batch_in_order() {
        let svc = Arc::new(service());
        let pool = WorkerPool::new(svc);
        let lines: Vec<String> = (0..16)
            .map(|i| {
                serde_json::to_string(&Request {
                    id: Some(i),
                    deadline_ms: None,
                    no_cache: None,
                    hop: None,
                    trace: None,
                    trace_ctx: None,
                    explain: None,
                    cmd: Command::Ping,
                })
                .unwrap()
            })
            .collect();
        let out = pool.submit_batch(lines);
        assert_eq!(out.len(), 16);
        for (i, line) in out.iter().enumerate() {
            let resp: Response = serde_json::from_str(line).expect("parses");
            assert_eq!(resp.id, Some(i as u64), "order preserved");
            assert_eq!(resp.status, "ok");
        }
    }
}
