//! The solver engine behind every transport: request dispatch, per-request
//! deadlines, portfolio racing, the solution cache, and the fixed worker
//! pool that executes requests concurrently.

use crate::cache::{CachedResult, SolutionCache};
use crate::protocol::{
    CacheStatsOut, Command, ErrorKind, GenResult, Meta, ParetoPointOut, ParetoResult, Request,
    Response, SimulateResult, SolveResult, StatsResult,
};
use crossbeam::channel::{self, Sender};
use rpwf_algo::exact::{pareto_front_comm_homog_with_budget, Exhaustive};
use rpwf_algo::heuristics::Portfolio;
use rpwf_core::budget::{Budget, CancelHandle};
use rpwf_core::pareto::ParetoFront;
use rpwf_core::platform::{FailureClass, PlatformClass};
use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Service tuning knobs.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads in the pool (0 = available parallelism).
    pub workers: usize,
    /// Solution-cache entries across all shards (0 disables caching).
    pub cache_capacity: usize,
    /// Cache shards.
    pub cache_shards: usize,
    /// Seed for the heuristic portfolio (fixed ⇒ deterministic answers).
    pub seed: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 0,
            cache_capacity: 4096,
            cache_shards: 16,
            seed: 0xCAFE,
        }
    }
}

impl ServiceConfig {
    /// The effective worker count (resolving 0 to the hardware).
    #[must_use]
    pub fn effective_workers(&self) -> usize {
        if self.workers == 0 {
            std::thread::available_parallelism().map_or(2, std::num::NonZeroUsize::get)
        } else {
            self.workers
        }
    }
}

/// The transport-independent solver service.
pub struct SolverService {
    config: ServiceConfig,
    cache: SolutionCache,
    requests: AtomicU64,
}

impl SolverService {
    /// Builds a service.
    #[must_use]
    pub fn new(config: ServiceConfig) -> Self {
        let cache = SolutionCache::new(config.cache_capacity, config.cache_shards);
        SolverService {
            config,
            cache,
            requests: AtomicU64::new(0),
        }
    }

    /// The configuration in effect.
    #[must_use]
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Parses and handles one request line received at `received`,
    /// producing one response line (no trailing newline).
    #[must_use]
    pub fn handle_line(&self, line: &str, received: Instant) -> String {
        self.handle_line_cancellable(line, received, None)
    }

    /// [`handle_line`](Self::handle_line) with an optional cancellation
    /// handle linked into the request budget — the transport passes its
    /// per-connection handle so a dropped client aborts the solve.
    #[must_use]
    pub fn handle_line_cancellable(
        &self,
        line: &str,
        received: Instant,
        cancel: Option<&CancelHandle>,
    ) -> String {
        let start = Instant::now();
        let trimmed = line.trim();
        if trimmed.is_empty() {
            return Response::error(
                None,
                ErrorKind::Invalid,
                "empty request line",
                meta_plain(start),
            )
            .to_line();
        }
        match serde_json::from_str::<Request>(trimmed) {
            Ok(request) => self.handle_cancellable(request, received, cancel).to_line(),
            Err(e) => Response::error(
                None,
                ErrorKind::Invalid,
                format!("malformed request: {e}"),
                meta_plain(start),
            )
            .to_line(),
        }
    }

    /// Handles one parsed request. Panics anywhere in the handling path
    /// (including instance hashing — serde does not re-validate model
    /// invariants, so a structurally broken instance can panic deep in
    /// solver or digest code) are caught and reported as `internal`
    /// errors so a malformed instance cannot take a worker down.
    #[must_use]
    pub fn handle(&self, request: Request, received: Instant) -> Response {
        self.handle_cancellable(request, received, None)
    }

    /// [`handle`](Self::handle) with an optional cancellation handle
    /// linked into the request budget.
    #[must_use]
    pub fn handle_cancellable(
        &self,
        request: Request,
        received: Instant,
        cancel: Option<&CancelHandle>,
    ) -> Response {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let start = Instant::now();
        let id = request.id;
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.handle_inner(request, received, start, cancel)
        }));
        match outcome {
            Ok(response) => response,
            Err(panic) => Response::error(
                id,
                ErrorKind::Internal,
                format!("request handling panicked: {}", panic_message(&panic)),
                meta_plain(start),
            ),
        }
    }

    fn handle_inner(
        &self,
        request: Request,
        received: Instant,
        start: Instant,
        cancel: Option<&CancelHandle>,
    ) -> Response {
        let id = request.id;
        let mut budget = match request.deadline_ms {
            Some(ms) => Budget::with_deadline_at(received + Duration::from_millis(ms)),
            None => Budget::unlimited(),
        };
        if let Some(handle) = cancel {
            budget = budget.linked(handle);
        }

        // Cache lookup (content-addressed; Ping/Gen/Stats are not cached).
        let use_cache = !request.no_cache.unwrap_or(false);
        let key = if use_cache {
            request.cmd.cache_key()
        } else {
            None
        };
        if let Some(key) = key {
            if let Some(hit) = self.cache.get(key) {
                return Response::ok(
                    id,
                    hit.result,
                    Meta {
                        cache_hit: true,
                        solver: hit.solver,
                        exact_complete: hit.exact_complete,
                        elapsed_us: elapsed_us(start),
                    },
                );
            }
        }

        // A request whose budget is already gone gets a structured
        // timeout instead of a doomed solve (cheap commands still run).
        let expensive = matches!(
            request.cmd,
            Command::Solve { .. } | Command::Pareto { .. } | Command::Simulate { .. }
        );
        if budget.is_exhausted() && expensive {
            return Response::error(
                id,
                ErrorKind::Timeout,
                "deadline expired or request cancelled before solving started",
                meta_plain(start),
            );
        }

        match self.dispatch(request.cmd, &budget) {
            Ok(done) => {
                if let (Some(key), true) = (key, done.cacheable) {
                    self.cache.insert(
                        key,
                        CachedResult {
                            result: done.result.clone(),
                            solver: done.solver.clone(),
                            exact_complete: done.exact_complete,
                        },
                    );
                }
                Response::ok(
                    id,
                    done.result,
                    Meta {
                        cache_hit: false,
                        solver: done.solver,
                        exact_complete: done.exact_complete,
                        elapsed_us: elapsed_us(start),
                    },
                )
            }
            Err((kind, message)) => Response::error(id, kind, message, meta_plain(start)),
        }
    }

    fn dispatch(&self, cmd: Command, budget: &Budget) -> DispatchResult {
        match cmd {
            Command::Ping => Ok(Done::plain(serde::Value::Str("pong".into()))),
            Command::Stats => {
                let cache = self.cache.stats();
                Ok(Done::plain(
                    StatsResult {
                        workers: self.config.effective_workers(),
                        requests: self.requests.load(Ordering::Relaxed),
                        cache: CacheStatsOut {
                            shards: self.cache.shard_count(),
                            capacity: self.cache.capacity(),
                            entries: cache.entries,
                            hits: cache.hits,
                            misses: cache.misses,
                            evictions: cache.evictions,
                        },
                    }
                    .to_value(),
                ))
            }
            Command::Gen {
                class,
                failure,
                n,
                m,
                seed,
            } => {
                let class = match class.as_str() {
                    "fh" => PlatformClass::FullyHomogeneous,
                    "ch" => PlatformClass::CommHomogeneous,
                    "het" => PlatformClass::FullyHeterogeneous,
                    other => {
                        return Err((
                            ErrorKind::Invalid,
                            format!("class must be fh|ch|het, got {other:?}"),
                        ))
                    }
                };
                let failure = match failure.as_str() {
                    "hom" => FailureClass::Homogeneous,
                    "het" => FailureClass::Heterogeneous,
                    other => {
                        return Err((
                            ErrorKind::Invalid,
                            format!("failure must be hom|het, got {other:?}"),
                        ))
                    }
                };
                if n == 0 || m == 0 || n > 64 || m > 64 {
                    return Err((
                        ErrorKind::Invalid,
                        format!("gen size out of range: n={n}, m={m}"),
                    ));
                }
                let inst = rpwf_gen::make_instance(class, failure, n, m, seed);
                Ok(Done::plain(
                    GenResult {
                        pipeline: inst.pipeline,
                        platform: inst.platform,
                    }
                    .to_value(),
                ))
            }
            Command::Solve {
                pipeline,
                platform,
                objective,
            } => {
                let pipeline = pipeline.with_rebuilt_cache();
                let report =
                    Portfolio::new(self.config.seed).race(&pipeline, &platform, objective, budget);
                match report.best {
                    Some(sol) => Ok(Done {
                        result: SolveResult {
                            mapping_display: sol.mapping.to_string(),
                            mapping: sol.mapping,
                            latency: sol.latency,
                            failure_prob: sol.failure_prob,
                        }
                        .to_value(),
                        solver: Some(report.solver.name().into()),
                        exact_complete: Some(report.exact_complete),
                        // Cutoff answers — exact or heuristic — may be
                        // beaten by a rerun with more budget; never let
                        // them poison the cache.
                        cacheable: report.exact_complete
                            || (!report.exact_attempted && report.heuristic_complete),
                    }),
                    None if report.exact_complete => Err((
                        ErrorKind::Infeasible,
                        format!("no mapping satisfies {objective:?}"),
                    )),
                    None if budget.is_exhausted() => Err((
                        ErrorKind::Timeout,
                        "deadline expired before any feasible solution was found".into(),
                    )),
                    None => Err((
                        ErrorKind::Infeasible,
                        format!(
                            "no feasible solution found for {objective:?} \
                             (heuristic search; not a proof of infeasibility)"
                        ),
                    )),
                }
            }
            Command::Pareto { pipeline, platform } => {
                let pipeline = pipeline.with_rebuilt_cache();
                let m = platform.n_procs();
                let (front, complete): (ParetoFront<_>, bool) =
                    if platform.uniform_bandwidth().is_some() && m <= 16 {
                        let outcome =
                            pareto_front_comm_homog_with_budget(&pipeline, &platform, budget)
                                .expect("uniform bandwidth checked");
                        let complete = outcome.is_complete();
                        (outcome.into_inner(), complete)
                    } else if m <= 6 {
                        let outcome =
                            Exhaustive::new(&pipeline, &platform).pareto_front_with_budget(budget);
                        let complete = outcome.is_complete();
                        (outcome.into_inner(), complete)
                    } else {
                        return Err((
                            ErrorKind::Invalid,
                            "exact Pareto front needs comm-homogeneous links (m ≤ 16) \
                             or m ≤ 6"
                                .into(),
                        ));
                    };
                if front.is_empty() && !complete {
                    return Err((
                        ErrorKind::Timeout,
                        "deadline expired before any Pareto point was found".into(),
                    ));
                }
                Ok(Done {
                    result: ParetoResult {
                        points: front
                            .iter()
                            .map(|pt| ParetoPointOut {
                                latency: pt.latency,
                                failure_prob: pt.failure_prob,
                                mapping_display: pt.payload.to_string(),
                            })
                            .collect(),
                        complete,
                    }
                    .to_value(),
                    solver: Some("exact".into()),
                    exact_complete: Some(complete),
                    cacheable: complete,
                })
            }
            Command::Simulate {
                pipeline,
                platform,
                trials,
            } => {
                let pipeline = pipeline.with_rebuilt_cache();
                let trials = trials.unwrap_or(10_000).clamp(1, 10_000_000);
                let safest = rpwf_algo::mono::minimize_failure(&pipeline, &platform);
                let mc = rpwf_sim::MonteCarlo {
                    trials,
                    ..Default::default()
                };
                let (report, complete) =
                    mc.run_with_budget(&pipeline, &platform, &safest.mapping, budget);
                if report.trials == 0 {
                    return Err((
                        ErrorKind::Timeout,
                        "deadline expired before any Monte Carlo trial ran".into(),
                    ));
                }
                Ok(Done {
                    result: SimulateResult {
                        mapping_display: safest.mapping.to_string(),
                        analytic_fp: safest.failure_prob,
                        mc_failure_rate: 1.0 - report.success_rate,
                        wilson95: report.wilson95,
                        trials: report.trials,
                        latency_min: report.latency.min,
                        latency_mean: report.latency.mean,
                        latency_max: report.latency.max,
                    }
                    .to_value(),
                    solver: Some("exact".into()),
                    exact_complete: Some(complete),
                    // A cut-off sample is a valid but smaller estimate;
                    // never cache it in place of the full run.
                    cacheable: complete,
                })
            }
        }
    }
}

/// Successful dispatch payload plus caching/metadata decisions.
struct Done {
    result: serde::Value,
    solver: Option<String>,
    exact_complete: Option<bool>,
    cacheable: bool,
}

impl Done {
    fn plain(result: serde::Value) -> Self {
        Done {
            result,
            solver: None,
            exact_complete: None,
            cacheable: false,
        }
    }
}

type DispatchResult = Result<Done, (ErrorKind, String)>;

fn elapsed_us(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX)
}

fn meta_plain(start: Instant) -> Meta {
    Meta {
        cache_hit: false,
        solver: None,
        exact_complete: None,
        elapsed_us: elapsed_us(start),
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic".into()
    }
}

// ---------------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------------

/// One queued request: the raw line, its receipt time (deadlines count
/// from here, including queue wait), where to deliver the response, and
/// an optional cancellation handle (shared per connection) linked into
/// the request budget.
pub struct Job {
    /// Raw request line.
    pub line: String,
    /// Receipt instant.
    pub received: Instant,
    /// Response consumer.
    pub respond: Box<dyn FnOnce(String) + Send>,
    /// Cancellation handle; firing it aborts the solve mid-flight.
    pub cancel: Option<CancelHandle>,
}

/// A fixed pool of solver workers fed by an MPMC channel.
pub struct WorkerPool {
    service: Arc<SolverService>,
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `service.config().effective_workers()` workers.
    #[must_use]
    pub fn new(service: Arc<SolverService>) -> Self {
        let count = service.config().effective_workers().max(1);
        let (tx, rx) = channel::unbounded::<Job>();
        let workers = (0..count)
            .map(|i| {
                let rx = rx.clone();
                let service = Arc::clone(&service);
                std::thread::Builder::new()
                    .name(format!("rpwf-worker-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            let line = service.handle_line_cancellable(
                                &job.line,
                                job.received,
                                job.cancel.as_ref(),
                            );
                            (job.respond)(line);
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool {
            service,
            tx: Some(tx),
            workers,
        }
    }

    /// The shared service.
    #[must_use]
    pub fn service(&self) -> &Arc<SolverService> {
        &self.service
    }

    /// Enqueues a request line; the response is passed to `respond` on a
    /// worker thread.
    pub fn submit(&self, line: String, received: Instant, respond: Box<dyn FnOnce(String) + Send>) {
        self.submit_cancellable(line, received, respond, None);
    }

    /// [`submit`](Self::submit) with a cancellation handle linked into
    /// the request budget — the TCP transport passes its per-connection
    /// handle here so a client disconnect aborts the connection's
    /// in-flight work.
    pub fn submit_cancellable(
        &self,
        line: String,
        received: Instant,
        respond: Box<dyn FnOnce(String) + Send>,
        cancel: Option<CancelHandle>,
    ) {
        let job = Job {
            line,
            received,
            respond,
            cancel,
        };
        assert!(
            self.tx
                .as_ref()
                .expect("pool alive while not dropped")
                .send(job)
                .is_ok(),
            "workers outlive the pool handle"
        );
    }

    /// Handles a batch of lines concurrently, returning responses in
    /// input order.
    #[must_use]
    pub fn submit_batch(&self, lines: Vec<String>) -> Vec<String> {
        let received = Instant::now();
        let n = lines.len();
        let (tx, rx) = channel::unbounded::<(usize, String)>();
        for (i, line) in lines.into_iter().enumerate() {
            let tx = tx.clone();
            self.submit(
                line,
                received,
                Box::new(move |resp| {
                    let _ = tx.send((i, resp));
                }),
            );
        }
        drop(tx);
        let mut out: Vec<String> = vec![String::new(); n];
        while let Ok((i, resp)) = rx.recv() {
            out[i] = resp;
        }
        out
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Disconnect the channel, then wait for in-flight work.
        self.tx = None;
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpwf_algo::Objective;
    use rpwf_core::platform::Platform;
    use rpwf_core::stage::Pipeline;

    fn service() -> SolverService {
        SolverService::new(ServiceConfig {
            workers: 2,
            ..Default::default()
        })
    }

    fn solve_request(id: u64, latency_bound: f64) -> Request {
        Request {
            id: Some(id),
            deadline_ms: None,
            no_cache: None,
            cmd: Command::Solve {
                pipeline: rpwf_gen::figure5_pipeline(),
                platform: rpwf_gen::figure5_platform(),
                objective: Objective::MinFpUnderLatency(latency_bound),
            },
        }
    }

    #[test]
    fn ping_pongs() {
        let svc = service();
        let resp = svc.handle(
            Request {
                id: Some(1),
                deadline_ms: None,
                no_cache: None,
                cmd: Command::Ping,
            },
            Instant::now(),
        );
        assert_eq!(resp.status, "ok");
        assert_eq!(resp.result, Some(serde::Value::Str("pong".into())));
    }

    #[test]
    fn solve_figure5_is_exact_and_cached_on_repeat() {
        let svc = service();
        let first = svc.handle(solve_request(1, 22.0), Instant::now());
        assert_eq!(first.status, "ok", "{:?}", first.error);
        assert!(!first.meta.cache_hit);
        assert_eq!(first.meta.solver.as_deref(), Some("exact"));
        assert_eq!(first.meta.exact_complete, Some(true));

        let second = svc.handle(solve_request(2, 22.0), Instant::now());
        assert_eq!(second.status, "ok");
        assert!(
            second.meta.cache_hit,
            "identical request must hit the cache"
        );
        // Byte-identical result payload.
        assert_eq!(
            serde_json::to_string(&first.result).unwrap(),
            serde_json::to_string(&second.result).unwrap()
        );
    }

    #[test]
    fn expired_deadline_yields_structured_timeout() {
        let svc = service();
        let mut req = solve_request(9, 22.0);
        req.deadline_ms = Some(0);
        // Received "long ago" relative to a 0 ms deadline.
        let resp = svc.handle(req, Instant::now() - Duration::from_millis(5));
        assert_eq!(resp.status, "error");
        let err = resp.error.expect("error body");
        assert_eq!(err.kind, "timeout");
    }

    #[test]
    fn infeasible_is_reported_as_such() {
        let svc = service();
        let req = Request {
            id: None,
            deadline_ms: None,
            no_cache: None,
            cmd: Command::Solve {
                pipeline: Pipeline::uniform(2, 100.0, 100.0).unwrap(),
                platform: Platform::fully_homogeneous(3, 1.0, 1.0, 0.9).unwrap(),
                objective: Objective::MinFpUnderLatency(1.0),
            },
        };
        let resp = svc.handle(req, Instant::now());
        assert_eq!(resp.status, "error");
        assert_eq!(resp.error.expect("error body").kind, "infeasible");
    }

    #[test]
    fn malformed_line_is_invalid_not_a_crash() {
        let svc = service();
        let line = svc.handle_line("{not json", Instant::now());
        let resp: Response = serde_json::from_str(&line).expect("well-formed response");
        assert_eq!(resp.status, "error");
        assert_eq!(resp.error.expect("error body").kind, "invalid");
    }

    #[test]
    fn gen_stats_roundtrip() {
        let svc = service();
        let gen = svc.handle(
            Request {
                id: Some(5),
                deadline_ms: None,
                no_cache: None,
                cmd: Command::Gen {
                    class: "ch".into(),
                    failure: "het".into(),
                    n: 3,
                    m: 4,
                    seed: 11,
                },
            },
            Instant::now(),
        );
        assert_eq!(gen.status, "ok");
        let stats = svc.handle(
            Request {
                id: Some(6),
                deadline_ms: None,
                no_cache: None,
                cmd: Command::Stats,
            },
            Instant::now(),
        );
        assert_eq!(stats.status, "ok");
        let text = serde_json::to_string(&stats.result).unwrap();
        assert!(text.contains("\"workers\""), "{text}");
        assert!(text.contains("\"cache\""), "{text}");
    }

    #[test]
    fn cancelled_handle_aborts_a_solve_as_timeout() {
        let svc = service();
        let handle = rpwf_core::budget::CancelHandle::new();
        handle.cancel();
        let mut req = solve_request(3, 22.0);
        req.no_cache = Some(true);
        let resp = svc.handle_cancellable(req, Instant::now(), Some(&handle));
        assert_eq!(resp.status, "error");
        assert_eq!(resp.error.expect("error body").kind, "timeout");
    }

    #[test]
    fn uncancelled_handle_does_not_disturb_a_solve() {
        let svc = service();
        let handle = rpwf_core::budget::CancelHandle::new();
        let resp = svc.handle_cancellable(solve_request(4, 22.0), Instant::now(), Some(&handle));
        assert_eq!(resp.status, "ok", "{:?}", resp.error);
    }

    #[test]
    fn no_cache_flag_bypasses_the_cache() {
        let svc = service();
        let mut req = solve_request(1, 22.0);
        req.no_cache = Some(true);
        let _ = svc.handle(req.clone(), Instant::now());
        let again = svc.handle(req, Instant::now());
        assert!(!again.meta.cache_hit);
    }

    #[test]
    fn pool_answers_batch_in_order() {
        let svc = Arc::new(service());
        let pool = WorkerPool::new(svc);
        let lines: Vec<String> = (0..16)
            .map(|i| {
                serde_json::to_string(&Request {
                    id: Some(i),
                    deadline_ms: None,
                    no_cache: None,
                    cmd: Command::Ping,
                })
                .unwrap()
            })
            .collect();
        let out = pool.submit_batch(lines);
        assert_eq!(out.len(), 16);
        for (i, line) in out.iter().enumerate() {
            let resp: Response = serde_json::from_str(line).expect("parses");
            assert_eq!(resp.id, Some(i as u64), "order preserved");
            assert_eq!(resp.status, "ok");
        }
    }
}
