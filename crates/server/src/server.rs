//! Transports: the reactor-backed TCP JSON-lines listener and a
//! stdin/stdout loop.
//!
//! The TCP plane is the poll-based reactor in `crate::reactor`: a few
//! event threads multiplex **all** client and peer connections over
//! nonblocking sockets — no per-connection reader/writer threads.
//! Decoded requests pass the deadline-aware admission controller
//! ([`crate::admission`]; overload is answered immediately with a
//! structured `overloaded` + `retry_after_ms` error instead of queueing
//! into a late timeout), then dispatch to the shared worker pool.
//! Responses flow back through per-connection write buffers with
//! backpressure: a client that stops reading is eventually disconnected,
//! never allowed to wedge an event thread. Requests are dispatched
//! through the server's [`Router`]: [`Server::bind`] routes everything
//! locally, [`Server::bind_ring`] places each request on the fleet's
//! consistent-hash ring — and a request owned by a peer becomes an
//! asynchronous continuation in the reactor's pending-forward table
//! rather than a blocked thread. Responses may interleave across
//! requests of one connection — clients correlate by `id`; a streamed
//! request (chunked `Pareto`) emits its `part` lines in order.
//!
//! Every connection owns a [`CancelHandle`](rpwf_core::budget::CancelHandle)
//! linked into each of its request budgets. When the read half of the
//! socket closes — the client disconnected (or half-closed, which the
//! protocol treats the same way: a client that stops reading has
//! abandoned its answers) — the handle fires and every in-flight solve
//! of that connection unwinds at its next budget poll, freeing the
//! worker for live clients.

use crate::admission::ServingOptions;
use crate::fault::FaultPlan;
use crate::reactor::Reactor;
use crate::router::{RingOptions, RingRouter, Router};
use crate::service::{ServiceConfig, SolverService, WorkerPool};
use std::io::{BufRead, Write};
use std::net::{SocketAddr, TcpListener};
use std::sync::Arc;
use std::time::Instant;

/// A running TCP solver server.
pub struct Server {
    local_addr: SocketAddr,
    reactor: Reactor,
    pool: Arc<WorkerPool>,
}

impl Server {
    /// Binds `addr` (`port 0` picks a free port) and starts accepting.
    /// Single-node routing: every request is answered by this process.
    ///
    /// # Errors
    /// Propagates socket errors from binding.
    pub fn bind(addr: &str, config: ServiceConfig) -> std::io::Result<Server> {
        Self::bind_tuned(addr, config, ServingOptions::default())
    }

    /// [`bind`](Self::bind) with explicit serving-plane tuning (event
    /// threads, queue bound, admission deadline).
    ///
    /// # Errors
    /// Propagates socket errors from binding.
    pub fn bind_tuned(
        addr: &str,
        config: ServiceConfig,
        serving: ServingOptions,
    ) -> std::io::Result<Server> {
        let service = Arc::new(SolverService::new(config));
        Self::bind_with_router_tuned(
            addr,
            Arc::new(crate::router::LocalRouter::new(service)),
            None,
            serving,
        )
    }

    /// Binds `addr` in **fleet mode**: requests are placed on the
    /// consistent-hash ring over this node (`config.node_id`, which peers
    /// must know it by) and `peers`, non-owned requests are forwarded
    /// transparently, and (per `options.replicas`) complete fronts are
    /// replicated to ring successors.
    ///
    /// # Errors
    /// Propagates socket errors from binding.
    ///
    /// # Panics
    /// When `config.node_id` is `None` — a fleet member needs an identity.
    pub fn bind_ring(
        addr: &str,
        config: ServiceConfig,
        peers: &[String],
        options: RingOptions,
    ) -> std::io::Result<Server> {
        Self::bind_ring_faulted(addr, config, peers, options, None)
    }

    /// [`bind_ring`](Self::bind_ring) with explicit serving-plane tuning.
    ///
    /// # Errors
    /// Propagates socket errors from binding.
    ///
    /// # Panics
    /// When `config.node_id` is `None` — a fleet member needs an identity.
    pub fn bind_ring_tuned(
        addr: &str,
        config: ServiceConfig,
        peers: &[String],
        options: RingOptions,
        serving: ServingOptions,
    ) -> std::io::Result<Server> {
        let node_id = config
            .node_id
            .clone()
            .expect("fleet mode requires a node id");
        let service = Arc::new(SolverService::new(config));
        let router = RingRouter::with_options(service, node_id, peers, options);
        Self::bind_with_router_tuned(addr, router, None, serving)
    }

    /// [`bind_ring`](Self::bind_ring) with a scripted [`FaultPlan`] —
    /// the chaos-test entry point. A `None` plan behaves exactly like
    /// `bind_ring`.
    ///
    /// # Errors
    /// Propagates socket errors from binding.
    ///
    /// # Panics
    /// When `config.node_id` is `None` — a fleet member needs an identity.
    pub fn bind_ring_faulted(
        addr: &str,
        config: ServiceConfig,
        peers: &[String],
        options: RingOptions,
        faults: Option<Arc<FaultPlan>>,
    ) -> std::io::Result<Server> {
        let node_id = config
            .node_id
            .clone()
            .expect("fleet mode requires a node id");
        let service = Arc::new(SolverService::new(config));
        let router = RingRouter::with_options(service, node_id, peers, options);
        Self::bind_with_router_tuned(addr, router, faults, ServingOptions::default())
    }

    /// Binds `addr`, dispatching every connection's requests through
    /// `router`.
    ///
    /// # Errors
    /// Propagates socket errors from binding.
    pub fn bind_with_router(addr: &str, router: Arc<dyn Router>) -> std::io::Result<Server> {
        Self::bind_with_router_faulted(addr, router, None)
    }

    /// [`bind_with_router`](Self::bind_with_router) with a scripted
    /// [`FaultPlan`] injecting transport faults (see [`crate::fault`]).
    ///
    /// # Errors
    /// Propagates socket errors from binding.
    pub fn bind_with_router_faulted(
        addr: &str,
        router: Arc<dyn Router>,
        faults: Option<Arc<FaultPlan>>,
    ) -> std::io::Result<Server> {
        Self::bind_with_router_tuned(addr, router, faults, ServingOptions::default())
    }

    /// The fully explicit bind: router, fault plan, serving tuning.
    /// Everything else delegates here.
    ///
    /// # Errors
    /// Propagates socket errors from binding.
    pub fn bind_with_router_tuned(
        addr: &str,
        router: Arc<dyn Router>,
        faults: Option<Arc<FaultPlan>>,
        serving: ServingOptions,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let pool = Arc::new(WorkerPool::with_options(router, &serving));
        let reactor = Reactor::start(listener, Arc::clone(&pool), faults, &serving)?;
        Ok(Server {
            local_addr,
            reactor,
            pool,
        })
    }

    /// The bound address (useful with port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared service (e.g. for in-process inspection in tests).
    #[must_use]
    pub fn service(&self) -> &Arc<SolverService> {
        self.pool.service()
    }

    /// The router dispatching this server's requests.
    #[must_use]
    pub fn router(&self) -> &Arc<dyn Router> {
        self.pool.router()
    }

    /// Stops accepting new connections, joins the reactor threads, and
    /// severs every live connection — after this the server is fully
    /// dark, exactly like a killed process (fleet peers observe
    /// connection failures and fall back to local solving).
    pub fn shutdown(&mut self) {
        self.reactor.shutdown();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Serves requests from stdin to stdout, one response line per request
/// line, in input order. Returns when stdin closes.
pub fn serve_stdin(config: ServiceConfig) {
    let service = SolverService::new(config);
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let response = service.handle_line(&line, Instant::now());
        if writeln!(out, "{response}").is_err() {
            break;
        }
        let _ = out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Command, Request, Response};
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    fn request_line(id: u64, cmd: Command) -> String {
        serde_json::to_string(&Request {
            id: Some(id),
            deadline_ms: None,
            no_cache: None,
            hop: None,
            trace: None,
            trace_ctx: None,
            explain: None,
            cmd,
        })
        .expect("serializes")
    }

    #[test]
    fn tcp_roundtrip_ping() {
        let mut server = Server::bind(
            "127.0.0.1:0",
            ServiceConfig {
                workers: 2,
                ..Default::default()
            },
        )
        .expect("bind");
        let addr = server.local_addr();

        let mut stream = TcpStream::connect(addr).expect("connect");
        writeln!(stream, "{}", request_line(1, Command::Ping)).expect("send");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        let resp: Response = serde_json::from_str(line.trim()).expect("parses");
        assert_eq!(resp.status, "ok");
        assert_eq!(resp.id, Some(1));
        server.shutdown();
    }

    #[test]
    fn multiple_requests_one_connection() {
        let mut server = Server::bind(
            "127.0.0.1:0",
            ServiceConfig {
                workers: 4,
                ..Default::default()
            },
        )
        .expect("bind");
        let addr = server.local_addr();

        let mut stream = TcpStream::connect(addr).expect("connect");
        for id in 0..8 {
            writeln!(stream, "{}", request_line(id, Command::Ping)).expect("send");
        }
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut seen = std::collections::HashSet::new();
        for _ in 0..8 {
            let mut line = String::new();
            reader.read_line(&mut line).expect("read");
            let resp: Response = serde_json::from_str(line.trim()).expect("parses");
            assert_eq!(resp.status, "ok");
            seen.insert(resp.id.expect("id echoed"));
        }
        assert_eq!(seen.len(), 8, "every request answered exactly once");
        server.shutdown();
    }
}
