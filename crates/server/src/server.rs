//! Transports: a TCP JSON-lines listener and a stdin/stdout loop.
//!
//! Each TCP connection gets a reader thread (parsing lines, enqueueing
//! jobs on the shared worker pool — except peer-forwarded `hop` requests,
//! which the reader executes inline, see
//! [`Router::handles_inline`])
//! and a writer thread (draining that connection's response channel).
//! Requests are dispatched through the server's [`Router`]:
//! [`Server::bind`] routes everything locally, [`Server::bind_ring`]
//! places each request on the fleet's consistent-hash ring. Responses may interleave across
//! requests of one connection — clients correlate by `id`. A streamed
//! request (chunked `Pareto`) emits its `part` lines in order, each
//! forwarded to the writer as it is produced, so per-response memory
//! stays bounded by the chunk size. All
//! connections share one worker pool, so a single client cannot starve
//! the service by opening many connections.
//!
//! Every connection owns a [`CancelHandle`] linked into each of its
//! request budgets. When the read half of the socket closes — the client
//! disconnected (or half-closed, which the protocol treats the same way:
//! a client that stops reading has abandoned its answers) — the handle
//! fires and every in-flight solve of that connection unwinds at its
//! next budget poll, freeing the worker for live clients.

use crate::fault::{FaultAction, FaultPlan};
use crate::router::{RingOptions, RingRouter, Router};
use crate::service::{ServiceConfig, SolverService, WorkerPool};
use crossbeam::channel;
use rpwf_core::budget::CancelHandle;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// A running TCP solver server.
pub struct Server {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    pool: Arc<WorkerPool>,
    /// Live connection sockets by connection id; severed on shutdown so
    /// a stopped server goes fully dark (fleet peers see real connection
    /// failures, not a half-dead node that still answers over old
    /// sockets). Each connection thread removes its own entry on exit,
    /// so the registry never outgrows the live connection count.
    conns: Arc<Mutex<HashMap<u64, TcpStream>>>,
}

impl Server {
    /// Binds `addr` (`port 0` picks a free port) and starts accepting.
    /// Single-node routing: every request is answered by this process.
    ///
    /// # Errors
    /// Propagates socket errors from binding.
    pub fn bind(addr: &str, config: ServiceConfig) -> std::io::Result<Server> {
        let service = Arc::new(SolverService::new(config));
        Self::bind_with_router(addr, Arc::new(crate::router::LocalRouter::new(service)))
    }

    /// Binds `addr` in **fleet mode**: requests are placed on the
    /// consistent-hash ring over this node (`config.node_id`, which peers
    /// must know it by) and `peers`, non-owned requests are forwarded
    /// transparently, and (per `options.replicas`) complete fronts are
    /// replicated to ring successors.
    ///
    /// # Errors
    /// Propagates socket errors from binding.
    ///
    /// # Panics
    /// When `config.node_id` is `None` — a fleet member needs an identity.
    pub fn bind_ring(
        addr: &str,
        config: ServiceConfig,
        peers: &[String],
        options: RingOptions,
    ) -> std::io::Result<Server> {
        Self::bind_ring_faulted(addr, config, peers, options, None)
    }

    /// [`bind_ring`](Self::bind_ring) with a scripted [`FaultPlan`] —
    /// the chaos-test entry point. A `None` plan behaves exactly like
    /// `bind_ring`.
    ///
    /// # Errors
    /// Propagates socket errors from binding.
    ///
    /// # Panics
    /// When `config.node_id` is `None` — a fleet member needs an identity.
    pub fn bind_ring_faulted(
        addr: &str,
        config: ServiceConfig,
        peers: &[String],
        options: RingOptions,
        faults: Option<Arc<FaultPlan>>,
    ) -> std::io::Result<Server> {
        let node_id = config
            .node_id
            .clone()
            .expect("fleet mode requires a node id");
        let service = Arc::new(SolverService::new(config));
        let router = RingRouter::with_options(service, node_id, peers, options);
        Self::bind_with_router_faulted(addr, router, faults)
    }

    /// Binds `addr`, dispatching every connection's requests through
    /// `router`.
    ///
    /// # Errors
    /// Propagates socket errors from binding.
    pub fn bind_with_router(addr: &str, router: Arc<dyn Router>) -> std::io::Result<Server> {
        Self::bind_with_router_faulted(addr, router, None)
    }

    /// [`bind_with_router`](Self::bind_with_router) with a scripted
    /// [`FaultPlan`] injecting transport faults (see [`crate::fault`]).
    ///
    /// # Errors
    /// Propagates socket errors from binding.
    pub fn bind_with_router_faulted(
        addr: &str,
        router: Arc<dyn Router>,
        faults: Option<Arc<FaultPlan>>,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let pool = Arc::new(WorkerPool::with_router(router));
        let shutdown = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<HashMap<u64, TcpStream>>> = Arc::new(Mutex::new(HashMap::new()));
        let conn_ids = AtomicU64::new(0);
        let fault_hooks = faults.map(|plan| FaultHooks {
            plan,
            shutdown: Arc::clone(&shutdown),
            conns: Arc::clone(&conns),
        });

        let accept_pool = Arc::clone(&pool);
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_conns = Arc::clone(&conns);
        let accept_thread = std::thread::Builder::new()
            .name("rpwf-accept".into())
            .spawn(move || {
                while !accept_shutdown.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            // Re-check after the (blocking-ish) accept: a
                            // shutdown — operator or injected KillNode —
                            // must not hand out connections to a node
                            // that is supposed to be dark.
                            if accept_shutdown.load(Ordering::Relaxed) {
                                let _ = stream.shutdown(Shutdown::Both);
                                break;
                            }
                            let id = conn_ids.fetch_add(1, Ordering::Relaxed);
                            if let Ok(clone) = stream.try_clone() {
                                accept_conns
                                    .lock()
                                    .expect("conn registry")
                                    .insert(id, clone);
                            }
                            let pool = Arc::clone(&accept_pool);
                            let registry = Arc::clone(&accept_conns);
                            let hooks = fault_hooks.clone();
                            std::thread::Builder::new()
                                .name("rpwf-conn".into())
                                .spawn(move || {
                                    serve_connection(&stream, &pool, hooks.as_ref());
                                    // Deregister so the registry (and its
                                    // file descriptors) tracks only live
                                    // connections.
                                    registry.lock().expect("conn registry").remove(&id);
                                })
                                .expect("spawn connection thread");
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(std::time::Duration::from_millis(5));
                        }
                        Err(e) => {
                            // Transient accept errors (EMFILE, ECONNABORTED,
                            // EINTR, …) must not kill the listener: back off
                            // and keep accepting. Shutdown still exits via
                            // the loop condition.
                            eprintln!("rpwf-server: accept error (retrying): {e}");
                            std::thread::sleep(std::time::Duration::from_millis(50));
                        }
                    }
                }
            })
            .expect("spawn accept thread");

        Ok(Server {
            local_addr,
            shutdown,
            accept_thread: Some(accept_thread),
            pool,
            conns,
        })
    }

    /// The bound address (useful with port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared service (e.g. for in-process inspection in tests).
    #[must_use]
    pub fn service(&self) -> &Arc<SolverService> {
        self.pool.service()
    }

    /// The router dispatching this server's requests.
    #[must_use]
    pub fn router(&self) -> &Arc<dyn Router> {
        self.pool.router()
    }

    /// Stops accepting new connections, joins the accept thread, and
    /// severs every live connection — after this the server is fully
    /// dark, exactly like a killed process (fleet peers observe
    /// connection failures and fall back to local solving).
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        for (_, conn) in self.conns.lock().expect("conn registry").drain() {
            let _ = conn.shutdown(Shutdown::Both);
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Per-connection handle to the server's fault-injection state: the
/// scripted plan plus the levers a [`FaultAction::KillNode`] needs (the
/// accept loop's shutdown flag and the live-connection registry).
#[derive(Clone)]
struct FaultHooks {
    plan: Arc<FaultPlan>,
    shutdown: Arc<AtomicBool>,
    conns: Arc<Mutex<HashMap<u64, TcpStream>>>,
}

impl FaultHooks {
    /// Executes a node kill: stop accepting, sever every live
    /// connection. Identical to [`Server::shutdown`] as observed from
    /// the network.
    fn kill(&self) {
        self.plan.mark_killed();
        self.shutdown.store(true, Ordering::Relaxed);
        for (_, conn) in self.conns.lock().expect("conn registry").drain() {
            let _ = conn.shutdown(Shutdown::Both);
        }
    }
}

/// Applies a scripted **response** fault (delay or corruption) to one
/// outgoing line. Runs on whichever thread produces the response, so an
/// injected delay stalls exactly the faulted request, not the
/// connection.
fn apply_response_fault(fault: Option<FaultAction>, response: String) -> String {
    match fault {
        Some(FaultAction::DelayResponse(delay)) => {
            std::thread::sleep(delay);
            response
        }
        Some(FaultAction::CorruptLine) => FaultPlan::corrupt(&response),
        _ => response,
    }
}

/// Reader half of one connection: parse lines, enqueue, forward
/// responses through a per-connection channel to the writer half.
fn serve_connection(stream: &TcpStream, pool: &Arc<WorkerPool>, hooks: Option<&FaultHooks>) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let cancel = CancelHandle::new();
    let (tx, rx) = channel::unbounded::<String>();

    let writer_thread = std::thread::Builder::new()
        .name("rpwf-conn-writer".into())
        .spawn(move || {
            let mut out = std::io::BufWriter::new(write_half);
            while let Ok(line) = rx.recv() {
                if out.write_all(line.as_bytes()).is_err() || out.write_all(b"\n").is_err() {
                    break;
                }
                if out.flush().is_err() {
                    break;
                }
            }
        })
        .expect("spawn connection writer");

    let router = Arc::clone(pool.router());
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let received = Instant::now();
        let fault = hooks.and_then(|h| h.plan.on_request());
        match fault {
            Some(FaultAction::DropConnection) => {
                let _ = stream.shutdown(Shutdown::Both);
                break;
            }
            Some(FaultAction::KillNode) => {
                if let Some(h) = hooks {
                    h.kill();
                }
                let _ = stream.shutdown(Shutdown::Both);
                break;
            }
            _ => {}
        }
        if router.handles_inline(&line) {
            // Peer-forwarded (hopped) work runs on this reader thread so
            // it can never deadlock against pool workers blocked on
            // forwarding (see `Router::handles_inline`).
            router.handle_line(&line, received, Some(&cancel), &mut |response| {
                let _ = tx.send(apply_response_fault(fault, response));
            });
            continue;
        }
        let tx = tx.clone();
        pool.submit_cancellable(
            line,
            received,
            Box::new(move |response| {
                let _ = tx.send(apply_response_fault(fault, response));
            }),
            Some(cancel.clone()),
        );
    }
    // Reader done: the client is gone, so its queued and in-flight work
    // is abandoned — cancel it to free the workers promptly.
    cancel.cancel();
    // Once in-flight jobs reply, the channel disconnects and the writer
    // exits.
    drop(tx);
    let _ = writer_thread.join();
}

/// Serves requests from stdin to stdout, one response line per request
/// line, in input order. Returns when stdin closes.
pub fn serve_stdin(config: ServiceConfig) {
    let service = SolverService::new(config);
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let response = service.handle_line(&line, Instant::now());
        if writeln!(out, "{response}").is_err() {
            break;
        }
        let _ = out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Command, Request, Response};

    fn request_line(id: u64, cmd: Command) -> String {
        serde_json::to_string(&Request {
            id: Some(id),
            deadline_ms: None,
            no_cache: None,
            hop: None,
            trace: None,
            trace_ctx: None,
            cmd,
        })
        .expect("serializes")
    }

    #[test]
    fn tcp_roundtrip_ping() {
        let mut server = Server::bind(
            "127.0.0.1:0",
            ServiceConfig {
                workers: 2,
                ..Default::default()
            },
        )
        .expect("bind");
        let addr = server.local_addr();

        let mut stream = TcpStream::connect(addr).expect("connect");
        writeln!(stream, "{}", request_line(1, Command::Ping)).expect("send");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        let resp: Response = serde_json::from_str(line.trim()).expect("parses");
        assert_eq!(resp.status, "ok");
        assert_eq!(resp.id, Some(1));
        server.shutdown();
    }

    #[test]
    fn multiple_requests_one_connection() {
        let mut server = Server::bind(
            "127.0.0.1:0",
            ServiceConfig {
                workers: 4,
                ..Default::default()
            },
        )
        .expect("bind");
        let addr = server.local_addr();

        let mut stream = TcpStream::connect(addr).expect("connect");
        for id in 0..8 {
            writeln!(stream, "{}", request_line(id, Command::Ping)).expect("send");
        }
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut seen = std::collections::HashSet::new();
        for _ in 0..8 {
            let mut line = String::new();
            reader.read_line(&mut line).expect("read");
            let resp: Response = serde_json::from_str(line.trim()).expect("parses");
            assert_eq!(resp.status, "ok");
            seen.insert(resp.id.expect("id echoed"));
        }
        assert_eq!(seen.len(), 8, "every request answered exactly once");
        server.shutdown();
    }
}
