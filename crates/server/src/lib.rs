//! # rpwf-server — the solver service
//!
//! A long-lived, concurrent serving layer over the `rpwf` solvers: a
//! JSON-lines request/response protocol served over TCP (`std::net`) or
//! stdin, a fixed worker pool fed by an MPMC channel, per-request
//! deadlines with cooperative cancellation threaded into the exponential
//! solvers, **portfolio racing** (the heuristic portfolio races the
//! strongest applicable exact solver; see
//! [`rpwf_algo::heuristics::Portfolio::race`]), and a sharded
//! content-addressed LRU solution cache keyed by a canonical hash of
//! `(instance, objective)`.
//!
//! ## Layers
//!
//! * [`protocol`] — wire types: [`Request`]/[`Response`], commands,
//!   structured errors (`timeout`/`infeasible`/`invalid`/`internal`),
//! * [`cache`] — the sharded LRU [`cache::SolutionCache`],
//! * [`service`] — transport-independent dispatch
//!   ([`service::SolverService`]) and the [`service::WorkerPool`],
//! * [`server`] — the TCP listener ([`Server`]) and
//!   [`server::serve_stdin`].
//!
//! ## Quick example (in-process)
//!
//! ```
//! use rpwf_server::protocol::{Command, Request};
//! use rpwf_server::service::{ServiceConfig, SolverService};
//! use rpwf_algo::Objective;
//!
//! let service = SolverService::new(ServiceConfig::default());
//! let response = service.handle(
//!     Request {
//!         id: Some(1),
//!         deadline_ms: Some(1_000),
//!         no_cache: None,
//!         cmd: Command::Solve {
//!             pipeline: rpwf_gen::figure5_pipeline(),
//!             platform: rpwf_gen::figure5_platform(),
//!             objective: Objective::MinFpUnderLatency(22.0),
//!         },
//!     },
//!     std::time::Instant::now(),
//! );
//! assert_eq!(response.status, "ok");
//! assert_eq!(response.meta.solver.as_deref(), Some("exact"));
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod cache;
pub mod protocol;
pub mod server;
pub mod service;

pub use protocol::{Command, Request, Response};
pub use server::{serve_stdin, Server};
pub use service::{ServiceConfig, SolverService, WorkerPool};
