//! # rpwf-server — the solver service
//!
//! A long-lived, concurrent serving layer over the `rpwf` solvers: a
//! JSON-lines request/response protocol served over TCP (`std::net`) or
//! stdin, a fixed worker pool fed by an MPMC channel, per-request
//! deadlines with cooperative cancellation threaded into the exponential
//! solvers, and a **front-first** data path over the unified solver
//! engine: every solve/pareto request collapses onto one
//! [`rpwf_algo::engine::Engine::solve`] call (capability filtering,
//! exact-first selection, portfolio racing, budget-cutoff fallback),
//! while the service owns what only a service can — the Pareto front as
//! the unit of caching, batching and streaming. Threshold queries are
//! reads off a front; the sharded LRU cache stores fronts keyed by the
//! canonical `(pipeline, platform)` hash (completeness-aware, so budget
//! cutoffs are reusable but never masquerade as exact); batches group
//! requests by instance and solve one front per distinct instance; large
//! fronts stream as bounded `front_part` chunks.
//!
//! Requests may opt into **end-to-end tracing** (`"trace": true`): every
//! layer — decode, routing, peer forwards, engine planning, per-solver
//! execution, cache access — records spans into one
//! [`rpwf_core::trace::SpanTree`] returned on `meta.trace`, a fleet hop
//! returns a single merged entry+owner tree, and each node keeps a
//! slow-query ring of its recent traced requests behind the `Trace`
//! command.
//!
//! The TCP transport is a poll-based **reactor**: a few event threads
//! multiplex every client and peer connection over nonblocking sockets,
//! per-connection write buffers apply backpressure, peer forwards run as
//! nonblocking continuations in a pending-forward table, and a
//! deadline-aware **admission controller** sheds overload immediately
//! with structured `overloaded` + `retry_after_ms` errors instead of
//! queueing requests into late timeouts.
//!
//! ## Layers
//!
//! * [`protocol`] — wire types: [`Request`]/[`Response`], commands,
//!   `front_part`/`front_end` streaming, structured errors
//!   (`timeout`/`infeasible`/`invalid`/`overloaded`/`internal`),
//! * [`cache`] — the sharded LRU [`cache::SolutionCache`] over
//!   [`cache::CachedEntry`] (fronts + per-query results),
//! * [`metrics`] — per-command latency histograms and the Prometheus-style
//!   text dump behind the `Metrics` command,
//! * [`router`] — the request-path routing layer: [`router::LocalRouter`]
//!   (single node) and [`router::RingRouter`] (consistent-hash fleet
//!   sharding with transparent forwarding),
//! * [`peer`] — pooled JSON-lines clients for fleet peers, each behind a
//!   circuit breaker with seeded jittered backoff,
//! * [`fault`] — deterministic, seed-scripted transport fault injection
//!   (dropped connections, delays, corrupt lines, node kills) for chaos
//!   tests,
//! * [`service`] — transport-independent dispatch
//!   ([`service::SolverService`]) and the [`service::WorkerPool`],
//! * [`admission`] — the deadline-aware admission controller and the
//!   serving-plane tuning knobs ([`admission::ServingOptions`]),
//! * [`server`] — the reactor-backed TCP listener ([`Server`]) and
//!   [`server::serve_stdin`].
//!
//! ## Quick example (in-process)
//!
//! ```
//! use rpwf_server::protocol::{Command, Request};
//! use rpwf_server::service::{ServiceConfig, SolverService};
//! use rpwf_algo::{Objective, Provenance};
//!
//! let service = SolverService::new(ServiceConfig::default());
//! let response = service.handle(
//!     Request {
//!         id: Some(1),
//!         deadline_ms: Some(1_000),
//!         no_cache: None,
//!         hop: None,
//!         trace: None,
//!         trace_ctx: None,
//!         explain: None,
//!         cmd: Command::Solve {
//!             pipeline: rpwf_gen::figure5_pipeline(),
//!             platform: rpwf_gen::figure5_platform(),
//!             objective: Objective::MinFpUnderLatency(22.0),
//!         },
//!     },
//!     std::time::Instant::now(),
//! );
//! assert_eq!(response.status, "ok");
//! assert_eq!(response.meta.solver, Some(Provenance::Exact));
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod admission;
pub mod cache;
pub mod fault;
pub mod metrics;
pub mod peer;
pub mod protocol;
mod reactor;
pub mod router;
pub mod server;
pub mod service;

pub use admission::ServingOptions;
pub use fault::{FaultAction, FaultPlan};
pub use protocol::{Command, Request, Response};
pub use router::{LocalRouter, RingOptions, RingRouter, Router};
pub use server::{serve_stdin, Server};
pub use service::{ServiceConfig, SolverService, WorkerPool};
