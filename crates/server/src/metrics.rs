//! Service observability: per-command latency histograms, per-solver
//! execution counters ([`SolverMetrics`] — the engine's solver mix), and
//! a Prometheus-style plain-text dump.
//!
//! Recording is lock-free (one atomic increment per request into a fixed
//! log-scale bucket array; a handful of atomic adds per solve for the
//! solver mix), so it sits on the hot path of every command. Buckets are
//! powers of two in microseconds from 1 µs to ~1 s plus a catch-all,
//! which keeps quantile estimates within a factor of two — plenty for
//! spotting regressions and tail blowups.

use crate::protocol::{Command, CommandStatsOut, SolverStatsOut};
use rpwf_algo::engine::SolverStat;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of finite buckets: upper bounds `2^0 .. 2^19` µs (~0.5 s), the
/// last bucket catches everything beyond.
const BUCKETS: usize = 20;

/// Upper bound (µs) of bucket `i`; the final bucket is unbounded.
#[must_use]
pub fn bucket_bound_us(i: usize) -> u64 {
    1u64 << i
}

/// A fixed log-scale latency histogram.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS + 1],
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl LatencyHistogram {
    /// Records one observation.
    pub fn record(&self, us: u64) {
        let idx = if us <= 1 {
            0
        } else {
            let bits = 64 - (us - 1).leading_zeros() as usize; // ceil(log2)
            bits.min(BUCKETS)
        };
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Smallest bucket upper bound below which at least `q` (0..=1) of
    /// the observations fall; the max observation for the catch-all.
    #[must_use]
    pub fn quantile_us(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for i in 0..BUCKETS {
            seen += self.buckets[i].load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_bound_us(i);
            }
        }
        self.max_us.load(Ordering::Relaxed)
    }

    /// Renders this histogram as a standalone Prometheus-style series
    /// `name` (`# TYPE` header, cumulative `_bucket{le=…}` counters,
    /// `_sum`, `_count`) — the rendering used for the unlabeled serving
    /// histograms (`rpwf_reactor_loop_us`, `rpwf_admission_shed_latency_us`).
    /// Empty histograms still render (all-zero buckets), so a scrape
    /// always sees the series.
    pub fn render_prometheus_series(&self, name: &str, out: &mut String) {
        use std::fmt::Write as _;
        writeln!(out, "# TYPE {name} histogram").expect("write to string");
        let mut cumulative = 0u64;
        for i in 0..BUCKETS {
            cumulative += self.buckets[i].load(Ordering::Relaxed);
            writeln!(
                out,
                "{name}_bucket{{le=\"{}\"}} {cumulative}",
                bucket_bound_us(i)
            )
            .expect("write to string");
        }
        cumulative += self.buckets[BUCKETS].load(Ordering::Relaxed);
        writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cumulative}").expect("write to string");
        writeln!(out, "{name}_sum {}", self.sum_us.load(Ordering::Relaxed))
            .expect("write to string");
        writeln!(out, "{name}_count {}", self.count()).expect("write to string");
    }

    /// Snapshot for the `Stats` command; `None` when nothing was recorded.
    #[must_use]
    pub fn summary(&self, command: &str) -> Option<CommandStatsOut> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        #[allow(clippy::cast_precision_loss)]
        Some(CommandStatsOut {
            command: command.to_string(),
            count,
            mean_us: self.sum_us.load(Ordering::Relaxed) as f64 / count as f64,
            p50_us: self.quantile_us(0.50),
            p90_us: self.quantile_us(0.90),
            p99_us: self.quantile_us(0.99),
            max_us: self.max_us.load(Ordering::Relaxed),
        })
    }
}

/// One histogram per protocol command.
#[derive(Debug)]
pub struct CommandMetrics {
    histograms: Vec<LatencyHistogram>,
}

impl Default for CommandMetrics {
    fn default() -> Self {
        CommandMetrics {
            histograms: Command::all_names()
                .iter()
                .map(|_| LatencyHistogram::default())
                .collect(),
        }
    }
}

impl CommandMetrics {
    /// A fresh registry.
    #[must_use]
    pub fn new() -> Self {
        CommandMetrics::default()
    }

    /// Records one handled request of command `name` taking `us`
    /// microseconds. Unknown names are ignored (future-proofing).
    pub fn record(&self, name: &str, us: u64) {
        if let Some(idx) = Command::all_names().iter().position(|&n| n == name) {
            self.histograms[idx].record(us);
        }
    }

    /// Per-command summaries for commands that saw traffic, in the stable
    /// [`Command::all_names`] order.
    #[must_use]
    pub fn summaries(&self) -> Vec<CommandStatsOut> {
        Command::all_names()
            .iter()
            .zip(&self.histograms)
            .filter_map(|(name, h)| h.summary(name))
            .collect()
    }

    /// Renders the histograms in Prometheus exposition style (cumulative
    /// `_bucket{le=…}` counters, `_sum`, `_count`) into `out`.
    pub fn render_prometheus(&self, out: &mut String) {
        use std::fmt::Write as _;
        let w = |out: &mut String, line: std::fmt::Arguments<'_>| {
            writeln!(out, "{line}").expect("write to string");
        };
        w(
            out,
            format_args!("# TYPE rpwf_command_requests_total counter"),
        );
        for (name, h) in Command::all_names().iter().zip(&self.histograms) {
            w(
                out,
                format_args!(
                    "rpwf_command_requests_total{{cmd=\"{name}\"}} {}",
                    h.count()
                ),
            );
        }
        w(
            out,
            format_args!("# TYPE rpwf_command_latency_us histogram"),
        );
        for (name, h) in Command::all_names().iter().zip(&self.histograms) {
            if h.count() == 0 {
                continue;
            }
            let mut cumulative = 0u64;
            for i in 0..BUCKETS {
                cumulative += h.buckets[i].load(Ordering::Relaxed);
                w(
                    out,
                    format_args!(
                        "rpwf_command_latency_us_bucket{{cmd=\"{name}\",le=\"{}\"}} {cumulative}",
                        bucket_bound_us(i)
                    ),
                );
            }
            cumulative += h.buckets[BUCKETS].load(Ordering::Relaxed);
            w(
                out,
                format_args!(
                    "rpwf_command_latency_us_bucket{{cmd=\"{name}\",le=\"+Inf\"}} {cumulative}"
                ),
            );
            w(
                out,
                format_args!(
                    "rpwf_command_latency_us_sum{{cmd=\"{name}\"}} {}",
                    h.sum_us.load(Ordering::Relaxed)
                ),
            );
            w(
                out,
                format_args!(
                    "rpwf_command_latency_us_count{{cmd=\"{name}\"}} {}",
                    h.count()
                ),
            );
        }
    }
}

/// Lock-free counters for one solver backend.
#[derive(Debug, Default)]
struct SolverSlot {
    calls: AtomicU64,
    elapsed_us: AtomicU64,
    complete: AtomicU64,
    produced: AtomicU64,
    units_executed: AtomicU64,
    units_stolen: AtomicU64,
    improvements: AtomicU64,
}

/// Per-solver execution counters, keyed by the engine's registry names.
///
/// Built once from `Engine::solvers()` at service construction; recording
/// a [`SolveReport`](rpwf_algo::engine::SolveReport)'s stats is a name
/// lookup plus four relaxed atomic adds per executed backend. Names not
/// in the registry (a backend registered after the service was built) are
/// ignored, mirroring [`CommandMetrics::record`].
#[derive(Debug)]
pub struct SolverMetrics {
    names: Vec<&'static str>,
    slots: Vec<SolverSlot>,
}

impl SolverMetrics {
    /// A registry over the given solver names (preference order).
    #[must_use]
    pub fn new(names: Vec<&'static str>) -> Self {
        let slots = names.iter().map(|_| SolverSlot::default()).collect();
        SolverMetrics { names, slots }
    }

    /// Folds one solve's per-backend stats into the counters.
    pub fn record(&self, stats: &[SolverStat]) {
        for stat in stats {
            let Some(idx) = self.names.iter().position(|&n| n == stat.solver) else {
                continue;
            };
            let slot = &self.slots[idx];
            slot.calls.fetch_add(1, Ordering::Relaxed);
            slot.elapsed_us
                .fetch_add(stat.elapsed_us, Ordering::Relaxed);
            if stat.complete {
                slot.complete.fetch_add(1, Ordering::Relaxed);
            }
            if stat.produced {
                slot.produced.fetch_add(1, Ordering::Relaxed);
            }
            if let Some(par) = stat.parallel {
                slot.units_executed
                    .fetch_add(par.units_executed, Ordering::Relaxed);
                slot.units_stolen
                    .fetch_add(par.units_stolen, Ordering::Relaxed);
                slot.improvements
                    .fetch_add(par.improvements, Ordering::Relaxed);
            }
        }
    }

    /// Snapshot for the `Stats` command: backends that were called, in
    /// registry order.
    #[must_use]
    pub fn snapshot(&self) -> Vec<SolverStatsOut> {
        self.names
            .iter()
            .zip(&self.slots)
            .filter(|(_, slot)| slot.calls.load(Ordering::Relaxed) > 0)
            .map(|(name, slot)| SolverStatsOut {
                solver: (*name).to_string(),
                calls: slot.calls.load(Ordering::Relaxed),
                elapsed_us: slot.elapsed_us.load(Ordering::Relaxed),
                complete: slot.complete.load(Ordering::Relaxed),
                produced: slot.produced.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Renders `rpwf_engine_solver_*` counters (every registered backend,
    /// including zeros — a scrape sees the full solver roster).
    pub fn render_prometheus(&self, out: &mut String) {
        use std::fmt::Write as _;
        for (metric, read) in [
            (
                "rpwf_engine_solver_calls_total",
                (|slot: &SolverSlot| slot.calls.load(Ordering::Relaxed)) as fn(&SolverSlot) -> u64,
            ),
            ("rpwf_engine_solver_elapsed_us_total", |slot| {
                slot.elapsed_us.load(Ordering::Relaxed)
            }),
            ("rpwf_engine_solver_complete_total", |slot| {
                slot.complete.load(Ordering::Relaxed)
            }),
            ("rpwf_engine_solver_produced_total", |slot| {
                slot.produced.load(Ordering::Relaxed)
            }),
            ("rpwf_engine_solver_work_units_total", |slot| {
                slot.units_executed.load(Ordering::Relaxed)
            }),
            ("rpwf_engine_solver_work_units_stolen_total", |slot| {
                slot.units_stolen.load(Ordering::Relaxed)
            }),
            ("rpwf_engine_solver_incumbent_improvements_total", |slot| {
                slot.improvements.load(Ordering::Relaxed)
            }),
        ] {
            writeln!(out, "# TYPE {metric} counter").expect("write to string");
            for (name, slot) in self.names.iter().zip(&self.slots) {
                writeln!(out, "{metric}{{solver=\"{name}\"}} {}", read(slot))
                    .expect("write to string");
            }
        }
    }
}

/// Counters for the `Explain` machinery: calls, oracle effort, the
/// cache-served fraction's numerator/denominator, and a MUS-size
/// histogram. Lock-free like every other registry here. Effort counters
/// live *only* in metrics — the wire explanation excludes them so warm
/// and cold nodes answer byte-identically.
#[derive(Debug, Default)]
pub struct ExplainMetrics {
    calls: AtomicU64,
    feasible: AtomicU64,
    unproven: AtomicU64,
    oracle_calls: AtomicU64,
    oracle_cached: AtomicU64,
    /// MUS sizes 1..=4 (index `size - 1`); the universe has 4 members.
    mus_sizes: [AtomicU64; 4],
}

impl ExplainMetrics {
    /// A fresh registry.
    #[must_use]
    pub fn new() -> Self {
        ExplainMetrics::default()
    }

    /// Folds one assembled explanation into the counters.
    pub fn record(&self, explanation: &rpwf_algo::Explanation) {
        self.calls.fetch_add(1, Ordering::Relaxed);
        if explanation.feasible {
            self.feasible.fetch_add(1, Ordering::Relaxed);
        }
        if !explanation.proven {
            self.unproven.fetch_add(1, Ordering::Relaxed);
        }
        self.oracle_calls
            .fetch_add(explanation.oracle_calls, Ordering::Relaxed);
        self.oracle_cached
            .fetch_add(explanation.oracle_cached, Ordering::Relaxed);
        for mus in &explanation.muses {
            if let Some(slot) = mus.len().checked_sub(1).and_then(|i| self.mus_sizes.get(i)) {
                slot.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Renders the `rpwf_explain_*` counters.
    pub fn render_prometheus(&self, out: &mut String) {
        use std::fmt::Write as _;
        for (metric, value) in [
            (
                "rpwf_explain_calls_total",
                self.calls.load(Ordering::Relaxed),
            ),
            (
                "rpwf_explain_feasible_total",
                self.feasible.load(Ordering::Relaxed),
            ),
            (
                "rpwf_explain_unproven_total",
                self.unproven.load(Ordering::Relaxed),
            ),
            (
                "rpwf_explain_oracle_calls_total",
                self.oracle_calls.load(Ordering::Relaxed),
            ),
            (
                "rpwf_explain_oracle_cached_total",
                self.oracle_cached.load(Ordering::Relaxed),
            ),
        ] {
            writeln!(out, "# TYPE {metric} counter").expect("write to string");
            writeln!(out, "{metric} {value}").expect("write to string");
        }
        writeln!(out, "# TYPE rpwf_explain_mus_size_total counter").expect("write to string");
        for (i, slot) in self.mus_sizes.iter().enumerate() {
            writeln!(
                out,
                "rpwf_explain_mus_size_total{{size=\"{}\"}} {}",
                i + 1,
                slot.load(Ordering::Relaxed)
            )
            .expect("write to string");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log_scale_and_cumulative() {
        let h = LatencyHistogram::default();
        for us in [1u64, 2, 3, 4, 100, 400_000, u64::MAX / 2] {
            h.record(us);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.max_us.load(Ordering::Relaxed), u64::MAX / 2);
        // 1 → bucket 0 (≤1), 2 → bucket 1 (≤2), 3,4 → bucket 2 (≤4).
        assert_eq!(h.buckets[0].load(Ordering::Relaxed), 1);
        assert_eq!(h.buckets[1].load(Ordering::Relaxed), 1);
        assert_eq!(h.buckets[2].load(Ordering::Relaxed), 2);
        // The huge value lands in the catch-all.
        assert_eq!(h.buckets[BUCKETS].load(Ordering::Relaxed), 1);
    }

    #[test]
    fn quantiles_walk_the_cumulative_counts() {
        let h = LatencyHistogram::default();
        for _ in 0..90 {
            h.record(10); // bucket le=16
        }
        for _ in 0..10 {
            h.record(5_000); // bucket le=8192
        }
        assert_eq!(h.quantile_us(0.5), 16);
        assert_eq!(h.quantile_us(0.9), 16);
        assert_eq!(h.quantile_us(0.99), 8192);
        assert_eq!(LatencyHistogram::default().quantile_us(0.5), 0);
    }

    #[test]
    fn registry_records_by_name_and_summarizes() {
        let m = CommandMetrics::new();
        m.record("solve", 100);
        m.record("solve", 200);
        m.record("ping", 1);
        m.record("bogus", 1); // ignored
        let s = m.summaries();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].command, "ping");
        assert_eq!(s[1].command, "solve");
        assert_eq!(s[1].count, 2);
        assert!((s[1].mean_us - 150.0).abs() < 1e-9);
        assert!(s[1].max_us == 200);
    }

    #[test]
    fn solver_metrics_fold_stats_and_render() {
        let m = SolverMetrics::new(vec!["bitmask-dp", "local-search"]);
        m.record(&[
            SolverStat {
                solver: "bitmask-dp",
                elapsed_us: 120,
                complete: true,
                produced: true,
                parallel: None,
            },
            SolverStat {
                solver: "local-search",
                elapsed_us: 80,
                complete: true,
                produced: false,
                parallel: None,
            },
            SolverStat {
                solver: "unregistered",
                elapsed_us: 1,
                complete: false,
                produced: false,
                parallel: None,
            },
        ]);
        m.record(&[SolverStat {
            solver: "bitmask-dp",
            elapsed_us: 30,
            complete: false,
            produced: true,
            parallel: None,
        }]);
        let snap = m.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].solver, "bitmask-dp");
        assert_eq!(snap[0].calls, 2);
        assert_eq!(snap[0].elapsed_us, 150);
        assert_eq!(snap[0].complete, 1);
        assert_eq!(snap[0].produced, 2);
        let mut text = String::new();
        m.render_prometheus(&mut text);
        assert!(
            text.contains("rpwf_engine_solver_calls_total{solver=\"bitmask-dp\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("rpwf_engine_solver_elapsed_us_total{solver=\"local-search\"} 80"),
            "{text}"
        );
        assert!(
            text.contains("rpwf_engine_solver_produced_total{solver=\"local-search\"} 0"),
            "{text}"
        );
    }

    #[test]
    fn solver_metrics_fold_parallel_search_counters() {
        use rpwf_algo::engine::ParallelSummary;

        let m = SolverMetrics::new(vec!["branch-bound"]);
        m.record(&[SolverStat {
            solver: "branch-bound",
            elapsed_us: 500,
            complete: true,
            produced: true,
            parallel: Some(ParallelSummary {
                threads: 4,
                units_executed: 60,
                units_stolen: 12,
                improvements: 3,
            }),
        }]);
        m.record(&[SolverStat {
            solver: "branch-bound",
            elapsed_us: 100,
            complete: true,
            produced: true,
            parallel: Some(ParallelSummary {
                threads: 4,
                units_executed: 10,
                units_stolen: 2,
                improvements: 1,
            }),
        }]);
        let mut text = String::new();
        m.render_prometheus(&mut text);
        assert!(
            text.contains("rpwf_engine_solver_work_units_total{solver=\"branch-bound\"} 70"),
            "{text}"
        );
        assert!(
            text.contains("rpwf_engine_solver_work_units_stolen_total{solver=\"branch-bound\"} 14"),
            "{text}"
        );
        assert!(
            text.contains(
                "rpwf_engine_solver_incumbent_improvements_total{solver=\"branch-bound\"} 4"
            ),
            "{text}"
        );
    }

    #[test]
    fn explain_metrics_fold_and_render() {
        let m = ExplainMetrics::new();
        m.record(&rpwf_algo::Explanation {
            objective: rpwf_algo::Objective::MinFpUnderLatency(1.0),
            universe: Vec::new(),
            feasible: false,
            muses: vec![vec![0, 1], vec![0]],
            mcses: vec![vec![2]],
            relaxation: None,
            proven: false,
            oracle_calls: 5,
            oracle_cached: 2,
        });
        let mut text = String::new();
        m.render_prometheus(&mut text);
        assert!(text.contains("rpwf_explain_calls_total 1"), "{text}");
        assert!(text.contains("rpwf_explain_unproven_total 1"), "{text}");
        assert!(text.contains("rpwf_explain_oracle_calls_total 5"), "{text}");
        assert!(
            text.contains("rpwf_explain_oracle_cached_total 2"),
            "{text}"
        );
        assert!(
            text.contains("rpwf_explain_mus_size_total{size=\"1\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("rpwf_explain_mus_size_total{size=\"2\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn prometheus_dump_shape() {
        let m = CommandMetrics::new();
        m.record("solve", 100);
        let mut text = String::new();
        m.render_prometheus(&mut text);
        assert!(
            text.contains("rpwf_command_requests_total{cmd=\"solve\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("le=\"+Inf\"}} 1") || text.contains("le=\"+Inf\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("rpwf_command_latency_us_count{cmd=\"solve\"} 1"),
            "{text}"
        );
        // Untouched commands report zero request counters but no buckets.
        assert!(
            text.contains("rpwf_command_requests_total{cmd=\"pareto\"} 0"),
            "{text}"
        );
        assert!(!text.contains("latency_us_bucket{cmd=\"pareto\""), "{text}");
    }
}
