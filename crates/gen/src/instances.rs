//! Bundled problem instances (pipeline + platform) for sweeps.
//!
//! Experiment tables iterate over *suites* of instances; this module gives
//! the suites names, stable seeds, and serializable descriptions so the
//! bench harness can print exactly which instance produced which row.

use crate::pipelines::PipelineGen;
use crate::platforms::PlatformGen;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rpwf_core::platform::{FailureClass, Platform, PlatformClass};
use rpwf_core::stage::Pipeline;
use serde::{Deserialize, Serialize};

/// One generated problem instance with its provenance.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Instance {
    /// Suite-unique label, e.g. `ch-fhet/n4m5/seed17`.
    pub label: String,
    /// Seed that reproduces the instance.
    pub seed: u64,
    /// The application.
    pub pipeline: Pipeline,
    /// The platform.
    pub platform: Platform,
}

/// Specification of an instance suite: a cross product of sizes × seeds for
/// a fixed class combination.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SuiteSpec {
    /// Platform communication class.
    pub class: PlatformClass,
    /// Platform failure class.
    pub failure_class: FailureClass,
    /// `(n_stages, m_procs)` size points.
    pub sizes: Vec<(usize, usize)>,
    /// Seeds per size point.
    pub seeds: Vec<u64>,
}

impl SuiteSpec {
    /// Small sizes suitable for exhaustive cross-validation.
    #[must_use]
    pub fn small(class: PlatformClass, failure_class: FailureClass) -> Self {
        SuiteSpec {
            class,
            failure_class,
            sizes: vec![(2, 3), (3, 4), (4, 4), (4, 5), (5, 5)],
            seeds: vec![11, 23, 47, 91],
        }
    }

    /// Materializes every instance of the suite.
    #[must_use]
    pub fn instances(&self) -> Vec<Instance> {
        let mut out = Vec::with_capacity(self.sizes.len() * self.seeds.len());
        for &(n, m) in &self.sizes {
            for &seed in &self.seeds {
                out.push(make_instance(self.class, self.failure_class, n, m, seed));
            }
        }
        out
    }
}

/// Generates a single named instance.
#[must_use]
pub fn make_instance(
    class: PlatformClass,
    failure_class: FailureClass,
    n: usize,
    m: usize,
    seed: u64,
) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let pipeline = PipelineGen::balanced(n).sample(&mut rng);
    let platform = PlatformGen::new(m, class, failure_class).sample(&mut rng);
    let class_tag = match class {
        PlatformClass::FullyHomogeneous => "fh",
        PlatformClass::CommHomogeneous => "ch",
        PlatformClass::FullyHeterogeneous => "het",
    };
    let failure_tag = match failure_class {
        FailureClass::Homogeneous => "fhom",
        FailureClass::Heterogeneous => "fhet",
    };
    Instance {
        label: format!("{class_tag}-{failure_tag}/n{n}m{m}/seed{seed}"),
        seed,
        pipeline,
        platform,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_materializes_all_points() {
        let spec = SuiteSpec::small(PlatformClass::CommHomogeneous, FailureClass::Heterogeneous);
        let instances = spec.instances();
        assert_eq!(instances.len(), spec.sizes.len() * spec.seeds.len());
        for inst in &instances {
            assert_eq!(inst.platform.class(), PlatformClass::CommHomogeneous);
            assert_eq!(inst.platform.failure_class(), FailureClass::Heterogeneous);
            assert!(inst.label.starts_with("ch-fhet/"));
        }
    }

    #[test]
    fn instances_are_reproducible() {
        let a = make_instance(
            PlatformClass::FullyHeterogeneous,
            FailureClass::Heterogeneous,
            4,
            5,
            77,
        );
        let b = make_instance(
            PlatformClass::FullyHeterogeneous,
            FailureClass::Heterogeneous,
            4,
            5,
            77,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn labels_are_unique_within_suite() {
        let spec = SuiteSpec::small(PlatformClass::FullyHomogeneous, FailureClass::Homogeneous);
        let instances = spec.instances();
        let mut labels: Vec<&str> = instances.iter().map(|i| i.label.as_str()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), instances.len());
    }
}
