//! Platform generators for every class of the paper's taxonomy.
//!
//! The paper states its results parametrically in the platform class; it
//! ships no concrete platform files. These seeded generators provide the
//! synthetic instances used by the cross-validation tests and experiment
//! tables (DESIGN.md §4 documents this substitution).

use rand::Rng;
use rpwf_core::platform::{FailureClass, Platform, PlatformBuilder, PlatformClass, ProcId, Vertex};
use serde::{Deserialize, Serialize};

/// Parametric random-platform specification.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PlatformGen {
    /// Number of processors.
    pub m: usize,
    /// Target communication class.
    pub class: PlatformClass,
    /// Target failure class.
    pub failure_class: FailureClass,
    /// Uniform range for speeds (one shared draw when speed-homogeneous).
    pub speed_range: (f64, f64),
    /// Uniform range for bandwidths (one shared draw when comm-homogeneous).
    pub bandwidth_range: (f64, f64),
    /// Uniform range for failure probabilities (one shared draw when
    /// failure-homogeneous).
    pub failure_range: (f64, f64),
}

impl PlatformGen {
    /// A sensible default spec for the given classes.
    #[must_use]
    pub fn new(m: usize, class: PlatformClass, failure_class: FailureClass) -> Self {
        PlatformGen {
            m,
            class,
            failure_class,
            speed_range: (1.0, 20.0),
            bandwidth_range: (1.0, 10.0),
            failure_range: (0.05, 0.6),
        }
    }

    /// Draws one platform of the requested classes.
    ///
    /// Heterogeneous draws are rejection-free: with continuous ranges, two
    /// draws collide with probability 0, so the sampled platform classifies
    /// as requested (asserted in debug builds).
    #[must_use]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Platform {
        assert!(self.m >= 1, "platform must have at least one processor");
        let m = self.m;

        let speeds: Vec<f64> = match self.class {
            PlatformClass::FullyHomogeneous => {
                vec![rng.gen_range(self.speed_range.0..=self.speed_range.1); m]
            }
            _ => (0..m)
                .map(|_| rng.gen_range(self.speed_range.0..=self.speed_range.1))
                .collect(),
        };

        let fps: Vec<f64> = match self.failure_class {
            FailureClass::Homogeneous => {
                vec![rng.gen_range(self.failure_range.0..=self.failure_range.1); m]
            }
            FailureClass::Heterogeneous => (0..m)
                .map(|_| rng.gen_range(self.failure_range.0..=self.failure_range.1))
                .collect(),
        };

        let mut builder = PlatformBuilder::new(m)
            .speeds(speeds)
            .expect("length matches")
            .failure_probs(fps)
            .expect("length matches");

        match self.class {
            PlatformClass::FullyHomogeneous | PlatformClass::CommHomogeneous => {
                let b = rng.gen_range(self.bandwidth_range.0..=self.bandwidth_range.1);
                builder = builder.bandwidth_uniform(b);
            }
            PlatformClass::FullyHeterogeneous => {
                let verts: Vec<Vertex> = (0..m)
                    .map(|i| Vertex::Proc(ProcId::new(i)))
                    .chain([Vertex::In, Vertex::Out])
                    .collect();
                for i in 0..verts.len() {
                    for j in i + 1..verts.len() {
                        let b = rng.gen_range(self.bandwidth_range.0..=self.bandwidth_range.1);
                        builder = builder.bandwidth(verts[i], verts[j], b);
                    }
                }
            }
        }

        let platform = builder.build().expect("generated values are in-range");
        debug_assert_eq!(platform.class(), self.class);
        debug_assert_eq!(platform.failure_class(), self.failure_class);
        platform
    }
}

/// A two-level "cluster of clusters" platform: `clusters × per_cluster`
/// processors, fast intra-cluster links (`intra_bw`), slow inter-cluster
/// links (`inter_bw`), I/O attached to cluster 0 at `intra_bw`. Speeds and
/// failure probabilities alternate per cluster between the given pairs —
/// a caricature of a grid of heterogeneous sites used by the examples.
#[must_use]
pub fn cluster_of_clusters(
    clusters: usize,
    per_cluster: usize,
    intra_bw: f64,
    inter_bw: f64,
    speeds: (f64, f64),
    fps: (f64, f64),
) -> Platform {
    assert!(clusters >= 1 && per_cluster >= 1);
    let m = clusters * per_cluster;
    let mut builder = PlatformBuilder::new(m);
    for c in 0..clusters {
        let (s, fp) = if c % 2 == 0 {
            (speeds.0, fps.0)
        } else {
            (speeds.1, fps.1)
        };
        for k in 0..per_cluster {
            let pid = ProcId::new(c * per_cluster + k);
            builder = builder.speed(pid, s).failure_prob(pid, fp);
        }
    }
    for i in 0..m {
        for j in i + 1..m {
            let same = i / per_cluster == j / per_cluster;
            let bw = if same { intra_bw } else { inter_bw };
            builder = builder.bandwidth(
                Vertex::Proc(ProcId::new(i)),
                Vertex::Proc(ProcId::new(j)),
                bw,
            );
        }
    }
    for i in 0..m {
        let bw = if i < per_cluster { intra_bw } else { inter_bw };
        builder = builder
            .input_bandwidth(ProcId::new(i), bw)
            .output_bandwidth(ProcId::new(i), bw);
    }
    builder.build().expect("static values are valid")
}

/// The Figure 4 platform of the paper (§3): two unit-speed processors where
/// only the `P_in → P_1 → P_2 → P_out` chain has fast (100) links.
#[must_use]
pub fn figure4_platform() -> Platform {
    let p1 = ProcId::new(0);
    let p2 = ProcId::new(1);
    PlatformBuilder::new(2)
        .input_bandwidth(p1, 100.0)
        .input_bandwidth(p2, 1.0)
        .bandwidth(Vertex::Proc(p1), Vertex::Proc(p2), 100.0)
        .output_bandwidth(p1, 1.0)
        .output_bandwidth(p2, 100.0)
        .build()
        .expect("static values are valid")
}

/// The Figure 5 platform of the paper (§3): processor 0 slow (s = 1) and
/// reliable (fp = 0.1), processors 1–10 fast (s = 100) and unreliable
/// (fp = 0.8), uniform bandwidth 1.
#[must_use]
pub fn figure5_platform() -> Platform {
    let mut speeds = vec![100.0; 11];
    speeds[0] = 1.0;
    let mut fps = vec![0.8; 11];
    fps[0] = 0.1;
    Platform::comm_homogeneous(speeds, 1.0, fps).expect("static values are valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn every_class_combination_samples_correctly() {
        let mut rng = StdRng::seed_from_u64(99);
        for class in [
            PlatformClass::FullyHomogeneous,
            PlatformClass::CommHomogeneous,
            PlatformClass::FullyHeterogeneous,
        ] {
            for failure in [FailureClass::Homogeneous, FailureClass::Heterogeneous] {
                let pf = PlatformGen::new(6, class, failure).sample(&mut rng);
                assert_eq!(pf.class(), class, "{class:?}/{failure:?}");
                assert_eq!(pf.failure_class(), failure, "{class:?}/{failure:?}");
                assert_eq!(pf.n_procs(), 6);
            }
        }
    }

    #[test]
    fn sampling_is_reproducible() {
        let spec = PlatformGen::new(
            5,
            PlatformClass::FullyHeterogeneous,
            FailureClass::Heterogeneous,
        );
        let a = spec.sample(&mut StdRng::seed_from_u64(3));
        let b = spec.sample(&mut StdRng::seed_from_u64(3));
        assert_eq!(a, b);
    }

    #[test]
    fn cluster_platform_structure() {
        let pf = cluster_of_clusters(2, 3, 10.0, 1.0, (4.0, 2.0), (0.1, 0.4));
        assert_eq!(pf.n_procs(), 6);
        assert_eq!(pf.class(), PlatformClass::FullyHeterogeneous);
        // Intra-cluster fast, inter-cluster slow.
        let a = Vertex::Proc(ProcId::new(0));
        let b = Vertex::Proc(ProcId::new(1));
        let c = Vertex::Proc(ProcId::new(3));
        assert_eq!(pf.bandwidth(a, b), 10.0);
        assert_eq!(pf.bandwidth(a, c), 1.0);
        // Cluster 1 is the slow/unreliable one.
        assert_eq!(pf.speed(ProcId::new(4)), 2.0);
        assert_eq!(pf.failure_prob(ProcId::new(4)), 0.4);
    }

    #[test]
    fn figure_platforms_classify_as_in_the_paper() {
        assert_eq!(
            figure4_platform().class(),
            PlatformClass::FullyHeterogeneous
        );
        let f5 = figure5_platform();
        assert_eq!(f5.class(), PlatformClass::CommHomogeneous);
        assert_eq!(f5.failure_class(), FailureClass::Heterogeneous);
        assert_eq!(f5.n_procs(), 11);
    }
}
