//! # rpwf-gen — seeded instance generators
//!
//! Workloads (pipelines), platforms, and NP-hardness source instances for
//! the rpwf workspace. Everything is driven by an explicit `rand::Rng`, so
//! experiments and tests are reproducible from a single seed.
//!
//! * [`pipelines`] — parametric random pipelines, the JPEG encoder workload,
//!   and the paper's Figure 3/Figure 5 pipelines,
//! * [`platforms`] — random platforms for each (class × failure-class)
//!   combination, a cluster-of-clusters topology, and the paper's Figure 4 /
//!   Figure 5 platforms,
//! * [`reductions`] — TSP and 2-PARTITION source instances with
//!   cross-check solvers,
//! * [`instances`] — named (pipeline, platform) suites for sweeps.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod instances;
pub mod pipelines;
pub mod platforms;
pub mod reductions;

pub use instances::{make_instance, Instance, SuiteSpec};
pub use pipelines::{figure3_pipeline, figure5_pipeline, jpeg_encoder, PipelineGen};
pub use platforms::{cluster_of_clusters, figure4_platform, figure5_platform, PlatformGen};
pub use reductions::{TspInstance, TwoPartitionInstance};
