//! Pipeline workload generators.
//!
//! Seeded, reproducible generators for the application side of the model:
//! parametric random pipelines for sweeps, plus the JPEG encoder pipeline —
//! the workflow the paper's introduction motivates ("a well known pipeline
//! application of this type is for example JPEG encoding") and the workload
//! of the authors' companion study.

use rand::Rng;
use rpwf_core::stage::{Pipeline, PipelineBuilder};
use serde::{Deserialize, Serialize};

/// Parametric random-pipeline specification.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PipelineGen {
    /// Number of stages.
    pub n: usize,
    /// Uniform range for per-stage work `w_k`.
    pub work_range: (f64, f64),
    /// Uniform range for data sizes `δ_i` (including input and output).
    pub delta_range: (f64, f64),
}

impl PipelineGen {
    /// Balanced preset: work and communication of comparable magnitude.
    #[must_use]
    pub fn balanced(n: usize) -> Self {
        PipelineGen {
            n,
            work_range: (1.0, 100.0),
            delta_range: (1.0, 100.0),
        }
    }

    /// Compute-heavy preset: splitting into intervals is rarely worthwhile,
    /// replication is cheap.
    #[must_use]
    pub fn compute_heavy(n: usize) -> Self {
        PipelineGen {
            n,
            work_range: (100.0, 1000.0),
            delta_range: (1.0, 10.0),
        }
    }

    /// Communication-heavy preset: replication costs dominate, Figure 3/4
    /// style splits pay off.
    #[must_use]
    pub fn comm_heavy(n: usize) -> Self {
        PipelineGen {
            n,
            work_range: (1.0, 10.0),
            delta_range: (100.0, 1000.0),
        }
    }

    /// Draws one pipeline.
    ///
    /// # Panics
    /// When the spec has `n = 0` or an empty range (programmer error).
    #[must_use]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Pipeline {
        assert!(self.n >= 1, "pipeline must have at least one stage");
        let works: Vec<f64> = (0..self.n)
            .map(|_| rng.gen_range(self.work_range.0..=self.work_range.1))
            .collect();
        let deltas: Vec<f64> = (0..=self.n)
            .map(|_| rng.gen_range(self.delta_range.0..=self.delta_range.1))
            .collect();
        Pipeline::new(works, deltas).expect("ranges are non-negative")
    }
}

/// The JPEG encoder pipeline (7 stages), with synthetic but
/// realistically-shaped costs for one 512×512 RGB frame.
///
/// | stage | operation | work (Mflop) | output (KB) |
/// |-------|-----------|--------------|-------------|
/// | 1 | scaling / preprocessing | 50 | 768 |
/// | 2 | RGB → YCbCr conversion | 30 | 768 |
/// | 3 | chroma subsampling (4:2:0) | 10 | 384 |
/// | 4 | 8×8 block DCT | 120 | 384 |
/// | 5 | quantization | 20 | 384 |
/// | 6 | zigzag + run-length coding | 15 | 96 |
/// | 7 | Huffman encoding | 25 | 48 |
///
/// The input read from `P_in` is the raw 768 KB frame. Absolute numbers are
/// a substitution for the companion paper's measured profile (DESIGN.md §4);
/// what matters to the mapping problem is the shape: a compute spike at the
/// DCT and a sharp data-size drop after entropy coding.
#[must_use]
pub fn jpeg_encoder() -> Pipeline {
    PipelineBuilder::with_input_size(768.0)
        .stage(50.0, 768.0) // scaling
        .stage(30.0, 768.0) // color-space conversion
        .stage(10.0, 384.0) // subsampling
        .stage(120.0, 384.0) // DCT
        .stage(20.0, 384.0) // quantization
        .stage(15.0, 96.0) // zigzag + RLE
        .stage(25.0, 48.0) // Huffman
        .build()
        .expect("static costs are valid")
}

/// The two-stage pipeline of Figure 3 (§3): `w = 2` per stage, `δ = 100`
/// everywhere.
#[must_use]
pub fn figure3_pipeline() -> Pipeline {
    Pipeline::new(vec![2.0, 2.0], vec![100.0, 100.0, 100.0]).expect("static costs are valid")
}

/// The two-stage pipeline of Figure 5 (§3): `w_1 = 1`, `w_2 = 100`,
/// `δ_0 = 10`, `δ_1 = 1`, `δ_2 = 0`.
#[must_use]
pub fn figure5_pipeline() -> Pipeline {
    Pipeline::new(vec![1.0, 100.0], vec![10.0, 1.0, 0.0]).expect("static costs are valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sample_respects_ranges() {
        let spec = PipelineGen {
            n: 10,
            work_range: (5.0, 6.0),
            delta_range: (1.0, 2.0),
        };
        let mut rng = StdRng::seed_from_u64(42);
        let p = spec.sample(&mut rng);
        assert_eq!(p.n_stages(), 10);
        assert!(p.works().iter().all(|&w| (5.0..=6.0).contains(&w)));
        assert!(p.deltas().iter().all(|&d| (1.0..=2.0).contains(&d)));
    }

    #[test]
    fn sampling_is_reproducible() {
        let spec = PipelineGen::balanced(6);
        let a = spec.sample(&mut StdRng::seed_from_u64(7));
        let b = spec.sample(&mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn presets_have_expected_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let heavy = PipelineGen::compute_heavy(5).sample(&mut rng);
        assert!(heavy.total_work() > heavy.deltas().iter().sum::<f64>());
        let commy = PipelineGen::comm_heavy(5).sample(&mut rng);
        assert!(commy.total_work() < commy.deltas().iter().sum::<f64>());
    }

    #[test]
    fn jpeg_pipeline_shape() {
        let p = jpeg_encoder();
        assert_eq!(p.n_stages(), 7);
        assert_eq!(p.input_size(), 768.0);
        assert_eq!(p.output_size(), 48.0);
        // DCT is the compute spike.
        let max_stage = (0..7)
            .max_by(|&a, &b| p.work(a).total_cmp(&p.work(b)))
            .unwrap();
        assert_eq!(max_stage, 3);
        // Data size is monotonically non-increasing after subsampling.
        for i in 3..7 {
            assert!(p.delta(i + 1) <= p.delta(i));
        }
    }

    #[test]
    fn paper_figures_match_core_tests() {
        assert_eq!(figure3_pipeline().total_work(), 4.0);
        assert_eq!(figure5_pipeline().output_size(), 0.0);
    }
}
