//! Instance generators for the two NP-hardness reductions.
//!
//! * Theorem 3 reduces the **Traveling Salesman Problem** (Hamiltonian path
//!   with bounded cost between fixed endpoints) to one-to-one latency
//!   minimization on Fully Heterogeneous platforms.
//! * Theorem 7 reduces **2-PARTITION** to bi-criteria feasibility.
//!
//! The generators here produce source-problem instances; the gadget
//! constructions (source instance → mapping instance) live in
//! `rpwf_algo::reductions`.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A complete weighted graph with designated source/tail vertices — the
/// input of Theorem 3's reduction. Edge costs are small positive integers
/// (stored as `f64`) so that latency thresholds match exactly.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TspInstance {
    /// Number of vertices (`≥ 2`).
    pub n: usize,
    /// Symmetric cost matrix, `costs[i][j]` for `i ≠ j`; diagonal unused.
    pub costs: Vec<Vec<f64>>,
    /// Source vertex `s` of the sought Hamiltonian path.
    pub source: usize,
    /// Tail vertex `t`.
    pub tail: usize,
}

impl TspInstance {
    /// Random instance on `n` vertices with integer costs in
    /// `[1, max_cost]`; `source = 0`, `tail = n − 1`.
    ///
    /// # Panics
    /// When `n < 2` or `max_cost < 1`.
    #[must_use]
    #[allow(clippy::needless_range_loop)] // symmetric (i, j) assignment
    pub fn random<R: Rng + ?Sized>(n: usize, max_cost: u64, rng: &mut R) -> Self {
        assert!(n >= 2, "TSP needs at least two vertices");
        assert!(max_cost >= 1);
        let mut costs = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in i + 1..n {
                let c = rng.gen_range(1..=max_cost) as f64;
                costs[i][j] = c;
                costs[j][i] = c;
            }
        }
        TspInstance {
            n,
            costs,
            source: 0,
            tail: n - 1,
        }
    }

    /// Cost of a Hamiltonian path given as a vertex sequence.
    ///
    /// # Panics
    /// When the sequence is not a permutation from `source` to `tail`.
    #[must_use]
    pub fn path_cost(&self, path: &[usize]) -> f64 {
        assert_eq!(path.len(), self.n);
        assert_eq!(path[0], self.source);
        assert_eq!(path[self.n - 1], self.tail);
        path.windows(2).map(|w| self.costs[w[0]][w[1]]).sum()
    }

    /// Cost of the cheapest Hamiltonian path from `source` to `tail`, by
    /// brute force over permutations. Exponential — cross-check only
    /// (`n ≲ 10`).
    #[must_use]
    pub fn brute_force_best_path(&self) -> (Vec<usize>, f64) {
        let middle: Vec<usize> = (0..self.n)
            .filter(|&v| v != self.source && v != self.tail)
            .collect();
        let mut best_cost = f64::INFINITY;
        let mut best_path = Vec::new();
        permute(&middle, &mut |perm| {
            let mut path = Vec::with_capacity(self.n);
            path.push(self.source);
            path.extend_from_slice(perm);
            path.push(self.tail);
            let cost = self.path_cost(&path);
            if cost < best_cost {
                best_cost = cost;
                best_path = path;
            }
        });
        (best_path, best_cost)
    }
}

/// Heap's algorithm over a scratch copy, invoking `f` on each permutation.
fn permute(items: &[usize], f: &mut impl FnMut(&[usize])) {
    fn rec(k: usize, arr: &mut [usize], f: &mut impl FnMut(&[usize])) {
        if k <= 1 {
            f(arr);
            return;
        }
        for i in 0..k {
            rec(k - 1, arr, f);
            if k.is_multiple_of(2) {
                arr.swap(i, k - 1);
            } else {
                arr.swap(0, k - 1);
            }
        }
    }
    let mut scratch = items.to_vec();
    let k = scratch.len();
    rec(k, &mut scratch, f);
}

/// A 2-PARTITION instance: positive integers `a_1 … a_m`; the question is
/// whether some subset sums to exactly half the total.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TwoPartitionInstance {
    /// The multiset of values.
    pub values: Vec<u64>,
}

impl TwoPartitionInstance {
    /// Fully random instance: `m` values in `[1, max_value]`. May or may not
    /// admit a partition.
    #[must_use]
    pub fn random<R: Rng + ?Sized>(m: usize, max_value: u64, rng: &mut R) -> Self {
        assert!(m >= 1);
        let values = (0..m).map(|_| rng.gen_range(1..=max_value)).collect();
        TwoPartitionInstance { values }
    }

    /// Instance with a planted solution: values are drawn in matched pairs
    /// `(a, a)`, so splitting each pair across the two sides is always a
    /// valid partition (yes-instance by construction).
    #[must_use]
    pub fn with_planted_solution<R: Rng + ?Sized>(
        pairs: usize,
        max_value: u64,
        rng: &mut R,
    ) -> Self {
        assert!(pairs >= 1);
        let mut values = Vec::with_capacity(2 * pairs);
        for _ in 0..pairs {
            let a = rng.gen_range(1..=max_value);
            values.push(a);
            values.push(a);
        }
        TwoPartitionInstance { values }
    }

    /// Instance guaranteed to be a no-instance: an odd total sum can never
    /// split evenly.
    #[must_use]
    pub fn odd_total<R: Rng + ?Sized>(m: usize, max_value: u64, rng: &mut R) -> Self {
        let mut inst = Self::random(m, max_value, rng);
        if inst.total().is_multiple_of(2) {
            inst.values[0] += 1;
        }
        inst
    }

    /// Sum of all values `S`.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.values.iter().sum()
    }

    /// Decides the instance by subset-sum dynamic programming
    /// (`O(m · S/2)` bits). Returns a witness subset (indices) when one
    /// exists.
    #[must_use]
    pub fn solve(&self) -> Option<Vec<usize>> {
        let total = self.total();
        if !total.is_multiple_of(2) {
            return None;
        }
        let target = (total / 2) as usize;
        // reachable[s] = Some(index of the value used when s was first
        // reached). Writes only happen when the predecessor sum was already
        // reachable via strictly earlier items, so the traceback below walks
        // strictly decreasing indices — each value is used at most once.
        let mut reachable: Vec<Option<usize>> = vec![None; target + 1];
        reachable[0] = Some(usize::MAX); // sentinel: sum 0 uses nothing
        for (idx, &v) in self.values.iter().enumerate() {
            let v = v as usize;
            if v > target {
                continue;
            }
            for s in (v..=target).rev() {
                if reachable[s].is_none() && reachable[s - v].is_some() {
                    reachable[s] = Some(idx);
                }
            }
        }
        reachable[target]?;
        // Trace back the witness.
        let mut subset = Vec::new();
        let mut s = target;
        while s > 0 {
            let idx = reachable[s].expect("traceback stays reachable");
            subset.push(idx);
            s -= self.values[idx] as usize;
        }
        subset.reverse();
        Some(subset)
    }

    /// Verifies a claimed witness subset.
    #[must_use]
    pub fn check_witness(&self, subset: &[usize]) -> bool {
        let mut seen = vec![false; self.values.len()];
        for &i in subset {
            if i >= self.values.len() || seen[i] {
                return false;
            }
            seen[i] = true;
        }
        let sum: u64 = subset.iter().map(|&i| self.values[i]).sum();
        2 * sum == self.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn tsp_random_is_symmetric_integer() {
        let mut rng = StdRng::seed_from_u64(5);
        let t = TspInstance::random(6, 9, &mut rng);
        for i in 0..6 {
            for j in 0..6 {
                if i != j {
                    assert_eq!(t.costs[i][j], t.costs[j][i]);
                    assert_eq!(t.costs[i][j].fract(), 0.0);
                    assert!((1.0..=9.0).contains(&t.costs[i][j]));
                }
            }
        }
    }

    #[test]
    fn tsp_brute_force_on_known_graph() {
        // 4 vertices; force the cheap path 0-2-1-3 with cost 3.
        let mut costs = vec![vec![10.0; 4]; 4];
        let set = |c: &mut Vec<Vec<f64>>, i: usize, j: usize, v: f64| {
            c[i][j] = v;
            c[j][i] = v;
        };
        set(&mut costs, 0, 2, 1.0);
        set(&mut costs, 2, 1, 1.0);
        set(&mut costs, 1, 3, 1.0);
        let t = TspInstance {
            n: 4,
            costs,
            source: 0,
            tail: 3,
        };
        let (path, cost) = t.brute_force_best_path();
        assert_eq!(cost, 3.0);
        assert_eq!(path, vec![0, 2, 1, 3]);
        assert_eq!(t.path_cost(&path), 3.0);
    }

    #[test]
    fn planted_two_partition_solves() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..20 {
            let inst = TwoPartitionInstance::with_planted_solution(5, 50, &mut rng);
            let witness = inst
                .solve()
                .expect("planted instance must be a yes-instance");
            assert!(inst.check_witness(&witness));
        }
    }

    #[test]
    fn odd_total_never_solves() {
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..20 {
            let inst = TwoPartitionInstance::odd_total(7, 30, &mut rng);
            assert_eq!(inst.total() % 2, 1);
            assert!(inst.solve().is_none());
        }
    }

    #[test]
    fn solver_agrees_with_brute_force() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..50 {
            let inst = TwoPartitionInstance::random(10, 20, &mut rng);
            let dp = inst.solve();
            // Brute force over all subsets.
            let total = inst.total();
            let mut brute = false;
            if total.is_multiple_of(2) {
                for mask in 0u32..(1 << inst.values.len()) {
                    let sum: u64 = (0..inst.values.len())
                        .filter(|&i| mask & (1 << i) != 0)
                        .map(|i| inst.values[i])
                        .sum();
                    if 2 * sum == total {
                        brute = true;
                        break;
                    }
                }
            }
            assert_eq!(dp.is_some(), brute, "values {:?}", inst.values);
            if let Some(w) = dp {
                assert!(inst.check_witness(&w));
            }
        }
    }

    #[test]
    fn witness_checker_rejects_bad_subsets() {
        let inst = TwoPartitionInstance {
            values: vec![2, 2, 4],
        };
        assert!(inst.check_witness(&[2])); // {4} vs {2,2}
        assert!(!inst.check_witness(&[0])); // sums 2 != 4
        assert!(!inst.check_witness(&[0, 0])); // duplicate index
        assert!(!inst.check_witness(&[9])); // out of range
    }
}
