//! Engine ⇔ legacy equivalence: `Engine::solve` must be **byte-identical**
//! to the entry points it replaced, across all three platform classes and
//! both threshold objectives on seeded instances.
//!
//! The legacy selection logic (`best_front_source`, the serving layer's
//! front race, `Portfolio::race`) was deleted in the engine refactor, so
//! this suite carries *frozen copies* of it, built from the still-public
//! building blocks (`BitmaskDpFront`, `ExhaustiveFront`,
//! `BranchBoundSweep`, `PortfolioFront`, `Portfolio`). Every comparison is
//! on serialized bytes — same mapping, same float bits — not approximate
//! values.

use proptest::prelude::*;
use rpwf_algo::engine::{Engine, Provenance, SolveRequest, Want};
use rpwf_algo::front::{
    BitmaskDpFront, BranchBoundSweep, ExhaustiveFront, FrontSource, PortfolioFront,
};
use rpwf_algo::heuristics::Portfolio;
use rpwf_algo::{threshold_read, BiSolution, Budgeted, Objective};
use rpwf_core::budget::Budget;
use rpwf_core::mapping::IntervalMapping;
use rpwf_core::pareto::ParetoFront;
use rpwf_core::platform::{FailureClass, Platform, PlatformClass};
use rpwf_core::stage::Pipeline;

const SEED: u64 = 0xCAFE;

/// Seeded instance over all three platform classes. Sizes are kept small
/// enough that every legacy exact backend terminates quickly, yet large
/// enough to exercise each selection branch (the exhaustive oracle at
/// `m ≤ 6`, branch-and-bound to `m ≤ 12`, the heuristic-only regime
/// beyond).
fn instance(seed: u64, sel: usize) -> (Pipeline, Platform, PlatformClass) {
    let (class, n, m) = match sel {
        0 => (PlatformClass::FullyHomogeneous, 4, 6),
        1 => (PlatformClass::CommHomogeneous, 3, 5),
        2 => (PlatformClass::CommHomogeneous, 4, 8),
        3 => (PlatformClass::FullyHeterogeneous, 3, 4),
        4 => (PlatformClass::FullyHeterogeneous, 4, 6),
        // Between the exhaustive oracle (m ≤ 6) and the branch-and-bound
        // ceiling (m ≤ 12): fronts come from the ε-constraint sweep.
        5 => (PlatformClass::FullyHeterogeneous, 3, 9),
        // Beyond every exact backend: heuristics only.
        _ => (PlatformClass::FullyHeterogeneous, 3, 14),
    };
    let inst = rpwf_gen::make_instance(class, FailureClass::Heterogeneous, n, m, seed);
    (inst.pipeline, inst.platform, class)
}

/// Both threshold kinds, spanning infeasible, tight and loose bounds.
fn objective(pipeline: &Pipeline, platform: &Platform, kind: usize) -> Objective {
    let safest = rpwf_algo::mono::minimize_failure(pipeline, platform);
    match kind {
        0 => Objective::MinFpUnderLatency(safest.latency * 0.4), // often infeasible
        1 => Objective::MinFpUnderLatency(safest.latency),       // tight
        2 => Objective::MinFpUnderLatency(safest.latency * 2.0), // loose
        3 => Objective::MinLatencyUnderFp(safest.failure_prob),  // tight
        _ => Objective::MinLatencyUnderFp(
            safest.failure_prob + 0.5 * (1.0 - safest.failure_prob), // loose
        ),
    }
}

fn bytes<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string(value).expect("serializes")
}

fn front_bytes(front: &ParetoFront<IntervalMapping>) -> String {
    let triples: Vec<(f64, f64, IntervalMapping)> = front
        .iter()
        .map(|pt| (pt.latency, pt.failure_prob, pt.payload.clone()))
        .collect();
    bytes(&triples)
}

// ---------------------------------------------------------------------------
// Frozen legacy logic
// ---------------------------------------------------------------------------

/// Frozen copy of the deleted `rpwf_algo::front::best_front_source`
/// selection policy.
fn legacy_front_source(pipeline: &Pipeline, platform: &Platform) -> Option<Box<dyn FrontSource>> {
    let sources: [Box<dyn FrontSource>; 3] = [
        Box::new(BitmaskDpFront),
        Box::new(ExhaustiveFront),
        Box::new(BranchBoundSweep::default()),
    ];
    sources
        .into_iter()
        .find(|s| s.applicable(pipeline, platform))
}

/// Frozen copy of the legacy CLI/server Pareto path: the strongest exact
/// front source, the portfolio grid sweep beyond.
fn legacy_front(
    pipeline: &Pipeline,
    platform: &Platform,
) -> (Budgeted<ParetoFront<IntervalMapping>>, &'static str) {
    let unlimited = Budget::unlimited();
    match legacy_front_source(pipeline, platform) {
        Some(source) => (
            source.front_with_budget(pipeline, platform, &unlimited),
            "exact",
        ),
        None => (
            PortfolioFront {
                seed: SEED,
                steps: 9,
            }
            .front_with_budget(pipeline, platform, &unlimited),
            "heuristic",
        ),
    }
}

/// Frozen copy of the serving layer's deleted front-race solve path
/// (`handle_solve` step 2): build the front with the strongest source
/// while the portfolio races on a second thread, answer from the front
/// when complete, else take the best of both.
#[allow(clippy::type_complexity)]
fn legacy_solve_via_front(
    pipeline: &Pipeline,
    platform: &Platform,
    objective: Objective,
) -> Option<(
    Option<(BiSolution, &'static str)>,
    bool,
    ParetoFront<IntervalMapping>,
)> {
    let source = legacy_front_source(pipeline, platform)?;
    let budget = Budget::unlimited();
    let portfolio = Portfolio::new(SEED);
    let (front_outcome, heuristic) = crossbeam::thread::scope(|scope| {
        let heuristic = scope.spawn(|_| {
            portfolio
                .solve_with_budget(pipeline, platform, objective, &budget)
                .into_inner()
        });
        let front = source.front_with_budget(pipeline, platform, &budget);
        let heuristic = heuristic.join().expect("portfolio does not panic");
        (front, heuristic)
    })
    .expect("race threads do not panic");
    let complete = front_outcome.is_complete();
    let front = front_outcome.into_inner();
    let exact_point = threshold_read(&front, objective);
    let picked = if complete {
        exact_point.map(|sol| (sol, "exact"))
    } else {
        match (exact_point, heuristic) {
            (Some(e), Some(h)) => Some(if objective.better(&e, &h) {
                (e, "exact")
            } else {
                (h, "heuristic")
            }),
            (Some(e), None) => Some((e, "exact")),
            (None, Some(h)) => Some((h, "heuristic")),
            (None, None) => None,
        }
    };
    Some((picked, complete, front))
}

// ---------------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `Engine::solve` with `keep_front: false` is byte-identical to the
    /// legacy `Portfolio::race` — answer, provenance, and every
    /// completeness flag — on all platform classes and both objectives.
    #[test]
    fn point_race_is_byte_identical_to_legacy(seed in 0u64..5_000, sel in 0usize..7, kind in 0usize..5) {
        let (pipeline, platform, _) = instance(seed, sel);
        let objective = objective(&pipeline, &platform, kind);
        let engine = Engine::with_default_backends(SEED);
        let report = engine.solve(&SolveRequest {
            pipeline: &pipeline,
            platform: &platform,
            want: Want::Point { objective, keep_front: false },
            budget: &Budget::unlimited(),
        });
        let legacy = Portfolio::new(SEED).race(&pipeline, &platform, objective, &Budget::unlimited());
        prop_assert_eq!(
            bytes(&report.point().cloned()),
            bytes(&legacy.best),
            "answer bytes differ (sel {}, kind {})", sel, kind
        );
        if legacy.best.is_some() {
            prop_assert_eq!(
                report.provenance.map(Provenance::as_str),
                Some(legacy.solver.name())
            );
        }
        prop_assert_eq!(report.completeness.exact_capable, legacy.exact_attempted);
        prop_assert_eq!(report.completeness.exact_complete, legacy.exact_complete);
        prop_assert_eq!(report.completeness.heuristic_complete, legacy.heuristic_complete);
    }

    /// `Engine::solve` with `keep_front: true` is byte-identical to the
    /// serving layer's deleted front-race path: same picked answer, same
    /// provenance, same completeness, and a byte-identical front
    /// by-product. Where no exact front backend applies, the engine falls
    /// back to exactly the legacy raceway.
    #[test]
    fn point_via_front_is_byte_identical_to_legacy(seed in 0u64..5_000, sel in 0usize..7, kind in 0usize..5) {
        let (pipeline, platform, _) = instance(seed, sel);
        let objective = objective(&pipeline, &platform, kind);
        let engine = Engine::with_default_backends(SEED);
        let report = engine.solve(&SolveRequest {
            pipeline: &pipeline,
            platform: &platform,
            want: Want::Point { objective, keep_front: true },
            budget: &Budget::unlimited(),
        });
        match legacy_solve_via_front(&pipeline, &platform, objective) {
            Some((picked, complete, legacy_front)) => {
                let artifact = report.front.as_ref().expect("front by-product");
                prop_assert_eq!(artifact.complete, complete);
                prop_assert_eq!(front_bytes(&artifact.front), front_bytes(&legacy_front));
                match picked {
                    Some((sol, solver)) => {
                        prop_assert_eq!(bytes(&report.point().cloned()), bytes(&Some(sol)));
                        prop_assert_eq!(report.provenance.map(Provenance::as_str), Some(solver));
                    }
                    None => prop_assert!(report.point().is_none()),
                }
                prop_assert_eq!(report.completeness.exact_complete, complete);
            }
            None => {
                // No exact front backend: the engine must fall back to the
                // plain race, identically to `keep_front: false`.
                prop_assert!(report.front.is_none());
                let legacy = Portfolio::new(SEED)
                    .race(&pipeline, &platform, objective, &Budget::unlimited());
                prop_assert_eq!(bytes(&report.point().cloned()), bytes(&legacy.best));
            }
        }
    }

    /// `Engine::solve(Want::Front)` is byte-identical to the deleted
    /// `best_front_source` path (portfolio grid sweep beyond every exact
    /// backend), point for point, mapping for mapping.
    #[test]
    fn front_is_byte_identical_to_legacy(seed in 0u64..5_000, sel in 0usize..7) {
        let (pipeline, platform, _) = instance(seed, sel);
        let engine = Engine::with_default_backends(SEED);
        let report = engine.solve(&SolveRequest {
            pipeline: &pipeline,
            platform: &platform,
            want: Want::Front,
            budget: &Budget::unlimited(),
        });
        let (legacy_outcome, legacy_solver) = legacy_front(&pipeline, &platform);
        prop_assert_eq!(report.completeness.exact_complete, legacy_outcome.is_complete());
        prop_assert_eq!(
            report.provenance.map(Provenance::as_str),
            Some(legacy_solver)
        );
        let front = report.front_answer().expect("front answer");
        prop_assert_eq!(front_bytes(front), front_bytes(&legacy_outcome.into_inner()));
    }
}
