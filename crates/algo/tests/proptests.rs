//! Property-based tests across the solver stack: solver agreement,
//! relaxation orderings, and objective-comparator laws on random instances.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rpwf_algo::exact::{
    min_latency_interval, min_latency_one_to_one, pareto_front_comm_homog, BranchBound, Exhaustive,
};
use rpwf_algo::heuristics::neighborhood::{
    move_count, neighbors, nth_move, random_mapping, MoveStream,
};
use rpwf_algo::heuristics::{one_to_one::solve_one_to_one, split_dp, Portfolio};
use rpwf_algo::mono::general_mapping_shortest_path;
use rpwf_algo::{BiSolution, Objective};
use rpwf_core::num::approx_eq;
use rpwf_core::platform::{FailureClass, PlatformClass};
use rpwf_core::prelude::*;
use rpwf_gen::{PipelineGen, PlatformGen};

/// `|a − b| ≤ 1` unit in the last place (and bit-equal covers ±0, inf).
fn within_one_ulp(a: f64, b: f64) -> bool {
    if a.to_bits() == b.to_bits() {
        return true;
    }
    if a.is_nan() || b.is_nan() || a.signum() != b.signum() {
        return false;
    }
    a.to_bits().abs_diff(b.to_bits()) <= 1
}

/// Instances are generated from a single seed through the crate generators,
/// so shrinking operates on the seed.
fn instance(seed: u64, n: usize, m: usize, class: PlatformClass) -> (Pipeline, Platform) {
    let mut rng = StdRng::seed_from_u64(seed);
    let pipeline = PipelineGen::balanced(n).sample(&mut rng);
    let platform = PlatformGen::new(m, class, FailureClass::Heterogeneous).sample(&mut rng);
    (pipeline, platform)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The bitmask DP front equals the exhaustive front on tiny random
    /// comm-homogeneous instances.
    #[test]
    fn bitmask_dp_equals_oracle(seed in 0u64..10_000) {
        let (pipe, pf) = instance(seed, 3, 3, PlatformClass::CommHomogeneous);
        let dp = pareto_front_comm_homog(&pipe, &pf).unwrap();
        let oracle = Exhaustive::new(&pipe, &pf).pareto_front();
        prop_assert_eq!(dp.len(), oracle.len());
        for (a, b) in dp.iter().zip(oracle.iter()) {
            prop_assert!(approx_eq(a.latency, b.latency, 1e-9));
            prop_assert!(approx_eq(a.failure_prob, b.failure_prob, 1e-9));
        }
    }

    /// Branch-and-bound agrees with the oracle at a random threshold on
    /// fully heterogeneous instances.
    #[test]
    fn branch_bound_equals_oracle(seed in 0u64..10_000, frac in 0.0f64..1.0) {
        let (pipe, pf) = instance(seed, 3, 4, PlatformClass::FullyHeterogeneous);
        let ex = Exhaustive::new(&pipe, &pf);
        let lo = ex.min_latency().latency;
        let hi = rpwf_algo::mono::minimize_failure(&pipe, &pf).latency;
        let l = lo + (hi - lo) * frac;
        let objective = Objective::MinFpUnderLatency(l);
        let bnb = BranchBound::new(&pipe, &pf).solve(objective);
        let oracle = ex.solve(objective);
        match (bnb, oracle) {
            (Some(a), Some(o)) => prop_assert!(
                approx_eq(a.failure_prob, o.failure_prob, 1e-9),
                "{} vs {}", a.failure_prob, o.failure_prob
            ),
            (None, None) => {}
            (a, o) => prop_assert!(false, "disagreement: {a:?} vs {o:?}"),
        }
    }

    /// Relaxation chain: general ≤ interval ≤ one-to-one latency, and the
    /// one-to-one heuristic upper-bounds the exact DP.
    #[test]
    fn relaxation_chain(seed in 0u64..10_000) {
        let (pipe, pf) = instance(seed, 3, 5, PlatformClass::FullyHeterogeneous);
        let (_, general) = general_mapping_shortest_path(&pipe, &pf);
        let (_, interval) = min_latency_interval(&pipe, &pf);
        let (_, exact_oto) = min_latency_one_to_one(&pipe, &pf).unwrap();
        let (_, heur_oto) = solve_one_to_one(&pipe, &pf).unwrap();
        prop_assert!(general <= interval + 1e-9);
        prop_assert!(interval <= exact_oto + 1e-9);
        prop_assert!(exact_oto <= heur_oto + 1e-9);
    }

    /// Split-DP points always lie inside (are dominated by) the exact
    /// comm-homogeneous front and re-evaluate to their reported values.
    #[test]
    fn split_dp_is_sound(seed in 0u64..10_000) {
        let (pipe, pf) = instance(seed, 4, 5, PlatformClass::CommHomogeneous);
        let heur = split_dp::pareto_front(&pipe, &pf).unwrap();
        let exact = pareto_front_comm_homog(&pipe, &pf).unwrap();
        for pt in heur.iter() {
            let covered = exact
                .iter()
                .any(|e| e.latency <= pt.latency + 1e-9 && e.failure_prob <= pt.failure_prob + 1e-9);
            prop_assert!(covered);
            let re = BiSolution::evaluate(pt.payload.clone(), &pipe, &pf);
            prop_assert!(approx_eq(re.latency, pt.latency, 1e-9));
            prop_assert!(approx_eq(re.failure_prob, pt.failure_prob, 1e-9));
        }
    }

    /// Portfolio answers are feasible and never beat the exact optimum.
    #[test]
    fn portfolio_is_sound(seed in 0u64..10_000, frac in 0.1f64..0.9) {
        let (pipe, pf) = instance(seed, 3, 4, PlatformClass::FullyHeterogeneous);
        let ex = Exhaustive::new(&pipe, &pf);
        let lo = ex.min_latency().latency;
        let hi = rpwf_algo::mono::minimize_failure(&pipe, &pf).latency;
        let l = lo + (hi - lo) * frac;
        let objective = Objective::MinFpUnderLatency(l);
        if let Some(sol) = Portfolio::new(seed).solve(&pipe, &pf, objective) {
            prop_assert!(sol.latency <= l * (1.0 + 1e-9) + 1e-9);
            if let Some(exact) = ex.solve(objective) {
                prop_assert!(sol.failure_prob >= exact.failure_prob - 1e-9);
            }
        }
    }

    /// The lazy move stream reproduces the materialized neighbor list
    /// exactly: same count, same order, same produced mappings.
    #[test]
    fn move_stream_equals_materialized_neighbors(seed in 0u64..10_000) {
        let (pipe, pf) = instance(seed, 5, 5, PlatformClass::FullyHeterogeneous);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_CAFE);
        let mapping = random_mapping(pipe.n_stages(), pf.n_procs(), &mut rng);
        let ctx = EvalContext::new(&pipe, &pf);
        let mut de = DeltaEval::new(&ctx, &mapping);
        let materialized = neighbors(&mapping, pf.n_procs());
        prop_assert_eq!(move_count(&de), materialized.len());
        let mut stream = MoveStream::new();
        let mut i = 0usize;
        while let Some(mv) = stream.next(&de) {
            de.apply(mv);
            prop_assert_eq!(&de.mapping(), &materialized[i], "move {} ({:?})", i, mv);
            de.revert();
            i += 1;
        }
        prop_assert_eq!(i, materialized.len());
        prop_assert_eq!(&de.mapping(), &mapping, "stream walk must not disturb the state");
    }

    /// Delta scoring stays exact over random apply/revert sequences:
    /// latency bit-for-bit, log-FP within 1 ulp (empirically bit-for-bit
    /// too) of the full `metrics` recomputation after every step.
    #[test]
    fn delta_eval_matches_full_recomputation(seed in 0u64..10_000) {
        let (pipe, pf) = instance(seed, 6, 6, PlatformClass::FullyHeterogeneous);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD317A);
        let mapping = random_mapping(pipe.n_stages(), pf.n_procs(), &mut rng);
        let ctx = EvalContext::new(&pipe, &pf);
        let mut de = DeltaEval::new(&ctx, &mapping);
        for step in 0..40 {
            let count = move_count(&de);
            if count == 0 {
                break;
            }
            let mv = nth_move(&de, rng.gen_range(0..count));
            let before = de.scores();
            let s = de.apply(mv);
            if rng.gen_bool(1.0 / 3.0) {
                de.revert();
                let after = de.scores();
                prop_assert_eq!(
                    after.latency.to_bits(), before.latency.to_bits(),
                    "step {}: revert must restore latency bits", step
                );
                prop_assert_eq!(
                    after.ln_success.to_bits(), before.ln_success.to_bits(),
                    "step {}: revert must restore ln-success bits", step
                );
            } else {
                de.accept();
                let current = de.mapping();
                let full_lat = rpwf_core::metrics::latency(&current, &pipe, &pf);
                let full_ln = rpwf_core::metrics::log_success_probability(&current, &pf);
                prop_assert_eq!(
                    s.latency.to_bits(), full_lat.to_bits(),
                    "step {} ({:?}): delta latency {} vs full {}",
                    step, mv, s.latency, full_lat
                );
                prop_assert!(
                    within_one_ulp(s.ln_success, full_ln),
                    "step {} ({:?}): delta ln-success {} vs full {}",
                    step, mv, s.ln_success, full_ln
                );
                prop_assert!(
                    within_one_ulp(s.failure_prob(), rpwf_core::metrics::failure_probability(&current, &pf)),
                    "step {}: failure probabilities diverged", step
                );
            }
        }
    }

    /// Budgeted heuristics with an unlimited budget reproduce the plain
    /// solvers exactly (same mapping, bit-equal objectives).
    #[test]
    fn unbudgeted_heuristics_are_unchanged(seed in 0u64..10_000) {
        let (pipe, pf) = instance(seed, 4, 5, PlatformClass::FullyHeterogeneous);
        let objective = Objective::MinLatencyUnderFp(0.6);
        let ls = rpwf_algo::heuristics::LocalSearch {
            random_restarts: 2, max_steps: 40, seed, ..Default::default()
        };
        let budgeted = ls.solve_with_budget(&pipe, &pf, objective, &Budget::unlimited());
        prop_assert!(budgeted.is_complete());
        prop_assert_eq!(budgeted.into_inner(), ls.solve(&pipe, &pf, objective));
        let sa = rpwf_algo::heuristics::Annealing { seed, epochs: 10, ..Default::default() };
        let budgeted = sa.solve_with_budget(&pipe, &pf, objective, &Budget::unlimited());
        prop_assert!(budgeted.is_complete());
        prop_assert_eq!(budgeted.into_inner(), sa.solve(&pipe, &pf, objective));
    }

    /// Vectorized threshold reads equal `k` independent reads on random
    /// fronts and random mixed-objective query batches (the batch sweep
    /// is a pure amortization).
    #[test]
    fn batch_threshold_reads_equal_independent_reads(
        seed in 0u64..10_000,
        queries in prop::collection::vec((0u8..2, 0.0f64..2.0), 1..24),
    ) {
        let (pipe, pf) = instance(seed, 3, 4, PlatformClass::FullyHeterogeneous);
        let front = Exhaustive::new(&pipe, &pf).pareto_front();
        let lat_hi = front.points().last().map_or(1.0, |p| p.latency * 1.5);
        let objectives: Vec<Objective> = queries
            .iter()
            .map(|&(kind, t)| if kind == 1 {
                Objective::MinFpUnderLatency(t * lat_hi)
            } else {
                Objective::MinLatencyUnderFp(t / 2.0)
            })
            .collect();
        let batch = rpwf_algo::front::threshold_read_batch(&front, &objectives);
        prop_assert_eq!(batch.len(), objectives.len());
        for (objective, got) in objectives.iter().zip(&batch) {
            let independent = rpwf_algo::front::threshold_read(&front, *objective);
            prop_assert_eq!(got, &independent, "objective {:?}", objective);
        }
    }

    /// Comparator laws: `better` is irreflexive and asymmetric.
    #[test]
    fn objective_better_is_a_strict_order(
        lat_a in 0.0f64..100.0, fp_a in 0.0f64..1.0,
        lat_b in 0.0f64..100.0, fp_b in 0.0f64..1.0,
        l in 1.0f64..100.0,
    ) {
        let mk = |lat: f64, fp: f64| BiSolution {
            mapping: IntervalMapping::single_interval(1, vec![ProcId(0)], 1).unwrap(),
            latency: lat,
            failure_prob: fp,
        };
        for objective in [Objective::MinFpUnderLatency(l), Objective::MinLatencyUnderFp(fp_a.max(1e-6))] {
            let a = mk(lat_a, fp_a);
            let b = mk(lat_b, fp_b);
            prop_assert!(!objective.better(&a, &a), "irreflexive");
            prop_assert!(
                !(objective.better(&a, &b) && objective.better(&b, &a)),
                "asymmetric"
            );
        }
    }

    /// Theorem 4's solver is invariant under pipeline scaling: multiplying
    /// all works and data sizes by c scales the optimum by c.
    #[test]
    fn shortest_path_scales_linearly(seed in 0u64..10_000, c in 0.1f64..10.0) {
        let (pipe, pf) = instance(seed, 4, 4, PlatformClass::FullyHeterogeneous);
        let scaled = Pipeline::new(
            pipe.works().iter().map(|w| w * c).collect(),
            pipe.deltas().iter().map(|d| d * c).collect(),
        ).unwrap();
        let (_, base) = general_mapping_shortest_path(&pipe, &pf);
        let (_, big) = general_mapping_shortest_path(&scaled, &pf);
        prop_assert!(approx_eq(big, base * c, 1e-6), "{big} vs {}", base * c);
    }
}
