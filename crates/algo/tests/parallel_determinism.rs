//! Parallel ⇔ sequential byte-identity for the cooperative
//! branch-and-bound search.
//!
//! The contract under test: running the exact search on N worker threads
//! — shared incumbent, work stealing, and all — returns **byte-identical**
//! answers to the sequential search, for threshold points and for whole
//! ε-constraint-sweep fronts, across every platform class and across
//! infeasible, tight, and loose bounds. Determinism comes from canonical
//! tie-breaking (objective value, secondary criterion, work-unit index)
//! and a deterministic merge, not from scheduling luck, so it must hold
//! at any thread count on any machine. A final stress test cuts the
//! budget mid-search and checks the cancellation fans out to every
//! worker promptly and the partial answer is sound.

use proptest::prelude::*;
use rpwf_algo::engine::{Engine, SolveRequest, Want};
use rpwf_algo::exact::BranchBound;
use rpwf_algo::front::{BranchBoundSweep, FrontSource};
use rpwf_algo::{Budgeted, Objective};
use rpwf_core::budget::Budget;
use rpwf_core::mapping::IntervalMapping;
use rpwf_core::pareto::ParetoFront;
use rpwf_core::platform::{FailureClass, Platform, PlatformClass};
use rpwf_core::stage::Pipeline;

const SEED: u64 = 0xCAFE;

/// Seeded instances across all three platform classes, sized so the
/// exact search terminates quickly even single-threaded on one core.
fn instance(seed: u64, sel: usize) -> (Pipeline, Platform) {
    let (class, n, m) = match sel {
        0 => (PlatformClass::FullyHomogeneous, 3, 5),
        1 => (PlatformClass::CommHomogeneous, 4, 6),
        2 => (PlatformClass::FullyHeterogeneous, 3, 6),
        _ => (PlatformClass::FullyHeterogeneous, 4, 7),
    };
    let inst = rpwf_gen::make_instance(class, FailureClass::Heterogeneous, n, m, seed);
    (inst.pipeline, inst.platform)
}

/// Both threshold kinds, spanning infeasible, tight and loose bounds.
fn objective(pipeline: &Pipeline, platform: &Platform, kind: usize) -> Objective {
    let safest = rpwf_algo::mono::minimize_failure(pipeline, platform);
    match kind {
        0 => Objective::MinFpUnderLatency(safest.latency * 0.4), // often infeasible
        1 => Objective::MinFpUnderLatency(safest.latency),       // tight
        2 => Objective::MinFpUnderLatency(safest.latency * 2.0), // loose
        3 => Objective::MinLatencyUnderFp(safest.failure_prob),  // tight
        _ => Objective::MinLatencyUnderFp(
            safest.failure_prob + 0.5 * (1.0 - safest.failure_prob), // loose
        ),
    }
}

fn bytes<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string(value).expect("serializes")
}

fn front_bytes(front: &ParetoFront<IntervalMapping>) -> String {
    let triples: Vec<(f64, f64, IntervalMapping)> = front
        .iter()
        .map(|pt| (pt.latency, pt.failure_prob, pt.payload.clone()))
        .collect();
    bytes(&triples)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A parallel threshold solve (heuristic seeding included, exactly as
    /// the engine runs it) is byte-identical to the sequential solve.
    #[test]
    fn parallel_point_solve_is_byte_identical(
        seed in 0u64..5_000,
        sel in 0usize..4,
        kind in 0usize..5,
        threads in 2usize..5,
    ) {
        let (pipeline, platform) = instance(seed, sel);
        let objective = objective(&pipeline, &platform, kind);
        let budget = Budget::unlimited();
        let seq = BranchBound::new(&pipeline, &platform).solve_with_budget(objective, &budget);
        let par = BranchBound::new(&pipeline, &platform)
            .with_threads(threads)
            .solve_with_budget(objective, &budget);
        prop_assert_eq!(seq.is_complete(), par.is_complete());
        prop_assert_eq!(
            bytes(&seq.into_inner()),
            bytes(&par.into_inner()),
            "threads {} (sel {}, kind {})", threads, sel, kind
        );
    }

    /// A parallel ε-constraint sweep produces the byte-identical exact
    /// front: same points, same mappings, same float bits.
    #[test]
    fn parallel_sweep_front_is_byte_identical(
        seed in 0u64..5_000,
        sel in 0usize..4,
        threads in 2usize..5,
    ) {
        let (pipeline, platform) = instance(seed, sel);
        let budget = Budget::unlimited();
        let seq = BranchBoundSweep::default().front_with_budget(&pipeline, &platform, &budget);
        let par = BranchBoundSweep {
            threads,
            ..BranchBoundSweep::default()
        }
        .front_with_budget(&pipeline, &platform, &budget);
        prop_assert_eq!(seq.is_complete(), par.is_complete());
        prop_assert_eq!(
            front_bytes(seq.inner()),
            front_bytes(par.inner()),
            "threads {} (sel {})", threads, sel
        );
    }

    /// The whole engine plan — racing heuristics, seeding, backend
    /// selection — answers byte-identically when its exact backends run
    /// parallel, for points and fronts alike.
    #[test]
    fn parallel_engine_matches_default_engine(
        seed in 0u64..5_000,
        sel in 0usize..4,
        kind in 0usize..5,
        threads in 2usize..5,
    ) {
        let (pipeline, platform) = instance(seed, sel);
        let sequential = Engine::with_default_backends(SEED);
        let parallel = Engine::with_parallel_backends(SEED, threads);
        let budget = Budget::unlimited();

        let objective = objective(&pipeline, &platform, kind);
        let point = |engine: &Engine| {
            engine.solve(&SolveRequest {
                pipeline: &pipeline,
                platform: &platform,
                want: Want::Point { objective, keep_front: false },
                budget: &budget,
            })
        };
        let (seq, par) = (point(&sequential), point(&parallel));
        prop_assert_eq!(bytes(&seq.point().cloned()), bytes(&par.point().cloned()));
        prop_assert_eq!(seq.completeness, par.completeness);
        prop_assert_eq!(seq.provenance, par.provenance);

        let front = |engine: &Engine| {
            engine.solve(&SolveRequest {
                pipeline: &pipeline,
                platform: &platform,
                want: Want::Front,
                budget: &budget,
            })
        };
        let (seq, par) = (front(&sequential), front(&parallel));
        prop_assert_eq!(
            front_bytes(seq.front_answer().expect("front")),
            front_bytes(par.front_answer().expect("front"))
        );
        prop_assert_eq!(seq.completeness, par.completeness);
    }
}

/// A budget expiring mid-search must cancel every worker within one
/// polling stride (no wedged threads, no minutes-long drain of claimed
/// subtrees) and the cutoff answer, when present, must be feasible —
/// sound, just not proven optimal.
#[test]
fn mid_search_expiry_cancels_all_workers_and_stays_sound() {
    let inst = rpwf_gen::make_instance(
        PlatformClass::FullyHeterogeneous,
        FailureClass::Heterogeneous,
        5,
        12,
        7,
    );
    let safest = rpwf_algo::mono::minimize_failure(&inst.pipeline, &inst.platform);
    let objective = Objective::MinFpUnderLatency(safest.latency * 1.2);
    let budget = Budget::with_deadline(std::time::Duration::from_millis(30));
    let start = std::time::Instant::now();
    let (outcome, stats) = BranchBound::new(&inst.pipeline, &inst.platform)
        .with_threads(4)
        .solve_with_budget_seeded_stats(objective, &budget, None);
    let elapsed = start.elapsed();
    assert!(
        elapsed < std::time::Duration::from_secs(5),
        "cancellation must fan out promptly, took {elapsed:?}"
    );
    assert_eq!(stats.threads, 4, "all four workers were running");
    match outcome {
        Budgeted::Cutoff(found) => {
            if let Some(sol) = found {
                assert!(
                    objective.feasible(sol.latency, sol.failure_prob),
                    "cutoff answers must stay feasible"
                );
            }
        }
        Budgeted::Complete(_) => {
            // A machine fast enough to finish m = 12 in 30 ms simply
            // proves the budget never expired — nothing to assert.
        }
    }
}
