//! Property-based tests for the explain subsystem on random instances:
//! every reported MUS is unsatisfiable and minimal, every MCS is a
//! correction set whose members are all load-bearing, and explanations
//! are deterministic run to run.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rpwf_algo::engine::{Engine, SolveRequest, Want};
use rpwf_algo::explain::{relaxed_platform, EngineOracle, FULL_MASK};
use rpwf_algo::{threshold_read, Objective};
use rpwf_core::budget::Budget;
use rpwf_core::platform::{FailureClass, Platform, PlatformClass};
use rpwf_core::stage::Pipeline;
use rpwf_gen::{PipelineGen, PlatformGen};

/// Instances are generated from a single seed through the crate
/// generators, so shrinking operates on the seed. Sizes stay small
/// enough that every relaxed platform (up to doubled `m`) is still
/// exactly solvable with an unlimited budget.
fn instance(seed: u64, n: usize, m: usize) -> (Pipeline, Platform) {
    let mut rng = StdRng::seed_from_u64(seed);
    let pipeline = PipelineGen::balanced(n).sample(&mut rng);
    let platform = PlatformGen::new(
        m,
        PlatformClass::CommHomogeneous,
        FailureClass::Heterogeneous,
    )
    .sample(&mut rng);
    (pipeline, platform)
}

/// The subset mask of a MUS/MCS index list (indices into the universe).
fn mask_of(indices: &[usize]) -> u8 {
    indices.iter().map(|&i| 1u8 << i).sum()
}

/// Independent satisfiability check for a constraint subset: solve the
/// subset's relaxed platform from scratch and read the threshold.
/// `Some(verdict)` when proven either way, `None` when the front was not
/// proven exact (never happens with an unlimited budget on these sizes,
/// but the type keeps the check honest).
fn sat_verdict(
    engine: &Engine,
    pipeline: &Pipeline,
    platform: &Platform,
    objective: Objective,
    mask: u8,
) -> Option<bool> {
    if mask & 1 == 0 {
        // Bound-free subsets are trivially satisfiable.
        return Some(true);
    }
    let relaxed = relaxed_platform(platform, mask);
    let budget = Budget::unlimited();
    let report = engine.solve(&SolveRequest {
        pipeline,
        platform: &relaxed,
        want: Want::Front,
        budget: &budget,
    });
    let found = report
        .front_answer()
        .and_then(|front| threshold_read(front, objective))
        .is_some();
    if found {
        Some(true)
    } else if report.completeness.exact_complete {
        Some(false)
    } else {
        None
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// On random instances and thresholds: every MUS is unsatisfiable
    /// and dropping any single member makes it satisfiable (minimality);
    /// relaxing every member of any MCS restores feasibility, and
    /// putting any single member back breaks it again (the MCS carries
    /// no dead weight).
    #[test]
    fn muses_are_minimal_conflicts_and_mcses_are_corrections(
        seed in 0u64..10_000,
        frac in 0.3f64..1.4,
        fp_sel in 0u8..2,
    ) {
        let bound_fp = fp_sel == 1;
        let (pipeline, platform) = instance(seed, 3, 3);
        let engine = Engine::with_default_backends(1);
        let budget = Budget::unlimited();
        let report = engine.solve(&SolveRequest {
            pipeline: &pipeline,
            platform: &platform,
            want: Want::Front,
            budget: &budget,
        });
        if !report.completeness.exact_complete {
            continue;
        }
        let front = report.front_answer().expect("front request yields a front");
        if front.is_empty() {
            continue;
        }
        // A bound scaled off the front's best value: frac < 1 lands
        // infeasible, frac > 1 usually feasible — both paths exercised.
        let objective = if bound_fp {
            let lo = front
                .iter()
                .map(|p| p.failure_prob)
                .fold(f64::INFINITY, f64::min);
            Objective::MinLatencyUnderFp(lo * frac)
        } else {
            let lo = front.iter().map(|p| p.latency).fold(f64::INFINITY, f64::min);
            Objective::MinFpUnderLatency(lo * frac)
        };

        let mut oracle = EngineOracle::new(&engine, &budget);
        let explanation = rpwf_algo::explain::explain(&pipeline, &platform, objective, &mut oracle);
        prop_assert!(explanation.oracle_calls < 16, "never the full powerset");
        if explanation.feasible {
            prop_assert!(explanation.muses.is_empty());
            prop_assert!(explanation.mcses.is_empty());
            prop_assert!(explanation.relaxation.is_none());
            continue;
        }
        if !explanation.proven {
            continue;
        }
        prop_assert!(!explanation.muses.is_empty(), "infeasible ⇒ at least one conflict");
        prop_assert!(!explanation.mcses.is_empty(), "infeasible ⇒ at least one fix");

        for mus in &explanation.muses {
            let mask = mask_of(mus);
            prop_assert!(mus.contains(&0), "every conflict involves the bound");
            prop_assert_eq!(
                sat_verdict(&engine, &pipeline, &platform, objective, mask),
                Some(false),
                "a MUS must be unsatisfiable: {:?}", mus
            );
            for &member in mus {
                let weaker = mask & !(1u8 << member);
                prop_assert_eq!(
                    sat_verdict(&engine, &pipeline, &platform, objective, weaker),
                    Some(true),
                    "dropping member {} of MUS {:?} must restore satisfiability", member, mus
                );
            }
        }
        for mcs in &explanation.mcses {
            let kept = FULL_MASK ^ mask_of(mcs);
            prop_assert_eq!(
                sat_verdict(&engine, &pipeline, &platform, objective, kept),
                Some(true),
                "relaxing MCS {:?} must make the query feasible", mcs
            );
            for &member in mcs {
                prop_assert_eq!(
                    sat_verdict(&engine, &pipeline, &platform, objective, kept | (1u8 << member)),
                    Some(false),
                    "member {} of MCS {:?} must be load-bearing", member, mcs
                );
            }
        }
    }

    /// Two independent runs over the same instance produce identical
    /// explanations, down to the effort counters — the determinism the
    /// fleet's byte-identity contract rests on.
    #[test]
    fn explanations_are_deterministic(seed in 0u64..10_000, frac in 0.3f64..1.2) {
        let (pipeline, platform) = instance(seed, 3, 3);
        let run = || {
            let engine = Engine::with_default_backends(7);
            let budget = Budget::unlimited();
            let report = engine.solve(&SolveRequest {
                pipeline: &pipeline,
                platform: &platform,
                want: Want::Front,
                budget: &budget,
            });
            let front = report.front_answer().expect("front request yields a front");
            let lo = front.iter().map(|p| p.latency).fold(f64::INFINITY, f64::min);
            if !lo.is_finite() {
                return String::new();
            }
            let objective = Objective::MinFpUnderLatency(lo * frac);
            let mut oracle = EngineOracle::new(&engine, &budget);
            format!(
                "{:?}",
                rpwf_algo::explain::explain(&pipeline, &platform, objective, &mut oracle)
            )
        };
        prop_assert_eq!(run(), run());
    }
}
