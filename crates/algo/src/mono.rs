//! Mono-criterion solvers: Theorems 1, 2 and 4 of the paper.
//!
//! * [`minimize_failure`] — Theorem 1: the global minimum of the failure
//!   probability is reached by replicating the whole pipeline, as a single
//!   interval, on **all** processors. Polynomial on every platform class.
//! * [`minimize_latency_comm_homog`] — Theorem 2: on Communication
//!   Homogeneous platforms the latency is minimized by mapping the whole
//!   pipeline, unreplicated, on the fastest processor (replication and
//!   splitting only add communications).
//! * [`general_mapping_shortest_path`] — Theorem 4: on Fully Heterogeneous
//!   platforms, minimizing latency over **general mappings** (processor
//!   reuse allowed) is a shortest-path computation in the layered graph of
//!   Figure 6. The graph is a DAG, so one forward relaxation per layer is
//!   both simpler and asymptotically optimal (`O(n·m²)`) compared to
//!   Dijkstra.
//!
//! Minimizing latency for *one-to-one* mappings on Fully Heterogeneous
//! platforms is NP-hard (Theorem 3); the exact exponential solver lives in
//! [`crate::exact::held_karp`], the gadget in [`crate::reductions::tsp`].

use crate::solution::BiSolution;
use rpwf_core::error::{CoreError, Result};
use rpwf_core::mapping::{GeneralMapping, IntervalMapping};
use rpwf_core::metrics::general_latency;
use rpwf_core::platform::{Platform, ProcId, Vertex};
use rpwf_core::stage::Pipeline;

/// Theorem 1: minimize the failure probability (any platform class).
///
/// Replicates the pipeline as a single interval on all `m` processors:
/// `FP = Π_u fp_u` is the unbeatable floor, since every additional interval
/// multiplies the success probability by a factor `< 1` and every omitted
/// processor can only increase `Π fp_u`.
#[must_use]
pub fn minimize_failure(pipeline: &Pipeline, platform: &Platform) -> BiSolution {
    let mapping = IntervalMapping::single_interval(
        pipeline.n_stages(),
        platform.procs().collect(),
        platform.n_procs(),
    )
    .expect("all-processor single interval is always valid");
    BiSolution::evaluate(mapping, pipeline, platform)
}

/// Theorem 2: minimize latency on a Communication Homogeneous platform.
///
/// Single interval, no replication, fastest processor.
///
/// # Errors
/// [`CoreError::NotCommHomogeneous`] when link bandwidths differ — the
/// result does not hold there (Figure 3/4 is the counterexample; use
/// [`general_mapping_shortest_path`] or the exact interval solvers).
pub fn minimize_latency_comm_homog(pipeline: &Pipeline, platform: &Platform) -> Result<BiSolution> {
    if platform.uniform_bandwidth().is_none() {
        return Err(CoreError::NotCommHomogeneous);
    }
    let fastest = platform.fastest_proc();
    let mapping =
        IntervalMapping::single_interval(pipeline.n_stages(), vec![fastest], platform.n_procs())
            .expect("single processor mapping is always valid");
    Ok(BiSolution::evaluate(mapping, pipeline, platform))
}

/// Theorem 4: minimum-latency **general mapping** on any platform, by
/// shortest path in the layered graph of Figure 6.
///
/// Layer `k` holds one vertex per processor (= "stage `k` runs on `P_u`");
/// edge `V_{k,u} → V_{k+1,v}` costs `w_k/s_u + δ_{k+1}/b_{u,v}` (zero
/// communication when `u = v`), the source edges cost `δ_0/b_{in,u}`, the
/// sink edges `w_{n−1}/s_u + δ_n/b_{u,out}`. Returns the mapping and its
/// latency.
#[must_use]
#[allow(clippy::needless_range_loop)] // u indexes dist and pred in lockstep
pub fn general_mapping_shortest_path(
    pipeline: &Pipeline,
    platform: &Platform,
) -> (GeneralMapping, f64) {
    let n = pipeline.n_stages();
    let m = platform.n_procs();

    // dist[u] = best cost with the data for stage `k` delivered onto P_u.
    let mut dist: Vec<f64> = (0..m)
        .map(|u| {
            platform.comm_time(
                Vertex::In,
                Vertex::Proc(ProcId::new(u)),
                pipeline.input_size(),
            )
        })
        .collect();
    // pred[k][u] = processor chosen for stage k−1 on the best path reaching
    // stage k on u.
    let mut pred: Vec<Vec<u32>> = Vec::with_capacity(n);

    for k in 0..n.saturating_sub(1) {
        let mut next = vec![f64::INFINITY; m];
        let mut back = vec![0u32; m];
        for u in 0..m {
            let done = dist[u] + pipeline.work(k) / platform.speed(ProcId::new(u));
            for v in 0..m {
                let cost = done
                    + platform.comm_time(
                        Vertex::Proc(ProcId::new(u)),
                        Vertex::Proc(ProcId::new(v)),
                        pipeline.delta(k + 1),
                    );
                if cost < next[v] {
                    next[v] = cost;
                    back[v] = u as u32;
                }
            }
        }
        pred.push(back);
        dist = next;
    }

    // Close the path through P_out.
    let mut best_total = f64::INFINITY;
    let mut best_last = 0usize;
    for u in 0..m {
        let total = dist[u]
            + pipeline.work(n - 1) / platform.speed(ProcId::new(u))
            + platform.comm_time(
                Vertex::Proc(ProcId::new(u)),
                Vertex::Out,
                pipeline.output_size(),
            );
        if total < best_total {
            best_total = total;
            best_last = u;
        }
    }

    // Trace back stage assignments.
    let mut assignment = vec![ProcId::new(best_last); n];
    let mut cur = best_last;
    for k in (0..n - 1).rev() {
        cur = pred[k][cur] as usize;
        assignment[k] = ProcId::new(cur);
    }
    let mapping = GeneralMapping::new(assignment, m).expect("ids are in range");
    debug_assert!(
        (general_latency(&mapping, pipeline, platform) - best_total).abs()
            <= 1e-9 * best_total.max(1.0),
        "traceback latency must equal the DP optimum"
    );
    (mapping, best_total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpwf_core::assert_approx_eq;
    use rpwf_core::metrics::{failure_probability, latency};
    use rpwf_core::platform::PlatformBuilder;

    fn p(i: u32) -> ProcId {
        ProcId(i)
    }

    #[test]
    fn thm1_uses_all_processors_single_interval() {
        let pipe = Pipeline::uniform(3, 2.0, 1.0).unwrap();
        let pf = Platform::comm_homogeneous(vec![1.0, 2.0], 1.0, vec![0.5, 0.4]).unwrap();
        let sol = minimize_failure(&pipe, &pf);
        assert_eq!(sol.mapping.n_intervals(), 1);
        assert_eq!(sol.mapping.replication(0), 2);
        assert_approx_eq!(sol.failure_prob, 0.2);
    }

    #[test]
    fn thm1_is_the_global_minimum_by_enumeration() {
        use rpwf_core::intervals::IntervalPartitions;
        let pipe = Pipeline::uniform(3, 2.0, 1.0).unwrap();
        let pf = Platform::comm_homogeneous(vec![1.0, 2.0, 3.0], 1.0, vec![0.5, 0.4, 0.9]).unwrap();
        let best = minimize_failure(&pipe, &pf).failure_prob;
        // Enumerate a few alternative mappings and confirm none beats it.
        for part in IntervalPartitions::new(3) {
            if part.len() > 3 {
                continue;
            }
            let alloc: Vec<Vec<ProcId>> = (0..part.len()).map(|j| vec![p(j as u32)]).collect();
            let m = IntervalMapping::new(part, alloc, 3, 3).unwrap();
            assert!(failure_probability(&m, &pf) >= best - 1e-12);
        }
    }

    #[test]
    fn thm2_fastest_processor_single_interval() {
        let pipe = Pipeline::new(vec![4.0, 4.0], vec![2.0, 8.0, 2.0]).unwrap();
        let pf = Platform::comm_homogeneous(vec![1.0, 4.0, 2.0], 2.0, vec![0.0; 3]).unwrap();
        let sol = minimize_latency_comm_homog(&pipe, &pf).unwrap();
        assert_eq!(sol.mapping.alloc(0), &[p(1)]);
        // δ0/b + W/s + δn/b = 1 + 2 + 1.
        assert_approx_eq!(sol.latency, 4.0);
    }

    #[test]
    fn thm2_rejects_heterogeneous_links() {
        let pipe = Pipeline::uniform(1, 1.0, 1.0).unwrap();
        let pf = PlatformBuilder::new(2)
            .bandwidth(Vertex::Proc(p(0)), Vertex::Proc(p(1)), 9.0)
            .build()
            .unwrap();
        assert_eq!(
            minimize_latency_comm_homog(&pipe, &pf).unwrap_err(),
            CoreError::NotCommHomogeneous
        );
    }

    #[test]
    fn thm2_beats_any_split_on_comm_homog() {
        // Sanity: splitting adds communications; single-fastest is optimal.
        let pipe = Pipeline::new(vec![3.0, 5.0, 2.0], vec![4.0, 1.0, 6.0, 2.0]).unwrap();
        let pf = Platform::comm_homogeneous(vec![1.0, 2.0, 4.0], 2.0, vec![0.1, 0.2, 0.3]).unwrap();
        let opt = minimize_latency_comm_homog(&pipe, &pf).unwrap().latency;
        use rpwf_core::intervals::IntervalPartitions;
        for part in IntervalPartitions::new(3) {
            if part.len() > 3 {
                continue;
            }
            let alloc: Vec<Vec<ProcId>> = (0..part.len()).map(|j| vec![p(j as u32)]).collect();
            let mapping = IntervalMapping::new(part, alloc, 3, 3).unwrap();
            assert!(latency(&mapping, &pipe, &pf) >= opt - 1e-12);
        }
    }

    /// Figure 3/4 of the paper: the shortest-path solver must find the
    /// split with latency 7 that single-processor mappings (105) miss.
    #[test]
    fn thm4_reproduces_figure34() {
        let pipe = Pipeline::new(vec![2.0, 2.0], vec![100.0, 100.0, 100.0]).unwrap();
        let pf = PlatformBuilder::new(2)
            .input_bandwidth(p(0), 100.0)
            .input_bandwidth(p(1), 1.0)
            .bandwidth(Vertex::Proc(p(0)), Vertex::Proc(p(1)), 100.0)
            .output_bandwidth(p(0), 1.0)
            .output_bandwidth(p(1), 100.0)
            .build()
            .unwrap();
        let (mapping, lat) = general_mapping_shortest_path(&pipe, &pf);
        assert_approx_eq!(lat, 7.0);
        assert_eq!(mapping.procs(), &[p(0), p(1)]);
    }

    #[test]
    fn thm4_reuses_processors_when_profitable() {
        // Three stages; P0 is fast for stages 0 and 2, P1 fast for stage 1?
        // Speeds are per-processor, so emulate with communication: P0–P1
        // links are free, so bouncing P0→P1→P0 costs nothing and the best
        // path uses the faster processor wherever compute dominates.
        let pipe = Pipeline::new(vec![10.0, 10.0, 10.0], vec![0.0; 4]).unwrap();
        let pf = Platform::comm_homogeneous(vec![5.0, 1.0], 1.0, vec![0.0, 0.0]).unwrap();
        let (mapping, lat) = general_mapping_shortest_path(&pipe, &pf);
        // All stages on the fast processor: 30/5 = 6.
        assert_approx_eq!(lat, 6.0);
        assert!(mapping.procs().iter().all(|&q| q == p(0)));
    }

    #[test]
    fn thm4_latency_agrees_with_metric() {
        let pipe = Pipeline::new(vec![1.0, 2.0, 3.0, 4.0], vec![5.0, 4.0, 3.0, 2.0, 1.0]).unwrap();
        let pf = PlatformBuilder::new(3)
            .speeds(vec![1.0, 2.0, 3.0])
            .unwrap()
            .bandwidth(Vertex::Proc(p(0)), Vertex::Proc(p(1)), 0.5)
            .bandwidth(Vertex::Proc(p(1)), Vertex::Proc(p(2)), 5.0)
            .input_bandwidth(p(2), 0.25)
            .build()
            .unwrap();
        let (mapping, lat) = general_mapping_shortest_path(&pipe, &pf);
        assert_approx_eq!(lat, general_latency(&mapping, &pipe, &pf));
    }

    #[test]
    fn thm4_single_stage_picks_best_io_chain() {
        let pipe = Pipeline::new(vec![6.0], vec![6.0, 6.0]).unwrap();
        let pf = PlatformBuilder::new(2)
            .speeds(vec![1.0, 2.0])
            .unwrap()
            .input_bandwidth(p(0), 6.0)
            .output_bandwidth(p(0), 6.0)
            .input_bandwidth(p(1), 1.0)
            .output_bandwidth(p(1), 1.0)
            .build()
            .unwrap();
        // P0: 1 + 6 + 1 = 8; P1: 6 + 3 + 6 = 15.
        let (mapping, lat) = general_mapping_shortest_path(&pipe, &pf);
        assert_eq!(mapping.procs(), &[p(0)]);
        assert_approx_eq!(lat, 8.0);
    }
}
