//! Theorem 7 gadget: 2-PARTITION → bi-criteria feasibility on a Fully
//! Heterogeneous platform.
//!
//! Given positive integers `a_1 … a_m` with sum `S`, the reduction builds:
//!
//! * a single-stage pipeline (`w = 1`, `δ_0 = δ_1 = 1`),
//! * `m` unit-speed processors with `fp_j = e^{−a_j}`, `b_{in,j} = 1/a_j`,
//!   `b_{j,out} = 1`,
//!
//! and asks whether some mapping achieves `latency ≤ S/2 + 2` **and**
//! `FP ≤ e^{−S/2}`. A single-stage mapping is just a replica subset `I`;
//! its latency is `Σ_{j∈I} a_j + 2` (serialized input, compute 1, output 1)
//! and its failure probability `e^{−Σ_{j∈I} a_j}` — so feasibility pins
//! `Σ_{j∈I} a_j = S/2` exactly, i.e. a 2-partition.
//!
//! The FP threshold is compared **in log space** (`−Σ a_j ≤ −S/2`): for
//! large `S`, `e^{−S/2}` underflows linear f64, while the log-space test
//! stays exact (the `a_j` are integers).

use rpwf_core::mapping::IntervalMapping;
use rpwf_core::metrics::{latency, log_success_probability};
use rpwf_core::platform::{Platform, PlatformBuilder, ProcId};
use rpwf_core::stage::Pipeline;
use rpwf_gen::TwoPartitionInstance;
use serde::{Deserialize, Serialize};

/// The constructed bi-criteria feasibility instance.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TwoPartitionGadget {
    /// Single unit stage.
    pub pipeline: Pipeline,
    /// The encoding platform.
    pub platform: Platform,
    /// `L = S/2 + 2`.
    pub latency_threshold: f64,
    /// `ln FP-threshold = −S/2` (the linear value `e^{−S/2}` may underflow).
    pub ln_fp_threshold: f64,
    values: Vec<u64>,
}

/// Builds the gadget for a 2-PARTITION instance.
#[must_use]
pub fn build(inst: &TwoPartitionInstance) -> TwoPartitionGadget {
    let m = inst.values.len();
    let s = inst.total() as f64;
    let pipeline = Pipeline::new(vec![1.0], vec![1.0, 1.0]).expect("single unit stage");
    let mut builder = PlatformBuilder::new(m).speeds_uniform(1.0);
    for (j, &a) in inst.values.iter().enumerate() {
        let pid = ProcId::new(j);
        builder = builder
            .failure_prob(pid, (-(a as f64)).exp())
            .input_bandwidth(pid, 1.0 / a as f64)
            .output_bandwidth(pid, 1.0);
    }
    let platform = builder.build().expect("gadget values are valid");
    TwoPartitionGadget {
        pipeline,
        platform,
        latency_threshold: s / 2.0 + 2.0,
        ln_fp_threshold: -s / 2.0,
        values: inst.values.clone(),
    }
}

impl TwoPartitionGadget {
    /// The mapping replicating the single stage on `subset`.
    ///
    /// # Panics
    /// On out-of-range or duplicate indices.
    #[must_use]
    pub fn subset_to_mapping(&self, subset: &[usize]) -> IntervalMapping {
        IntervalMapping::single_interval(
            1,
            subset.iter().map(|&j| ProcId::new(j)).collect(),
            self.platform.n_procs(),
        )
        .expect("subsets are valid single-interval allocations")
    }

    /// Recovers the subset from a mapping.
    #[must_use]
    pub fn mapping_to_subset(&self, mapping: &IntervalMapping) -> Vec<usize> {
        mapping
            .used_processors()
            .iter()
            .map(|p| p.index())
            .collect()
    }

    /// Checks both thresholds for a mapping, FP in log space.
    #[must_use]
    pub fn mapping_feasible(&self, mapping: &IntervalMapping) -> bool {
        const EPS: f64 = 1e-6;
        let lat = latency(mapping, &self.pipeline, &self.platform);
        if lat > self.latency_threshold + EPS {
            return false;
        }
        // FP ≤ e^{ln_fp_threshold}  ⟺  ln(1 − success) ≤ ln_fp_threshold.
        // For single-interval mappings FP = Π fp, so ln FP =
        // ln(1 − e^{ln_success}); compute it stably from the success log.
        let ln_success = log_success_probability(mapping, &self.platform);
        let ln_fp = if ln_success == 0.0 {
            f64::NEG_INFINITY
        } else {
            rpwf_core::num::LogProb::from_ln(ln_success)
                .one_minus()
                .ln()
        };
        ln_fp <= self.ln_fp_threshold + EPS
    }

    /// Decides the gadget: is some replica subset feasible? Exhaustive over
    /// subsets for `m ≤ 24`, which certifies the equivalence on test sizes.
    ///
    /// # Panics
    /// When `m > 24`.
    #[must_use]
    pub fn decide_by_enumeration(&self) -> Option<Vec<usize>> {
        let m = self.platform.n_procs();
        assert!(m <= 24, "subset enumeration capped at 24 processors");
        // Integer arithmetic mirror of the float thresholds: Σ a_j over the
        // subset must be ≤ S/2 (latency) and ≥ S/2 (reliability).
        let total: u64 = self.values.iter().sum();
        for mask in 1u32..(1u32 << m) {
            let sum: u64 = (0..m)
                .filter(|&j| mask & (1 << j) != 0)
                .map(|j| self.values[j])
                .sum();
            if 2 * sum == total {
                let subset: Vec<usize> = (0..m).filter(|&j| mask & (1 << j) != 0).collect();
                debug_assert!(self.mapping_feasible(&self.subset_to_mapping(&subset)));
                return Some(subset);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rpwf_core::assert_approx_eq;
    use rpwf_core::metrics::failure_probability;

    #[test]
    fn witness_subset_sits_exactly_on_both_thresholds() {
        let inst = TwoPartitionInstance {
            values: vec![3, 1, 2, 2],
        }; // S = 8
        let g = build(&inst);
        let witness = inst.solve().expect("3+1 = 2+2");
        let mapping = g.subset_to_mapping(&witness);
        let lat = latency(&mapping, &g.pipeline, &g.platform);
        assert_approx_eq!(lat, 4.0 + 2.0);
        let fp = failure_probability(&mapping, &g.platform);
        assert_approx_eq!(fp, (-4.0f64).exp(), 1e-6);
        assert!(g.mapping_feasible(&mapping));
    }

    #[test]
    fn unbalanced_subsets_violate_a_threshold() {
        let inst = TwoPartitionInstance {
            values: vec![3, 1, 2, 2],
        };
        let g = build(&inst);
        // Too small a sum: reliable enough? No — FP too large.
        assert!(!g.mapping_feasible(&g.subset_to_mapping(&[1]))); // Σ = 1
                                                                  // Too large a sum: latency blown.
        assert!(!g.mapping_feasible(&g.subset_to_mapping(&[0, 2, 3]))); // Σ = 7
    }

    #[test]
    fn equivalence_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..30 {
            let inst = TwoPartitionInstance::random(8, 12, &mut rng);
            let g = build(&inst);
            let partition_answer = inst.solve().is_some();
            let gadget_answer = g.decide_by_enumeration().is_some();
            assert_eq!(partition_answer, gadget_answer, "values {:?}", inst.values);
        }
    }

    #[test]
    fn planted_yes_and_odd_no() {
        let mut rng = StdRng::seed_from_u64(22);
        let yes = TwoPartitionInstance::with_planted_solution(4, 9, &mut rng);
        assert!(build(&yes).decide_by_enumeration().is_some());
        let no = TwoPartitionInstance::odd_total(7, 9, &mut rng);
        assert!(build(&no).decide_by_enumeration().is_none());
    }

    #[test]
    fn log_space_threshold_survives_huge_sums() {
        // S large enough that e^{−S/2} underflows f64 (S/2 > 745): the
        // log-space feasibility test must still discriminate.
        let inst = TwoPartitionInstance {
            values: vec![400, 400, 400, 400],
        }; // S = 1600
        let g = build(&inst);
        assert!(g.ln_fp_threshold < -745.0);
        let witness = g.decide_by_enumeration().expect("two pairs of 400");
        assert!(g.mapping_feasible(&g.subset_to_mapping(&witness)));
        assert!(!g.mapping_feasible(&g.subset_to_mapping(&[0]))); // Σ = 400 < 800
    }

    #[test]
    fn roundtrip_subset_mapping() {
        let inst = TwoPartitionInstance {
            values: vec![5, 3, 2, 4],
        };
        let g = build(&inst);
        let mapping = g.subset_to_mapping(&[0, 2]);
        assert_eq!(g.mapping_to_subset(&mapping), vec![0, 2]);
    }
}
