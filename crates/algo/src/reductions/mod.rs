//! Executable NP-hardness reductions (Theorems 3 and 7).
//!
//! Both gadget constructions of the paper are implemented as instance
//! transformers with answer mappings in both directions, so the
//! equivalences can be *tested*, not just stated:
//!
//! * [`tsp`] — TSP (bounded Hamiltonian path) → one-to-one latency,
//! * [`two_partition`] — 2-PARTITION → bi-criteria (latency, FP)
//!   feasibility.

pub mod tsp;
pub mod two_partition;

pub use tsp::{build as build_tsp_gadget, TspGadget};
pub use two_partition::{build as build_two_partition_gadget, TwoPartitionGadget};
