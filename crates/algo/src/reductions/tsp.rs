//! Theorem 3 gadget: Traveling Salesman Problem → one-to-one latency
//! minimization on a Fully Heterogeneous platform.
//!
//! Given a complete graph `G = (V, E, c)`, a source `s`, a tail `t` and a
//! bound `K`, the reduction builds:
//!
//! * a pipeline of `n = |V|` identical unit stages (`w_i = δ_i = 1`),
//! * `m = n` unit-speed processors (processor `u` ↔ vertex `u`),
//! * links: `b_{in,s} = 1`, `b_{t,out} = 1`, `b_{u,v} = 1/c(u,v)`, and all
//!   remaining I/O links *slow* (`1/(K+n+4) < 1/(K+n+3)`),
//!
//! and asks for latency `≤ K′ = K + n + 2`. With as many processors as
//! stages, every solution is a bijection, spends `2` time units on I/O and
//! `n` on compute; the remaining `≤ K` pay exactly the Hamiltonian path
//! `s → … → t`. Both directions of the equivalence are executable here:
//! mappings convert to paths and back, and the exact solvers certify the
//! thresholds.

use rpwf_core::mapping::OneToOneMapping;
use rpwf_core::metrics::one_to_one_latency;
use rpwf_core::platform::{Platform, PlatformBuilder, ProcId, Vertex};
use rpwf_core::stage::Pipeline;
use rpwf_gen::TspInstance;
use serde::{Deserialize, Serialize};

/// The constructed mapping instance, with the answer threshold.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TspGadget {
    /// `n` identical unit stages.
    pub pipeline: Pipeline,
    /// `n` unit-speed processors with the cost-encoding bandwidths.
    pub platform: Platform,
    /// `K′ = K + n + 2`: the latency question equivalent to the TSP bound.
    pub latency_threshold: f64,
    /// The TSP bound `K` this gadget was built for.
    pub k_bound: f64,
    source: usize,
    tail: usize,
}

/// Builds the gadget for a TSP instance and bound `K`.
///
/// # Panics
/// When some edge cost is not strictly positive (bandwidths must be
/// positive and finite).
#[must_use]
pub fn build(inst: &TspInstance, k_bound: f64) -> TspGadget {
    let n = inst.n;
    let pipeline = Pipeline::uniform(n, 1.0, 1.0).expect("n ≥ 2");
    let slow = 1.0 / (k_bound + n as f64 + 4.0);

    let mut builder = PlatformBuilder::new(n).speeds_uniform(1.0);
    // Processor-processor links encode edge costs.
    for i in 0..n {
        for j in i + 1..n {
            let c = inst.costs[i][j];
            assert!(c > 0.0 && c.is_finite(), "edge costs must be positive");
            builder = builder.bandwidth(
                Vertex::Proc(ProcId::new(i)),
                Vertex::Proc(ProcId::new(j)),
                1.0 / c,
            );
        }
    }
    // I/O links: only s may read the input fast, only t may write fast.
    for u in 0..n {
        let bin = if u == inst.source { 1.0 } else { slow };
        let bout = if u == inst.tail { 1.0 } else { slow };
        builder = builder
            .input_bandwidth(ProcId::new(u), bin)
            .output_bandwidth(ProcId::new(u), bout);
    }
    let platform = builder.build().expect("gadget values are valid");
    TspGadget {
        pipeline,
        platform,
        latency_threshold: k_bound + n as f64 + 2.0,
        k_bound,
        source: inst.source,
        tail: inst.tail,
    }
}

impl TspGadget {
    /// Converts a Hamiltonian path (vertex sequence from `s` to `t`) into
    /// the corresponding one-to-one mapping (stage `k` on the path's `k`-th
    /// vertex).
    ///
    /// # Panics
    /// When the path is not a permutation from source to tail.
    #[must_use]
    pub fn path_to_mapping(&self, path: &[usize]) -> OneToOneMapping {
        assert_eq!(path.len(), self.pipeline.n_stages());
        assert_eq!(path[0], self.source, "path must start at the source vertex");
        assert_eq!(
            *path.last().expect("non-empty"),
            self.tail,
            "path must end at the tail"
        );
        OneToOneMapping::new(path.iter().map(|&v| ProcId::new(v)).collect(), path.len())
            .expect("a Hamiltonian path visits distinct vertices")
    }

    /// Converts a one-to-one mapping back to the vertex sequence it induces.
    #[must_use]
    pub fn mapping_to_path(&self, mapping: &OneToOneMapping) -> Vec<usize> {
        mapping.procs().iter().map(|p| p.index()).collect()
    }

    /// Latency of the mapping corresponding to `path`.
    #[must_use]
    pub fn path_latency(&self, path: &[usize]) -> f64 {
        one_to_one_latency(&self.path_to_mapping(path), &self.pipeline, &self.platform)
    }

    /// The forward direction of Theorem 3's equivalence: a Hamiltonian path
    /// of cost `C` maps to latency exactly `C + n + 2`.
    #[must_use]
    pub fn forward_latency(&self, path_cost: f64) -> f64 {
        path_cost + self.pipeline.n_stages() as f64 + 2.0
    }

    /// Decides the gadget instance exactly (Held–Karp under the hood) and
    /// answers the original TSP question: is there a Hamiltonian path of
    /// cost ≤ `K`? Returns the witness path when the answer is yes.
    #[must_use]
    pub fn decide(&self) -> Option<Vec<usize>> {
        let (mapping, lat) =
            crate::exact::held_karp::min_latency_one_to_one(&self.pipeline, &self.platform)?;
        if lat <= self.latency_threshold + 1e-9 {
            Some(self.mapping_to_path(&mapping))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rpwf_core::assert_approx_eq;
    use rpwf_core::platform::PlatformClass;

    #[test]
    fn gadget_platform_is_fully_heterogeneous() {
        let mut rng = StdRng::seed_from_u64(1);
        let inst = TspInstance::random(5, 9, &mut rng);
        let g = build(&inst, 12.0);
        assert_eq!(g.platform.class(), PlatformClass::FullyHeterogeneous);
        assert_eq!(g.pipeline.n_stages(), 5);
        assert_eq!(g.latency_threshold, 12.0 + 5.0 + 2.0);
    }

    #[test]
    fn path_latency_equals_cost_plus_n_plus_2() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10 {
            let inst = TspInstance::random(5, 9, &mut rng);
            let g = build(&inst, 20.0);
            let (path, cost) = inst.brute_force_best_path();
            assert_approx_eq!(g.path_latency(&path), g.forward_latency(cost));
        }
    }

    #[test]
    fn equivalence_on_random_instances() {
        // Theorem 3, both directions, via exact solvers on both sides.
        let mut rng = StdRng::seed_from_u64(3);
        for trial in 0..12 {
            let n = 4 + trial % 3;
            let inst = TspInstance::random(n, 7, &mut rng);
            let (_, best_cost) = inst.brute_force_best_path();
            // K exactly at the optimum: yes-instance.
            let g_yes = build(&inst, best_cost);
            let witness = g_yes.decide().expect("yes-instance must decide yes");
            assert!(inst.path_cost(&witness) <= best_cost + 1e-9);
            // K just below the optimum: no-instance.
            let g_no = build(&inst, best_cost - 0.5);
            assert!(g_no.decide().is_none(), "no-instance must decide no");
        }
    }

    #[test]
    fn mappings_avoiding_s_or_t_blow_the_threshold() {
        let mut rng = StdRng::seed_from_u64(4);
        let inst = TspInstance::random(4, 5, &mut rng);
        let g = build(&inst, 30.0);
        // Put the tail vertex first and source last: both I/O links slow.
        let bad_path = {
            let mut p: Vec<usize> = (0..4).collect();
            p.swap(0, inst.tail);
            // ensure source is not first anymore
            if p[0] == inst.source {
                p.swap(1, 3);
            }
            p
        };
        let mapping =
            OneToOneMapping::new(bad_path.iter().map(|&v| ProcId::new(v)).collect(), 4).unwrap();
        let lat = one_to_one_latency(&mapping, &g.pipeline, &g.platform);
        assert!(
            lat > g.latency_threshold,
            "mapping that skips the fast I/O chain must exceed K' ({lat} <= {})",
            g.latency_threshold
        );
    }

    #[test]
    fn roundtrip_path_mapping() {
        let mut rng = StdRng::seed_from_u64(5);
        let inst = TspInstance::random(6, 9, &mut rng);
        let g = build(&inst, 10.0);
        let (path, _) = inst.brute_force_best_path();
        let mapping = g.path_to_mapping(&path);
        assert_eq!(g.mapping_to_path(&mapping), path);
    }
}
