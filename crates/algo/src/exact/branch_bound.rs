//! Branch-and-bound exact solver for the NP-hard bi-criteria problem on
//! Fully Heterogeneous platforms (Theorem 7), parallelized across cores
//! with a shared incumbent.
//!
//! The brute-force oracle ([`crate::exact::exhaustive`]) evaluates every
//! `(partition, allocation)` pair; this solver explores the same tree
//! depth-first but prunes with two sound bounds:
//!
//! * **latency bound** — partial latency, plus the cheapest possible finish
//!   of the pending interval (its work on its fastest replica, zero
//!   outgoing communication), plus the remaining stages' work on the
//!   globally fastest processor, plus the unavoidable I/O communication
//!   floors (cheapest `P_in` link before the first interval opens, cheapest
//!   `P_out` link while stages remain — both cached in
//!   [`EvalContext`]), already exceeds the latency budget;
//! * **failure bound** — the failure probability of the mapped prefix
//!   (remaining intervals can only *increase* FP, since each multiplies
//!   the success probability by a factor `≤ 1`) is already no better than
//!   the incumbent.
//!
//! # Cooperative parallel search
//!
//! The assignment subtree is split at a configurable frontier depth into
//! **work units** (first-interval choices by default); `N` workers claim
//! units off a shared atomic counter — an idle worker simply claims (and
//! thereby steals) whatever unit is next, so stragglers never serialize
//! the tail. Workers share the incumbent **value** through one atomic
//! (f64 bits, CAS-published only when strictly better), so one worker's
//! bound prunes every other worker's subtree.
//!
//! # Determinism
//!
//! Parallel and sequential runs return **byte-identical** answers. The
//! canonical winner is the minimum over feasible leaves of the key
//! `(objective value, secondary criterion, unit index, DFS position)`:
//!
//! * the shared bound prunes only *strictly worse* nodes, so the ancestors
//!   of the winning leaf (whose bounds never exceed the optimal value) are
//!   never pruned by another worker's publication, regardless of timing;
//! * ties *within* one unit are pruned against the unit-local best only —
//!   a deterministic function of that unit's own DFS — keeping the old
//!   sequential pruning strength without cross-worker races;
//! * worker-local bests merge by the canonical key, not completion order.
//!
//! Heuristic seeds only initialize the shared bound and are never returned
//! from a `Complete` search (the seed's own leaf sits in the tree and its
//! ancestors are never pruned), so seeding provably cannot change answers.

use crate::heuristics::Portfolio;
use crate::par::resolve_threads;
use crate::solution::{BiSolution, Budgeted, Objective};
use rpwf_core::budget::{Budget, BudgetPoller};
use rpwf_core::eval::EvalContext;
use rpwf_core::mapping::{Interval, IntervalMapping};
use rpwf_core::num::LogProb;
use rpwf_core::platform::{Platform, ProcId, Vertex};
use rpwf_core::stage::Pipeline;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// State-space cap (`2^m` allocation masks).
const MAX_PROCS: usize = 24;

/// Ceiling on materialized work units when splitting deeper than one
/// interval; generation stops refining once this many units exist (the
/// remaining frontier states become units at their current depth).
const MAX_UNITS: usize = 1 << 16;

/// Branch-and-bound solver handle.
#[derive(Clone, Copy, Debug)]
pub struct BranchBound<'a> {
    pipeline: &'a Pipeline,
    platform: &'a Platform,
    /// Skip seeding the incumbent from the heuristics (for benchmarking the
    /// raw search).
    pub seed_with_heuristics: bool,
    /// Worker threads (0 = one per available core, 1 = sequential).
    threads: usize,
    /// Intervals fixed per work unit (frontier split depth).
    split_depth: usize,
}

/// Per-worker search telemetry from one parallel (or sequential) run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerStat {
    /// Worker index within the run's pool.
    pub worker: usize,
    /// Wall-clock busy time of this worker, microseconds.
    pub elapsed_us: u64,
    /// DFS nodes expanded by this worker.
    pub nodes: u64,
    /// Work units this worker claimed and searched.
    pub units_executed: u64,
    /// Claimed units whose round-robin home was another worker.
    pub units_stolen: u64,
    /// Strictly-better incumbent values this worker published globally.
    pub improvements: u64,
}

/// Telemetry for one branch-and-bound run (or an aggregate of runs, e.g.
/// every ε-step of a front sweep).
#[derive(Clone, Debug, Default)]
pub struct SearchStats {
    /// Resolved worker-pool width the search ran with.
    pub threads: usize,
    /// Per-worker counters, indexed by worker.
    pub workers: Vec<WorkerStat>,
}

impl SearchStats {
    /// Total DFS nodes expanded across workers.
    #[must_use]
    pub fn nodes(&self) -> u64 {
        self.workers.iter().map(|w| w.nodes).sum()
    }

    /// Total work units executed across workers.
    #[must_use]
    pub fn units_executed(&self) -> u64 {
        self.workers.iter().map(|w| w.units_executed).sum()
    }

    /// Total work units executed by a non-home worker.
    #[must_use]
    pub fn units_stolen(&self) -> u64 {
        self.workers.iter().map(|w| w.units_stolen).sum()
    }

    /// Total strictly-better incumbent publications.
    #[must_use]
    pub fn improvements(&self) -> u64 {
        self.workers.iter().map(|w| w.improvements).sum()
    }

    /// Folds another run's counters into this one (same-index workers are
    /// summed), e.g. to aggregate the steps of a front sweep.
    pub fn absorb(&mut self, other: &SearchStats) {
        self.threads = self.threads.max(other.threads);
        for w in &other.workers {
            match self.workers.iter_mut().find(|x| x.worker == w.worker) {
                Some(x) => {
                    x.elapsed_us += w.elapsed_us;
                    x.nodes += w.nodes;
                    x.units_executed += w.units_executed;
                    x.units_stolen += w.units_stolen;
                    x.improvements += w.improvements;
                }
                None => self.workers.push(*w),
            }
        }
        self.workers.sort_by_key(|w| w.worker);
    }
}

/// Immutable per-run context shared (by reference) across workers.
struct TreeCtx<'a> {
    pipeline: &'a Pipeline,
    platform: &'a Platform,
    /// Cached bound ingredients: the pipeline prefix sums (suffix work in
    /// O(1)), the fastest speed, and the cheapest I/O links.
    ctx: EvalContext<'a>,
    objective: Objective,
    n: usize,
    m: usize,
    full: u32,
}

/// Mutable cross-worker state: the published incumbent value and the work
/// claim counter.
struct SharedState {
    /// f64 bits of the best *published* objective value (`+inf` when none).
    /// Values are nonnegative, so numeric order matches bit order; we still
    /// compare as floats for clarity.
    bound_bits: AtomicU64,
    /// Next unclaimed work-unit index; claiming is the steal.
    next_unit: AtomicUsize,
}

impl SharedState {
    fn new() -> Self {
        SharedState {
            bound_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            next_unit: AtomicUsize::new(0),
        }
    }

    fn bound(&self) -> f64 {
        f64::from_bits(self.bound_bits.load(Ordering::Relaxed))
    }

    /// Publishes `value` if strictly better than the current bound;
    /// returns whether this call improved it.
    fn publish(&self, value: f64) -> bool {
        let mut cur = self.bound_bits.load(Ordering::Relaxed);
        loop {
            if value >= f64::from_bits(cur) {
                return false;
            }
            match self.bound_bits.compare_exchange_weak(
                cur,
                value.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(now) => cur = now,
            }
        }
    }
}

/// One frontier state: the subtree rooted at a partial assignment.
#[derive(Clone, Debug)]
struct Unit {
    stack: Vec<(usize, u32)>,
    used: u32,
    next_stage: usize,
    lat: f64,
    fp_cost: f64,
}

/// Pending (not yet closed) interval encoded by a decision stack.
fn pending_of(stack: &[(usize, u32)]) -> Option<(usize, usize, u32)> {
    stack.last().map(|&(end, mask)| {
        let start = if stack.len() >= 2 {
            stack[stack.len() - 2].0 + 1
        } else {
            0
        };
        (start, end, mask)
    })
}

impl TreeCtx<'_> {
    /// Latency contribution of closing interval `(start..=end, alloc_prev)`
    /// toward the next replica mask (`None` = toward `P_out`).
    fn close_cost(&self, start: usize, end: usize, prev_mask: u32, next_mask: Option<u32>) -> f64 {
        let work = self.pipeline.work_sum(start, end);
        let out_size = self.pipeline.delta(end + 1);
        let mut worst = f64::NEG_INFINITY;
        let mut mm = prev_mask;
        while mm != 0 {
            let u = ProcId::new(mm.trailing_zeros() as usize);
            mm &= mm - 1;
            let mut cost = work / self.platform.speed(u);
            match next_mask {
                Some(next) => {
                    let mut vv = next;
                    while vv != 0 {
                        let v = ProcId::new(vv.trailing_zeros() as usize);
                        vv &= vv - 1;
                        cost += self
                            .platform
                            .comm_time(Vertex::Proc(u), Vertex::Proc(v), out_size);
                    }
                }
                None => {
                    cost += self
                        .platform
                        .comm_time(Vertex::Proc(u), Vertex::Out, out_size);
                }
            }
            if cost > worst {
                worst = cost;
            }
        }
        worst
    }

    /// Optimistic lower bound on the pending interval's remaining cost:
    /// its work on the fastest replica, no outgoing communication.
    fn pending_min(&self, start: usize, end: usize, mask: u32) -> f64 {
        let work = self.pipeline.work_sum(start, end);
        let mut best = f64::INFINITY;
        let mut mm = mask;
        while mm != 0 {
            let u = ProcId::new(mm.trailing_zeros() as usize);
            mm &= mm - 1;
            best = best.min(work / self.platform.speed(u));
        }
        best
    }

    /// Partial latency after opening a new interval on `sub`: close the
    /// pending interval toward it, or (first interval) pay the serialized
    /// input transfers from `P_in`.
    fn open_lat(&self, pending: Option<(usize, usize, u32)>, lat_partial: f64, sub: u32) -> f64 {
        let mut lat = lat_partial;
        if let Some((s, e, mask)) = pending {
            lat += self.close_cost(s, e, mask, Some(sub));
        } else {
            let mut vv = sub;
            while vv != 0 {
                let v = ProcId::new(vv.trailing_zeros() as usize);
                vv &= vv - 1;
                lat += self.platform.comm_time(
                    Vertex::In,
                    Vertex::Proc(v),
                    self.pipeline.input_size(),
                );
            }
        }
        lat
    }

    /// Accumulated `-ln(success)` after adding an interval replicated on
    /// `sub`.
    fn interval_fp_cost(&self, fp_cost_partial: f64, sub: u32) -> f64 {
        let mut all_fail = LogProb::ONE;
        let mut vv = sub;
        while vv != 0 {
            let v = ProcId::new(vv.trailing_zeros() as usize);
            vv &= vv - 1;
            all_fail = all_fail * LogProb::from_prob(self.platform.failure_prob(v));
        }
        fp_cost_partial - all_fail.one_minus().ln()
    }

    /// Canonical `(objective value, secondary criterion)` key of a leaf.
    fn keys(&self, latency: f64, fp: f64) -> (f64, f64) {
        match self.objective {
            Objective::MinFpUnderLatency(_) => (fp, latency),
            Objective::MinLatencyUnderFp(_) => (latency, fp),
        }
    }

    /// Sound lower bounds at a node: `(value_lb, secondary_lb, infeasible)`
    /// where `infeasible` means no completion can satisfy the constraint.
    /// `lat_partial` excludes the pending interval's own term; `pending` is
    /// `(start, end, mask)` of the not-yet-closed interval.
    fn node_bounds(
        &self,
        lat_partial: f64,
        fp_cost_partial: f64,
        pending: Option<(usize, usize, u32)>,
        next_stage: usize,
    ) -> (f64, f64, bool) {
        // Sound optimistic completion of the latency.
        let mut lb = lat_partial;
        match pending {
            Some((s, e, mask)) => lb += self.pending_min(s, e, mask),
            // No interval opened yet: the first interval will pay at
            // least one input transfer over the cheapest P_in link.
            None => lb += self.ctx.min_input_comm(),
        }
        if next_stage < self.n {
            // Remaining stages run at best on the globally fastest
            // processor, and the final interval pays at least the
            // cheapest P_out transfer of the pipeline output.
            lb += self.ctx.suffix_work(next_stage) / self.ctx.max_speed()
                + self.ctx.min_output_comm();
        }
        let fp_lb = -(-fp_cost_partial).exp_m1(); // FP of the closed prefix
        match self.objective {
            Objective::MinFpUnderLatency(_) => {
                (fp_lb, lb, lb > self.objective.threshold_with_slack())
            }
            Objective::MinLatencyUnderFp(_) => {
                (lb, fp_lb, fp_lb > self.objective.threshold_with_slack())
            }
        }
    }
}

/// Work-unit enumeration: index-addressable frontier states in structural
/// DFS order, so claims by index preserve the canonical ordering.
enum UnitSource {
    /// Depth-1 split: unit `k` is the `k`-th `(first end, first mask)`
    /// root child; O(1) addressing, nothing materialized (important for
    /// large `m`, where there are `n·(2^m − 1)` units).
    Implicit { n: usize, full: u32 },
    /// Deeper splits materialize the frontier (capped at [`MAX_UNITS`]).
    Materialized(Vec<Unit>),
}

impl UnitSource {
    fn len(&self) -> usize {
        match self {
            UnitSource::Implicit { n, full } => n * (*full as usize),
            UnitSource::Materialized(units) => units.len(),
        }
    }

    fn get(&self, k: usize, t: &TreeCtx) -> Unit {
        match self {
            UnitSource::Implicit { full, .. } => {
                let fullc = *full as usize;
                let end = k / fullc;
                // Submask enumeration from the full free set walks
                // full, full−1, …, 1, so rank r maps to mask full − r.
                let sub = full - (k % fullc) as u32;
                Unit {
                    stack: vec![(end, sub)],
                    used: sub,
                    next_stage: end + 1,
                    lat: t.open_lat(None, 0.0, sub),
                    fp_cost: t.interval_fp_cost(0.0, sub),
                }
            }
            UnitSource::Materialized(units) => units[k].clone(),
        }
    }
}

/// Generates the materialized frontier for `split_depth ≥ 2`.
struct UnitGen<'a> {
    t: &'a TreeCtx<'a>,
    stack: Vec<(usize, u32)>,
    out: Vec<Unit>,
}

impl UnitGen<'_> {
    fn rec(&mut self, depth_left: usize, next_stage: usize, used: u32, lat: f64, fp_cost: f64) {
        if depth_left == 0 || next_stage == self.t.n || self.out.len() >= MAX_UNITS {
            self.out.push(Unit {
                stack: self.stack.clone(),
                used,
                next_stage,
                lat,
                fp_cost,
            });
            return;
        }
        let free = self.t.full & !used;
        if free == 0 {
            return; // no processors left: the subtree holds no leaves
        }
        let pending = pending_of(&self.stack);
        for end in next_stage..self.t.n {
            let mut sub = free;
            while sub != 0 {
                let l = self.t.open_lat(pending, lat, sub);
                let f = self.t.interval_fp_cost(fp_cost, sub);
                self.stack.push((end, sub));
                self.rec(depth_left - 1, end + 1, used | sub, l, f);
                self.stack.pop();
                sub = (sub - 1) & free;
            }
        }
    }
}

/// A unit's best feasible leaf under the canonical key.
struct UnitBest {
    value: f64,
    secondary: f64,
    sol: BiSolution,
}

/// Per-worker DFS executor over claimed units.
struct Search<'a> {
    t: &'a TreeCtx<'a>,
    shared: &'a SharedState,
    /// Strided budget view; the stop flag is shared with every worker, so
    /// one worker's cutoff detection cancels the whole pool.
    poller: BudgetPoller,
    /// Best feasible leaf of the unit currently being searched. Ties are
    /// pruned only against this (never the shared bound), which keeps the
    /// per-unit winner independent of other workers' timing.
    unit_best: Option<UnitBest>,
    /// ε-sweep carry: best-latency leaf at or below this FP gate, kept as
    /// a *seed candidate* for the next sweep step (never an answer).
    carry_gate: Option<f64>,
    carry: Option<BiSolution>,
    /// Decision stack: per interval `(end stage, replica mask)`.
    stack: Vec<(usize, u32)>,
    nodes: u64,
    improvements: u64,
    /// Set once the budget expires; unwinds the whole DFS.
    aborted: bool,
}

impl Search<'_> {
    fn decode(&self) -> IntervalMapping {
        let mut intervals = Vec::with_capacity(self.stack.len());
        let mut alloc = Vec::with_capacity(self.stack.len());
        let mut start = 0usize;
        for &(end, mask) in &self.stack {
            intervals.push(Interval::new(start, end).expect("ordered"));
            let mut ids = Vec::new();
            let mut mm = mask;
            while mm != 0 {
                ids.push(ProcId::new(mm.trailing_zeros() as usize));
                mm &= mm - 1;
            }
            alloc.push(ids);
            start = end + 1;
        }
        IntervalMapping::new(intervals, alloc, self.t.n, self.t.m)
            .expect("search stack encodes a valid mapping")
    }

    /// Records a fully-assigned leaf: sweep carry, then the canonical
    /// unit-local incumbent (first-found wins exact ties), publishing
    /// strictly-better values to the shared bound.
    fn consider_leaf(&mut self, latency: f64, fp: f64) {
        if let Some(gate) = self.carry_gate {
            if fp <= gate {
                let better = match &self.carry {
                    None => true,
                    Some(c) => latency < c.latency || (latency == c.latency && fp < c.failure_prob),
                };
                if better {
                    self.carry = Some(BiSolution {
                        mapping: self.decode(),
                        latency,
                        failure_prob: fp,
                    });
                }
            }
        }
        if !self.t.objective.feasible(latency, fp) {
            return;
        }
        let (value, secondary) = self.t.keys(latency, fp);
        let better = match &self.unit_best {
            None => true,
            Some(b) => value < b.value || (value == b.value && secondary < b.secondary),
        };
        if !better {
            return;
        }
        self.unit_best = Some(UnitBest {
            value,
            secondary,
            sol: BiSolution {
                mapping: self.decode(),
                latency,
                failure_prob: fp,
            },
        });
        if self.shared.publish(value) {
            self.improvements += 1;
        }
    }

    /// Prune test. Soundness *and* determinism: the shared bound prunes
    /// only strictly-worse nodes (so the canonical winner's ancestors
    /// survive any publication timing); value ties are pruned against the
    /// unit-local best only.
    fn pruned(
        &self,
        lat_partial: f64,
        fp_cost_partial: f64,
        pending: Option<(usize, usize, u32)>,
        next_stage: usize,
    ) -> bool {
        let (value_lb, sec_lb, infeasible) =
            self.t
                .node_bounds(lat_partial, fp_cost_partial, pending, next_stage);
        if infeasible {
            return true;
        }
        if value_lb > self.shared.bound() {
            return true;
        }
        if let Some(b) = &self.unit_best {
            if value_lb > b.value || (value_lb == b.value && sec_lb >= b.secondary) {
                return true;
            }
        }
        false
    }

    /// DFS over interval ends and allocation submasks.
    ///
    /// Invariant: `self.stack` holds all *closed and pending* intervals;
    /// the last stack entry is the pending interval whose outgoing cost is
    /// not yet included in `lat_partial`.
    fn dfs(&mut self, next_stage: usize, used: u32, lat_partial: f64, fp_cost_partial: f64) {
        self.nodes += 1;
        if self.poller.check(self.nodes) {
            self.aborted = true;
        }
        if self.aborted {
            return;
        }
        let free = self.t.full & !used;
        let pending = pending_of(&self.stack);

        if next_stage == self.t.n {
            // Close the pending interval toward P_out.
            let (start, end, mask) = pending.expect("at least one interval");
            let latency = lat_partial + self.t.close_cost(start, end, mask, None);
            let fp = -(-fp_cost_partial).exp_m1();
            self.consider_leaf(latency, fp);
            return;
        }
        if self.pruned(lat_partial, fp_cost_partial, pending, next_stage) {
            return;
        }
        if free == 0 {
            return; // no processors left for the remaining stages
        }

        for end in next_stage..self.t.n {
            // Enumerate non-empty submasks of the free set for the next
            // interval.
            let mut sub = free;
            while sub != 0 {
                let lat = self.t.open_lat(pending, lat_partial, sub);
                let fp_cost = self.t.interval_fp_cost(fp_cost_partial, sub);

                self.stack.push((end, sub));
                self.dfs(end + 1, used | sub, lat, fp_cost);
                self.stack.pop();
                if self.aborted {
                    return;
                }

                sub = (sub - 1) & free;
            }
        }
    }
}

/// Everything one worker reports back for the deterministic merge.
struct WorkerOutcome {
    /// Canonical-best feasible leaf: `(value, secondary, unit, solution)`.
    best: Option<(f64, f64, usize, BiSolution)>,
    carry: Option<BiSolution>,
    stat: WorkerStat,
    aborted: bool,
}

/// `a` strictly precedes `b` under the canonical merge key.
fn lex_better(a: (f64, f64, usize), b: (f64, f64, usize)) -> bool {
    match a.0.total_cmp(&b.0) {
        std::cmp::Ordering::Less => true,
        std::cmp::Ordering::Greater => false,
        std::cmp::Ordering::Equal => match a.1.total_cmp(&b.1) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => a.2 < b.2,
        },
    }
}

/// Shared-reference bundle driving one worker pool.
struct Driver<'a> {
    t: &'a TreeCtx<'a>,
    shared: &'a SharedState,
    units: &'a UnitSource,
    n_workers: usize,
    carry_gate: Option<f64>,
    poller: BudgetPoller,
}

impl Driver<'_> {
    fn run_worker(&self, worker: usize) -> WorkerOutcome {
        let start = Instant::now();
        let mut s = Search {
            t: self.t,
            shared: self.shared,
            poller: self.poller.clone(),
            unit_best: None,
            carry_gate: self.carry_gate,
            carry: None,
            stack: Vec::with_capacity(self.t.n),
            nodes: 0,
            improvements: 0,
            aborted: false,
        };
        let mut best: Option<(f64, f64, usize, BiSolution)> = None;
        let mut units_executed = 0u64;
        let mut units_stolen = 0u64;
        // Entry poll: an already-expired budget aborts before any claim.
        if s.poller.poll_now() {
            s.aborted = true;
        }
        while !s.aborted {
            let k = self.shared.next_unit.fetch_add(1, Ordering::Relaxed);
            if k >= self.units.len() {
                break;
            }
            if s.poller.is_stopped() {
                s.aborted = true;
                break;
            }
            let unit = self.units.get(k, self.t);
            units_executed += 1;
            if k % self.n_workers != worker {
                units_stolen += 1;
            }
            s.unit_best = None;
            s.stack.clear();
            s.stack.extend_from_slice(&unit.stack);
            s.dfs(unit.next_stage, unit.used, unit.lat, unit.fp_cost);
            // Merge the unit's (possibly partial, on abort) best by the
            // canonical key — unit index, not completion order.
            if let Some(ub) = s.unit_best.take() {
                let replace = match &best {
                    None => true,
                    Some((v, sec, uk, _)) => {
                        lex_better((ub.value, ub.secondary, k), (*v, *sec, *uk))
                    }
                };
                if replace {
                    best = Some((ub.value, ub.secondary, k, ub.sol));
                }
            }
        }
        WorkerOutcome {
            best,
            carry: s.carry,
            stat: WorkerStat {
                worker,
                elapsed_us: u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX),
                nodes: s.nodes,
                units_executed,
                units_stolen,
                improvements: s.improvements,
            },
            aborted: s.aborted,
        }
    }
}

/// Full result of one run: outcome, node count, telemetry, sweep carry.
pub(crate) struct RunOutput {
    pub(crate) outcome: Budgeted<Option<BiSolution>>,
    pub(crate) nodes: u64,
    pub(crate) stats: SearchStats,
    pub(crate) carry: Option<BiSolution>,
}

impl<'a> BranchBound<'a> {
    /// Creates a sequential solver (heuristic incumbent seeding enabled).
    #[must_use]
    pub fn new(pipeline: &'a Pipeline, platform: &'a Platform) -> Self {
        BranchBound {
            pipeline,
            platform,
            seed_with_heuristics: true,
            threads: 1,
            split_depth: 1,
        }
    }

    /// Disables heuristic incumbent seeding (raw search, for measuring the
    /// pruning contribution).
    #[must_use]
    pub fn without_heuristic_seed(mut self) -> Self {
        self.seed_with_heuristics = false;
        self
    }

    /// Sets the worker-pool width: 0 = one worker per available core,
    /// 1 = sequential (default), N = exactly N workers. Any width returns
    /// byte-identical answers.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets how many intervals each work unit fixes (frontier split
    /// depth); 1 (default) splits on the first `(end, mask)` choice.
    #[must_use]
    pub fn with_split_depth(mut self, depth: usize) -> Self {
        self.split_depth = depth.max(1);
        self
    }

    /// The resolved worker-pool width this solver will run with.
    #[must_use]
    pub fn effective_threads(&self) -> usize {
        resolve_threads(self.threads)
    }

    /// Runs the search under a budget. Internal seeding (when enabled)
    /// runs the heuristic portfolio *before* the budget is first polled,
    /// so direct callers with very tight deadlines should seed externally
    /// via [`Self::solve_with_budget_seeded`].
    fn run(&self, objective: Objective, budget: &Budget) -> RunOutput {
        let incumbent = if self.seed_with_heuristics {
            Portfolio::new(0xB0B).solve(self.pipeline, self.platform, objective)
        } else {
            None
        };
        self.run_seeded(objective, budget, incumbent, None)
    }

    fn run_seeded(
        &self,
        objective: Objective,
        budget: &Budget,
        incumbent: Option<BiSolution>,
        carry_gate: Option<f64>,
    ) -> RunOutput {
        let m = self.platform.n_procs();
        assert!(
            m <= MAX_PROCS,
            "branch and bound supports at most {MAX_PROCS} processors"
        );
        let n = self.pipeline.n_stages();
        let full: u32 = if m == 32 { u32::MAX } else { (1u32 << m) - 1 };
        let t = TreeCtx {
            pipeline: self.pipeline,
            platform: self.platform,
            ctx: EvalContext::new(self.pipeline, self.platform),
            objective,
            n,
            m,
            full,
        };
        // Seeds only ever tighten the shared bound; answers come from the
        // tree, so an (always feasible) seed provably cannot change them.
        let seed = incumbent.filter(|s| objective.feasible(s.latency, s.failure_prob));
        let shared = SharedState::new();
        if let Some(s) = &seed {
            let (value, _) = t.keys(s.latency, s.failure_prob);
            shared.publish(value);
        }
        let poller = BudgetPoller::new(budget.clone());

        // Root-level check: an infeasible or empty instance finishes
        // without enumerating the (possibly huge) unit space.
        let (_, _, root_infeasible) = t.node_bounds(0.0, 0.0, None, 0);
        if root_infeasible {
            return RunOutput {
                outcome: Budgeted::Complete(None),
                nodes: 1,
                stats: SearchStats {
                    threads: self.effective_threads(),
                    workers: Vec::new(),
                },
                carry: None,
            };
        }

        let units = if self.split_depth <= 1 {
            UnitSource::Implicit { n, full }
        } else {
            let mut gen = UnitGen {
                t: &t,
                stack: Vec::with_capacity(self.split_depth),
                out: Vec::new(),
            };
            gen.rec(self.split_depth, 0, 0, 0.0, 0.0);
            UnitSource::Materialized(gen.out)
        };
        let n_workers = self.effective_threads().clamp(1, units.len().max(1));
        let driver = Driver {
            t: &t,
            shared: &shared,
            units: &units,
            n_workers,
            carry_gate,
            poller: poller.clone(),
        };

        let outcomes: Vec<WorkerOutcome> = if n_workers == 1 {
            vec![driver.run_worker(0)]
        } else {
            let d = &driver;
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = (0..n_workers)
                    .map(|w| scope.spawn(move |_| d.run_worker(w)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("search worker panicked"))
                    .collect()
            })
            .expect("search scope panicked")
        };

        let aborted = outcomes.iter().any(|o| o.aborted) || poller.is_stopped();
        let mut best: Option<(f64, f64, usize, BiSolution)> = None;
        let mut carry: Option<BiSolution> = None;
        let mut stats = SearchStats {
            threads: n_workers,
            workers: Vec::with_capacity(outcomes.len()),
        };
        let mut nodes = 0u64;
        for o in outcomes {
            nodes += o.stat.nodes;
            stats.workers.push(o.stat);
            if let Some((v, sec, uk, sol)) = o.best {
                let replace = match &best {
                    None => true,
                    Some((bv, bs, bu, _)) => lex_better((v, sec, uk), (*bv, *bs, *bu)),
                };
                if replace {
                    best = Some((v, sec, uk, sol));
                }
            }
            if let Some(c) = o.carry {
                let replace = match &carry {
                    None => true,
                    Some(cur) => {
                        c.latency < cur.latency
                            || (c.latency == cur.latency && c.failure_prob < cur.failure_prob)
                    }
                };
                if replace {
                    carry = Some(c);
                }
            }
        }
        let tree_answer = best.map(|(_, _, _, sol)| sol);
        let answer = if aborted {
            // Cutoff: the best feasible incumbent in hand, seed included.
            match (tree_answer, seed) {
                (Some(tr), Some(sd)) => {
                    let tk = t.keys(tr.latency, tr.failure_prob);
                    let sk = t.keys(sd.latency, sd.failure_prob);
                    if lex_better((sk.0, sk.1, usize::MAX), (tk.0, tk.1, 0)) {
                        Some(sd)
                    } else {
                        Some(tr)
                    }
                }
                (tr, sd) => tr.or(sd),
            }
        } else {
            // Complete: the exhausted tree contains the seed's own leaf,
            // so the canonical answer already matches or beats any seed.
            tree_answer
        };
        RunOutput {
            outcome: if aborted {
                Budgeted::Cutoff(answer)
            } else {
                Budgeted::Complete(answer)
            },
            nodes,
            stats,
            carry,
        }
    }

    /// Like [`Self::solve_with_budget`] but seeded with an
    /// externally-computed incumbent (e.g. the portfolio answer already in
    /// hand) instead of running the internal heuristic seeding pass — the
    /// search starts polling the budget immediately.
    ///
    /// # Panics
    /// When the platform has more than 24 processors.
    #[must_use]
    pub fn solve_with_budget_seeded(
        &self,
        objective: Objective,
        budget: &Budget,
        incumbent: Option<BiSolution>,
    ) -> Budgeted<Option<BiSolution>> {
        self.run_seeded(objective, budget, incumbent, None).outcome
    }

    /// Like [`Self::solve_with_budget_seeded`], also returning per-worker
    /// search telemetry.
    ///
    /// # Panics
    /// When the platform has more than 24 processors.
    #[must_use]
    pub fn solve_with_budget_seeded_stats(
        &self,
        objective: Objective,
        budget: &Budget,
        incumbent: Option<BiSolution>,
    ) -> (Budgeted<Option<BiSolution>>, SearchStats) {
        let out = self.run_seeded(objective, budget, incumbent, None);
        (out.outcome, out.stats)
    }

    /// One ε-constraint sweep step: solve, and additionally collect the
    /// best-latency leaf whose FP is at or below `carry_gate` as a seed
    /// candidate for the next (tighter) step.
    pub(crate) fn solve_sweep_step(
        &self,
        objective: Objective,
        budget: &Budget,
        incumbent: Option<BiSolution>,
        carry_gate: Option<f64>,
    ) -> RunOutput {
        self.run_seeded(objective, budget, incumbent, carry_gate)
    }

    /// Solves the threshold problem exactly; `None` when infeasible.
    ///
    /// # Panics
    /// When the platform has more than 24 processors.
    #[must_use]
    pub fn solve(&self, objective: Objective) -> Option<BiSolution> {
        self.run(objective, &Budget::unlimited())
            .outcome
            .into_inner()
    }

    /// Solves under a deadline/cancellation budget. A
    /// [`Budgeted::Cutoff`] payload is the best *feasible* incumbent found
    /// before the budget expired (not proven optimal); `Cutoff(None)`
    /// means the budget expired before any feasible solution was found.
    ///
    /// # Panics
    /// When the platform has more than 24 processors.
    #[must_use]
    pub fn solve_with_budget(
        &self,
        objective: Objective,
        budget: &Budget,
    ) -> Budgeted<Option<BiSolution>> {
        self.run(objective, budget).outcome
    }

    /// Like [`solve`](Self::solve) but also returns the explored node count
    /// (for the pruning-effectiveness experiment).
    #[must_use]
    pub fn solve_counting(&self, objective: Objective) -> (Option<BiSolution>, u64) {
        let out = self.run(objective, &Budget::unlimited());
        (out.outcome.into_inner(), out.nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::Exhaustive;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rpwf_core::assert_approx_eq;
    use rpwf_core::platform::{FailureClass, PlatformClass};
    use rpwf_gen::{PipelineGen, PlatformGen};

    fn thresholds(pipe: &Pipeline, pf: &Platform) -> Vec<f64> {
        let ex = Exhaustive::new(pipe, pf);
        let lo = ex.min_latency().latency;
        let hi = crate::mono::minimize_failure(pipe, pf).latency;
        (0..4).map(|i| lo + (hi - lo) * i as f64 / 3.0).collect()
    }

    #[test]
    fn matches_exhaustive_on_fully_het() {
        let mut rng = StdRng::seed_from_u64(33);
        for _ in 0..6 {
            let pipe = PipelineGen::balanced(3).sample(&mut rng);
            let pf = PlatformGen::new(
                4,
                PlatformClass::FullyHeterogeneous,
                FailureClass::Heterogeneous,
            )
            .sample(&mut rng);
            let bnb = BranchBound::new(&pipe, &pf);
            let ex = Exhaustive::new(&pipe, &pf);
            for l in thresholds(&pipe, &pf) {
                let a = bnb.solve(Objective::MinFpUnderLatency(l));
                let o = ex.solve(Objective::MinFpUnderLatency(l));
                match (a, o) {
                    (Some(a), Some(o)) => assert_approx_eq!(a.failure_prob, o.failure_prob),
                    (None, None) => {}
                    (a, o) => panic!("L={l}: {a:?} vs {o:?}"),
                }
            }
        }
    }

    #[test]
    fn matches_exhaustive_min_latency_under_fp() {
        let mut rng = StdRng::seed_from_u64(34);
        for _ in 0..5 {
            let pipe = PipelineGen::balanced(3).sample(&mut rng);
            let pf = PlatformGen::new(
                4,
                PlatformClass::FullyHeterogeneous,
                FailureClass::Heterogeneous,
            )
            .sample(&mut rng);
            let bnb = BranchBound::new(&pipe, &pf);
            let ex = Exhaustive::new(&pipe, &pf);
            for f in [0.9, 0.5, 0.2, 0.05] {
                let a = bnb.solve(Objective::MinLatencyUnderFp(f));
                let o = ex.solve(Objective::MinLatencyUnderFp(f));
                match (a, o) {
                    (Some(a), Some(o)) => assert_approx_eq!(a.latency, o.latency),
                    (None, None) => {}
                    (a, o) => panic!("FP={f}: {a:?} vs {o:?}"),
                }
            }
        }
    }

    #[test]
    fn figure5_optimum_found() {
        let pipe = rpwf_gen::figure5_pipeline();
        let pf = rpwf_gen::figure5_platform();
        let sol = BranchBound::new(&pipe, &pf)
            .solve(Objective::MinFpUnderLatency(22.0))
            .expect("feasible");
        assert_approx_eq!(sol.failure_prob, 1.0 - 0.9 * (1.0 - 0.8f64.powi(10)));
        assert_approx_eq!(sol.latency, 22.0);
    }

    #[test]
    fn seeding_does_not_change_the_answer() {
        let mut rng = StdRng::seed_from_u64(35);
        let pipe = PipelineGen::balanced(3).sample(&mut rng);
        let pf = PlatformGen::new(
            4,
            PlatformClass::FullyHeterogeneous,
            FailureClass::Heterogeneous,
        )
        .sample(&mut rng);
        let l = thresholds(&pipe, &pf)[2];
        let seeded = BranchBound::new(&pipe, &pf).solve(Objective::MinFpUnderLatency(l));
        let raw = BranchBound {
            seed_with_heuristics: false,
            ..BranchBound::new(&pipe, &pf)
        }
        .solve(Objective::MinFpUnderLatency(l));
        match (seeded, raw) {
            (Some(a), Some(b)) => assert_approx_eq!(a.failure_prob, b.failure_prob),
            (None, None) => {}
            (a, b) => panic!("{a:?} vs {b:?}"),
        }
    }

    #[test]
    fn seeding_prunes_nodes() {
        let mut rng = StdRng::seed_from_u64(36);
        let pipe = PipelineGen::balanced(4).sample(&mut rng);
        let pf = PlatformGen::new(
            6,
            PlatformClass::FullyHeterogeneous,
            FailureClass::Heterogeneous,
        )
        .sample(&mut rng);
        let l = {
            let hi = crate::mono::minimize_failure(&pipe, &pf).latency;
            hi * 0.7
        };
        let (_, seeded_nodes) =
            BranchBound::new(&pipe, &pf).solve_counting(Objective::MinFpUnderLatency(l));
        let (_, raw_nodes) = BranchBound {
            seed_with_heuristics: false,
            ..BranchBound::new(&pipe, &pf)
        }
        .solve_counting(Objective::MinFpUnderLatency(l));
        assert!(
            seeded_nodes <= raw_nodes,
            "seeding must not explore more nodes ({seeded_nodes} vs {raw_nodes})"
        );
    }

    #[test]
    fn unlimited_budget_is_complete_and_matches_solve() {
        let pipe = rpwf_gen::figure5_pipeline();
        let pf = rpwf_gen::figure5_platform();
        let objective = Objective::MinFpUnderLatency(22.0);
        let plain = BranchBound::new(&pipe, &pf).solve(objective);
        let budgeted =
            BranchBound::new(&pipe, &pf).solve_with_budget(objective, &Budget::unlimited());
        assert!(budgeted.is_complete());
        assert_eq!(budgeted.into_inner(), plain);
    }

    #[test]
    fn expired_budget_cuts_off_quickly() {
        // A large instance the raw search could chew on for a long time;
        // with an already-expired deadline and no heuristic seeding the
        // search must unwind almost immediately and report a cutoff.
        let mut rng = StdRng::seed_from_u64(99);
        let pipe = PipelineGen::balanced(8).sample(&mut rng);
        let pf = PlatformGen::new(
            12,
            PlatformClass::FullyHeterogeneous,
            FailureClass::Heterogeneous,
        )
        .sample(&mut rng);
        let budget = Budget::with_deadline(std::time::Duration::ZERO);
        let start = std::time::Instant::now();
        let outcome = BranchBound::new(&pipe, &pf)
            .without_heuristic_seed()
            .solve_with_budget(Objective::MinFpUnderLatency(1e12), &budget);
        assert!(!outcome.is_complete(), "expired budget must report Cutoff");
        assert!(
            start.elapsed() < std::time::Duration::from_secs(5),
            "cutoff must be prompt, took {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn cancellation_token_aborts_search() {
        let mut rng = StdRng::seed_from_u64(98);
        let pipe = PipelineGen::balanced(4).sample(&mut rng);
        let pf = PlatformGen::new(
            6,
            PlatformClass::FullyHeterogeneous,
            FailureClass::Heterogeneous,
        )
        .sample(&mut rng);
        let (budget, handle) = Budget::unlimited().cancellable();
        handle.cancel();
        let outcome = BranchBound::new(&pipe, &pf)
            .without_heuristic_seed()
            .solve_with_budget(Objective::MinFpUnderLatency(1e12), &budget);
        assert!(!outcome.is_complete());
    }

    #[test]
    fn cutoff_incumbent_is_feasible_when_present() {
        let pipe = rpwf_gen::figure5_pipeline();
        let pf = rpwf_gen::figure5_platform();
        let objective = Objective::MinFpUnderLatency(22.0);
        // Heuristic seeding gives an incumbent even at zero budget.
        let outcome = BranchBound::new(&pipe, &pf)
            .solve_with_budget(objective, &Budget::with_deadline(std::time::Duration::ZERO));
        if let Some(sol) = outcome.inner() {
            assert!(objective.feasible(sol.latency, sol.failure_prob));
        }
    }

    #[test]
    fn infeasible_returns_none() {
        let pipe = Pipeline::uniform(2, 100.0, 100.0).unwrap();
        let pf = Platform::fully_homogeneous(3, 1.0, 1.0, 0.9).unwrap();
        assert!(BranchBound::new(&pipe, &pf)
            .solve(Objective::MinFpUnderLatency(1.0))
            .is_none());
    }

    #[test]
    fn handles_larger_instances_than_the_oracle_comfortably() {
        // n = 4, m = 9: the oracle would enumerate up to 5^9 ≈ 2M
        // assignments per partition; B&B finishes quickly and agrees with
        // the bitmask DP on a comm-homogeneous instance (which is also a
        // valid fully-het input).
        let mut rng = StdRng::seed_from_u64(37);
        let pipe = PipelineGen::balanced(4).sample(&mut rng);
        let pf = PlatformGen::new(
            9,
            PlatformClass::CommHomogeneous,
            FailureClass::Heterogeneous,
        )
        .sample(&mut rng);
        let l = crate::mono::minimize_failure(&pipe, &pf).latency * 0.8;
        let bnb = BranchBound::new(&pipe, &pf).solve(Objective::MinFpUnderLatency(l));
        let dp =
            crate::exact::solve_comm_homog(&pipe, &pf, Objective::MinFpUnderLatency(l)).unwrap();
        match (bnb, dp) {
            (Some(a), Some(o)) => assert_approx_eq!(a.failure_prob, o.failure_prob),
            (None, None) => {}
            (a, o) => panic!("{a:?} vs {o:?}"),
        }
    }

    #[test]
    fn parallel_matches_sequential_byte_for_byte() {
        let mut rng = StdRng::seed_from_u64(41);
        for class in [
            PlatformClass::FullyHomogeneous,
            PlatformClass::CommHomogeneous,
            PlatformClass::FullyHeterogeneous,
        ] {
            let pipe = PipelineGen::balanced(4).sample(&mut rng);
            let pf = PlatformGen::new(6, class, FailureClass::Heterogeneous).sample(&mut rng);
            for l in thresholds(&pipe, &pf) {
                let objective = Objective::MinFpUnderLatency(l);
                let seq = BranchBound::new(&pipe, &pf)
                    .without_heuristic_seed()
                    .solve(objective);
                for threads in [2, 3, 4, 8] {
                    let par = BranchBound::new(&pipe, &pf)
                        .without_heuristic_seed()
                        .with_threads(threads)
                        .solve(objective);
                    assert_eq!(
                        serde_json::to_string(&par).unwrap(),
                        serde_json::to_string(&seq).unwrap(),
                        "threads={threads} class={class:?} L={l}"
                    );
                }
            }
        }
    }

    #[test]
    fn split_depth_does_not_change_the_answer() {
        let mut rng = StdRng::seed_from_u64(42);
        let pipe = PipelineGen::balanced(4).sample(&mut rng);
        let pf = PlatformGen::new(
            5,
            PlatformClass::FullyHeterogeneous,
            FailureClass::Heterogeneous,
        )
        .sample(&mut rng);
        let l = thresholds(&pipe, &pf)[1];
        let objective = Objective::MinFpUnderLatency(l);
        let base = BranchBound::new(&pipe, &pf).solve(objective);
        for depth in [2, 3] {
            for threads in [1, 4] {
                let got = BranchBound::new(&pipe, &pf)
                    .with_split_depth(depth)
                    .with_threads(threads)
                    .solve(objective);
                assert_eq!(
                    serde_json::to_string(&got).unwrap(),
                    serde_json::to_string(&base).unwrap(),
                    "depth={depth} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn parallel_stats_report_all_workers() {
        let mut rng = StdRng::seed_from_u64(43);
        let pipe = PipelineGen::balanced(4).sample(&mut rng);
        let pf = PlatformGen::new(
            6,
            PlatformClass::FullyHeterogeneous,
            FailureClass::Heterogeneous,
        )
        .sample(&mut rng);
        let l = crate::mono::minimize_failure(&pipe, &pf).latency;
        let (outcome, stats) = BranchBound::new(&pipe, &pf)
            .with_threads(3)
            .solve_with_budget_seeded_stats(
                Objective::MinFpUnderLatency(l),
                &Budget::unlimited(),
                None,
            );
        assert!(outcome.is_complete());
        assert_eq!(stats.threads, 3);
        assert_eq!(stats.workers.len(), 3);
        assert!(stats.nodes() > 0);
        // Every unit is claimed exactly once across the pool.
        let full = (1u64 << 6) - 1;
        assert_eq!(stats.units_executed(), 4 * full);
        assert!(stats.improvements() >= 1, "the optimum must be published");
    }

    #[test]
    fn parallel_cutoff_is_sound_and_cancels_all_workers() {
        // Mid-search expiry: all workers must stop promptly and any
        // reported incumbent must be feasible.
        let mut rng = StdRng::seed_from_u64(44);
        let pipe = PipelineGen::balanced(8).sample(&mut rng);
        let pf = PlatformGen::new(
            12,
            PlatformClass::FullyHeterogeneous,
            FailureClass::Heterogeneous,
        )
        .sample(&mut rng);
        let objective =
            Objective::MinFpUnderLatency(crate::mono::minimize_failure(&pipe, &pf).latency);
        let budget = Budget::with_deadline(std::time::Duration::from_millis(30));
        let start = std::time::Instant::now();
        let outcome = BranchBound::new(&pipe, &pf)
            .without_heuristic_seed()
            .with_threads(4)
            .solve_with_budget(objective, &budget);
        assert!(
            start.elapsed() < std::time::Duration::from_secs(5),
            "cutoff must cancel all workers promptly, took {:?}",
            start.elapsed()
        );
        assert!(!outcome.is_complete());
        if let Some(sol) = outcome.inner() {
            assert!(objective.feasible(sol.latency, sol.failure_prob));
        }
    }
}
