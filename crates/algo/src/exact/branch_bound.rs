//! Branch-and-bound exact solver for the NP-hard bi-criteria problem on
//! Fully Heterogeneous platforms (Theorem 7).
//!
//! The brute-force oracle ([`crate::exact::exhaustive`]) evaluates every
//! `(partition, allocation)` pair; this solver explores the same tree
//! depth-first but prunes with two sound bounds:
//!
//! * **latency bound** — partial latency, plus the cheapest possible finish
//!   of the pending interval (its work on its fastest replica, zero
//!   outgoing communication), plus the remaining stages' work on the
//!   globally fastest processor, plus the unavoidable I/O communication
//!   floors (cheapest `P_in` link before the first interval opens, cheapest
//!   `P_out` link while stages remain — both cached in
//!   [`EvalContext`]), already exceeds the latency budget;
//! * **failure bound** — the failure probability of the mapped prefix
//!   (remaining intervals can only *increase* FP, since each multiplies
//!   the success probability by a factor `≤ 1`) is already no better than
//!   the incumbent.
//!
//! The incumbent is seeded from the heuristic portfolio, so strong
//! solutions prune aggressively from the first node. Exact: when the
//! search finishes, the incumbent is optimal for the threshold objective.

use crate::heuristics::Portfolio;
use crate::solution::{BiSolution, Budgeted, Objective};
use rpwf_core::budget::Budget;
use rpwf_core::eval::EvalContext;
use rpwf_core::mapping::{Interval, IntervalMapping};
use rpwf_core::num::LogProb;
use rpwf_core::platform::{Platform, ProcId, Vertex};
use rpwf_core::stage::Pipeline;

/// State-space cap (`2^m` allocation masks).
const MAX_PROCS: usize = 24;

/// Branch-and-bound solver handle.
#[derive(Clone, Copy, Debug)]
pub struct BranchBound<'a> {
    pipeline: &'a Pipeline,
    platform: &'a Platform,
    /// Skip seeding the incumbent from the heuristics (for benchmarking the
    /// raw search).
    pub seed_with_heuristics: bool,
}

struct Search<'a> {
    pipeline: &'a Pipeline,
    platform: &'a Platform,
    /// Cached bound ingredients: the pipeline prefix sums (suffix work in
    /// O(1)), the fastest speed, and the cheapest I/O links.
    ctx: EvalContext<'a>,
    objective: Objective,
    n: usize,
    m: usize,
    /// Best feasible solution so far.
    best: Option<BiSolution>,
    /// Decision stack: per interval `(end stage, replica mask)`.
    stack: Vec<(usize, u32)>,
    nodes: u64,
    /// Cooperative deadline/cancellation, polled every 256 nodes.
    budget: &'a Budget,
    /// Whether the budget poll is worth paying at all.
    budget_limited: bool,
    /// Set once the budget expires; unwinds the whole DFS.
    aborted: bool,
}

impl Search<'_> {
    /// Latency contribution of closing interval `(start..=end, alloc_prev)`
    /// toward the next replica mask (`None` = toward `P_out`).
    fn close_cost(&self, start: usize, end: usize, prev_mask: u32, next_mask: Option<u32>) -> f64 {
        let work = self.pipeline.work_sum(start, end);
        let out_size = self.pipeline.delta(end + 1);
        let mut worst = f64::NEG_INFINITY;
        let mut mm = prev_mask;
        while mm != 0 {
            let u = ProcId::new(mm.trailing_zeros() as usize);
            mm &= mm - 1;
            let mut cost = work / self.platform.speed(u);
            match next_mask {
                Some(next) => {
                    let mut vv = next;
                    while vv != 0 {
                        let v = ProcId::new(vv.trailing_zeros() as usize);
                        vv &= vv - 1;
                        cost += self
                            .platform
                            .comm_time(Vertex::Proc(u), Vertex::Proc(v), out_size);
                    }
                }
                None => {
                    cost += self
                        .platform
                        .comm_time(Vertex::Proc(u), Vertex::Out, out_size);
                }
            }
            if cost > worst {
                worst = cost;
            }
        }
        worst
    }

    /// Optimistic lower bound on the pending interval's remaining cost:
    /// its work on the fastest replica, no outgoing communication.
    fn pending_min(&self, start: usize, end: usize, mask: u32) -> f64 {
        let work = self.pipeline.work_sum(start, end);
        let mut best = f64::INFINITY;
        let mut mm = mask;
        while mm != 0 {
            let u = ProcId::new(mm.trailing_zeros() as usize);
            mm &= mm - 1;
            best = best.min(work / self.platform.speed(u));
        }
        best
    }

    fn consider_incumbent(&mut self, latency: f64, fp: f64) {
        if !self.objective.feasible(latency, fp) {
            return;
        }
        let replace = match &self.best {
            None => true,
            Some(b) => {
                self.objective.value(latency, fp) < self.objective.value(b.latency, b.failure_prob)
                    || (self.objective.value(latency, fp)
                        == self.objective.value(b.latency, b.failure_prob)
                        && match self.objective {
                            Objective::MinFpUnderLatency(_) => latency < b.latency,
                            Objective::MinLatencyUnderFp(_) => fp < b.failure_prob,
                        })
            }
        };
        if replace {
            let mapping = self.decode();
            self.best = Some(BiSolution {
                mapping,
                latency,
                failure_prob: fp,
            });
        }
    }

    fn decode(&self) -> IntervalMapping {
        let mut intervals = Vec::with_capacity(self.stack.len());
        let mut alloc = Vec::with_capacity(self.stack.len());
        let mut start = 0usize;
        for &(end, mask) in &self.stack {
            intervals.push(Interval::new(start, end).expect("ordered"));
            let mut ids = Vec::new();
            let mut mm = mask;
            while mm != 0 {
                ids.push(ProcId::new(mm.trailing_zeros() as usize));
                mm &= mm - 1;
            }
            alloc.push(ids);
            start = end + 1;
        }
        IntervalMapping::new(intervals, alloc, self.n, self.m)
            .expect("search stack encodes a valid mapping")
    }

    /// Prune test. `lat_partial` excludes the pending interval's own term;
    /// `pending` is `(start, end, mask)` of the not-yet-closed interval.
    fn pruned(
        &self,
        lat_partial: f64,
        fp_cost_partial: f64,
        pending: Option<(usize, usize, u32)>,
        next_stage: usize,
    ) -> bool {
        // Sound optimistic completion of the latency.
        let mut lb = lat_partial;
        match pending {
            Some((s, e, mask)) => lb += self.pending_min(s, e, mask),
            // No interval opened yet: the first interval will pay at
            // least one input transfer over the cheapest P_in link.
            None => lb += self.ctx.min_input_comm(),
        }
        if next_stage < self.n {
            // Remaining stages run at best on the globally fastest
            // processor, and the final interval pays at least the
            // cheapest P_out transfer of the pipeline output.
            lb += self.ctx.suffix_work(next_stage) / self.ctx.max_speed()
                + self.ctx.min_output_comm();
        }
        let fp_lb = -(-fp_cost_partial).exp_m1(); // FP of the closed prefix
        match self.objective {
            Objective::MinFpUnderLatency(_) => {
                if lb > self.objective.threshold_with_slack() {
                    return true;
                }
                if let Some(b) = &self.best {
                    // Remaining intervals only increase FP.
                    if fp_lb >= b.failure_prob - 1e-15 {
                        return true;
                    }
                }
            }
            Objective::MinLatencyUnderFp(_) => {
                if fp_lb > self.objective.threshold_with_slack() {
                    return true;
                }
                if let Some(b) = &self.best {
                    if lb >= b.latency - 1e-15 {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// DFS over interval ends and allocation submasks.
    ///
    /// Invariant: `self.stack` holds all *closed and pending* intervals;
    /// the last stack entry is the pending interval whose outgoing cost is
    /// not yet included in `lat_partial`.
    fn dfs(&mut self, next_stage: usize, used: u32, lat_partial: f64, fp_cost_partial: f64) {
        self.nodes += 1;
        if self.budget_limited && self.nodes & 0xFF == 0 && self.budget.is_exhausted() {
            self.aborted = true;
        }
        if self.aborted {
            return;
        }
        let full: u32 = if self.m == 32 {
            u32::MAX
        } else {
            (1u32 << self.m) - 1
        };
        let free = full & !used;

        let pending = self.stack.last().map(|&(end, mask)| {
            let start = if self.stack.len() >= 2 {
                self.stack[self.stack.len() - 2].0 + 1
            } else {
                0
            };
            (start, end, mask)
        });

        if next_stage == self.n {
            // Close the pending interval toward P_out.
            let (start, end, mask) = pending.expect("at least one interval");
            let latency = lat_partial + self.close_cost(start, end, mask, None);
            let fp = -(-fp_cost_partial).exp_m1();
            self.consider_incumbent(latency, fp);
            return;
        }
        if self.pruned(lat_partial, fp_cost_partial, pending, next_stage) {
            return;
        }
        if free == 0 {
            return; // no processors left for the remaining stages
        }

        for end in next_stage..self.n {
            // Enumerate non-empty submasks of the free set for the next
            // interval.
            let mut sub = free;
            while sub != 0 {
                // Cost updates: close the pending interval toward `sub`,
                // account the new interval's survival and (for the first
                // interval) the serialized input from P_in.
                let mut lat = lat_partial;
                if let Some((s, e, mask)) = pending {
                    lat += self.close_cost(s, e, mask, Some(sub));
                } else {
                    let mut vv = sub;
                    while vv != 0 {
                        let v = ProcId::new(vv.trailing_zeros() as usize);
                        vv &= vv - 1;
                        lat += self.platform.comm_time(
                            Vertex::In,
                            Vertex::Proc(v),
                            self.pipeline.input_size(),
                        );
                    }
                }
                let mut all_fail = LogProb::ONE;
                let mut vv = sub;
                while vv != 0 {
                    let v = ProcId::new(vv.trailing_zeros() as usize);
                    vv &= vv - 1;
                    all_fail = all_fail * LogProb::from_prob(self.platform.failure_prob(v));
                }
                let fp_cost = fp_cost_partial - all_fail.one_minus().ln();

                self.stack.push((end, sub));
                self.dfs(end + 1, used | sub, lat, fp_cost);
                self.stack.pop();
                if self.aborted {
                    return;
                }

                sub = (sub - 1) & free;
            }
        }
    }
}

impl<'a> BranchBound<'a> {
    /// Creates a solver (heuristic incumbent seeding enabled).
    #[must_use]
    pub fn new(pipeline: &'a Pipeline, platform: &'a Platform) -> Self {
        BranchBound {
            pipeline,
            platform,
            seed_with_heuristics: true,
        }
    }

    /// Disables heuristic incumbent seeding (raw search, for measuring the
    /// pruning contribution).
    #[must_use]
    pub fn without_heuristic_seed(mut self) -> Self {
        self.seed_with_heuristics = false;
        self
    }

    /// Runs the search under a budget, returning the outcome and the
    /// explored node count. Internal seeding (when enabled) runs the
    /// heuristic portfolio *before* the budget is first polled, so direct
    /// callers with very tight deadlines should seed externally via
    /// [`Self::solve_with_budget_seeded`].
    fn run(&self, objective: Objective, budget: &Budget) -> (Budgeted<Option<BiSolution>>, u64) {
        let incumbent = if self.seed_with_heuristics {
            Portfolio::new(0xB0B).solve(self.pipeline, self.platform, objective)
        } else {
            None
        };
        self.run_seeded(objective, budget, incumbent)
    }

    fn run_seeded(
        &self,
        objective: Objective,
        budget: &Budget,
        incumbent: Option<BiSolution>,
    ) -> (Budgeted<Option<BiSolution>>, u64) {
        let m = self.platform.n_procs();
        assert!(
            m <= MAX_PROCS,
            "branch and bound supports at most {MAX_PROCS} processors"
        );
        let n = self.pipeline.n_stages();
        let mut search = Search {
            pipeline: self.pipeline,
            platform: self.platform,
            ctx: EvalContext::new(self.pipeline, self.platform),
            objective,
            n,
            m,
            best: incumbent,
            stack: Vec::with_capacity(n),
            nodes: 0,
            budget,
            budget_limited: budget.is_limited(),
            aborted: false,
        };
        search.dfs(0, 0, 0.0, 0.0);
        let outcome = if search.aborted {
            Budgeted::Cutoff(search.best)
        } else {
            Budgeted::Complete(search.best)
        };
        (outcome, search.nodes)
    }

    /// Like [`Self::solve_with_budget`] but seeded with an
    /// externally-computed incumbent (e.g. the portfolio answer already in
    /// hand) instead of running the internal heuristic seeding pass — the
    /// search starts polling the budget immediately.
    ///
    /// # Panics
    /// When the platform has more than 24 processors.
    #[must_use]
    pub fn solve_with_budget_seeded(
        &self,
        objective: Objective,
        budget: &Budget,
        incumbent: Option<BiSolution>,
    ) -> Budgeted<Option<BiSolution>> {
        self.run_seeded(objective, budget, incumbent).0
    }

    /// Solves the threshold problem exactly; `None` when infeasible.
    ///
    /// # Panics
    /// When the platform has more than 24 processors.
    #[must_use]
    pub fn solve(&self, objective: Objective) -> Option<BiSolution> {
        self.run(objective, &Budget::unlimited()).0.into_inner()
    }

    /// Solves under a deadline/cancellation budget. A
    /// [`Budgeted::Cutoff`] payload is the best *feasible* incumbent found
    /// before the budget expired (not proven optimal); `Cutoff(None)`
    /// means the budget expired before any feasible solution was found.
    ///
    /// # Panics
    /// When the platform has more than 24 processors.
    #[must_use]
    pub fn solve_with_budget(
        &self,
        objective: Objective,
        budget: &Budget,
    ) -> Budgeted<Option<BiSolution>> {
        self.run(objective, budget).0
    }

    /// Like [`solve`](Self::solve) but also returns the explored node count
    /// (for the pruning-effectiveness experiment).
    #[must_use]
    pub fn solve_counting(&self, objective: Objective) -> (Option<BiSolution>, u64) {
        let (outcome, nodes) = self.run(objective, &Budget::unlimited());
        (outcome.into_inner(), nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::Exhaustive;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rpwf_core::assert_approx_eq;
    use rpwf_core::platform::{FailureClass, PlatformClass};
    use rpwf_gen::{PipelineGen, PlatformGen};

    fn thresholds(pipe: &Pipeline, pf: &Platform) -> Vec<f64> {
        let ex = Exhaustive::new(pipe, pf);
        let lo = ex.min_latency().latency;
        let hi = crate::mono::minimize_failure(pipe, pf).latency;
        (0..4).map(|i| lo + (hi - lo) * i as f64 / 3.0).collect()
    }

    #[test]
    fn matches_exhaustive_on_fully_het() {
        let mut rng = StdRng::seed_from_u64(33);
        for _ in 0..6 {
            let pipe = PipelineGen::balanced(3).sample(&mut rng);
            let pf = PlatformGen::new(
                4,
                PlatformClass::FullyHeterogeneous,
                FailureClass::Heterogeneous,
            )
            .sample(&mut rng);
            let bnb = BranchBound::new(&pipe, &pf);
            let ex = Exhaustive::new(&pipe, &pf);
            for l in thresholds(&pipe, &pf) {
                let a = bnb.solve(Objective::MinFpUnderLatency(l));
                let o = ex.solve(Objective::MinFpUnderLatency(l));
                match (a, o) {
                    (Some(a), Some(o)) => assert_approx_eq!(a.failure_prob, o.failure_prob),
                    (None, None) => {}
                    (a, o) => panic!("L={l}: {a:?} vs {o:?}"),
                }
            }
        }
    }

    #[test]
    fn matches_exhaustive_min_latency_under_fp() {
        let mut rng = StdRng::seed_from_u64(34);
        for _ in 0..5 {
            let pipe = PipelineGen::balanced(3).sample(&mut rng);
            let pf = PlatformGen::new(
                4,
                PlatformClass::FullyHeterogeneous,
                FailureClass::Heterogeneous,
            )
            .sample(&mut rng);
            let bnb = BranchBound::new(&pipe, &pf);
            let ex = Exhaustive::new(&pipe, &pf);
            for f in [0.9, 0.5, 0.2, 0.05] {
                let a = bnb.solve(Objective::MinLatencyUnderFp(f));
                let o = ex.solve(Objective::MinLatencyUnderFp(f));
                match (a, o) {
                    (Some(a), Some(o)) => assert_approx_eq!(a.latency, o.latency),
                    (None, None) => {}
                    (a, o) => panic!("FP={f}: {a:?} vs {o:?}"),
                }
            }
        }
    }

    #[test]
    fn figure5_optimum_found() {
        let pipe = rpwf_gen::figure5_pipeline();
        let pf = rpwf_gen::figure5_platform();
        let sol = BranchBound::new(&pipe, &pf)
            .solve(Objective::MinFpUnderLatency(22.0))
            .expect("feasible");
        assert_approx_eq!(sol.failure_prob, 1.0 - 0.9 * (1.0 - 0.8f64.powi(10)));
        assert_approx_eq!(sol.latency, 22.0);
    }

    #[test]
    fn seeding_does_not_change_the_answer() {
        let mut rng = StdRng::seed_from_u64(35);
        let pipe = PipelineGen::balanced(3).sample(&mut rng);
        let pf = PlatformGen::new(
            4,
            PlatformClass::FullyHeterogeneous,
            FailureClass::Heterogeneous,
        )
        .sample(&mut rng);
        let l = thresholds(&pipe, &pf)[2];
        let seeded = BranchBound::new(&pipe, &pf).solve(Objective::MinFpUnderLatency(l));
        let raw = BranchBound {
            seed_with_heuristics: false,
            ..BranchBound::new(&pipe, &pf)
        }
        .solve(Objective::MinFpUnderLatency(l));
        match (seeded, raw) {
            (Some(a), Some(b)) => assert_approx_eq!(a.failure_prob, b.failure_prob),
            (None, None) => {}
            (a, b) => panic!("{a:?} vs {b:?}"),
        }
    }

    #[test]
    fn seeding_prunes_nodes() {
        let mut rng = StdRng::seed_from_u64(36);
        let pipe = PipelineGen::balanced(4).sample(&mut rng);
        let pf = PlatformGen::new(
            6,
            PlatformClass::FullyHeterogeneous,
            FailureClass::Heterogeneous,
        )
        .sample(&mut rng);
        let l = {
            let hi = crate::mono::minimize_failure(&pipe, &pf).latency;
            hi * 0.7
        };
        let (_, seeded_nodes) =
            BranchBound::new(&pipe, &pf).solve_counting(Objective::MinFpUnderLatency(l));
        let (_, raw_nodes) = BranchBound {
            seed_with_heuristics: false,
            ..BranchBound::new(&pipe, &pf)
        }
        .solve_counting(Objective::MinFpUnderLatency(l));
        assert!(
            seeded_nodes <= raw_nodes,
            "seeding must not explore more nodes ({seeded_nodes} vs {raw_nodes})"
        );
    }

    #[test]
    fn unlimited_budget_is_complete_and_matches_solve() {
        let pipe = rpwf_gen::figure5_pipeline();
        let pf = rpwf_gen::figure5_platform();
        let objective = Objective::MinFpUnderLatency(22.0);
        let plain = BranchBound::new(&pipe, &pf).solve(objective);
        let budgeted =
            BranchBound::new(&pipe, &pf).solve_with_budget(objective, &Budget::unlimited());
        assert!(budgeted.is_complete());
        assert_eq!(budgeted.into_inner(), plain);
    }

    #[test]
    fn expired_budget_cuts_off_quickly() {
        // A large instance the raw search could chew on for a long time;
        // with an already-expired deadline and no heuristic seeding the
        // search must unwind almost immediately and report a cutoff.
        let mut rng = StdRng::seed_from_u64(99);
        let pipe = PipelineGen::balanced(8).sample(&mut rng);
        let pf = PlatformGen::new(
            12,
            PlatformClass::FullyHeterogeneous,
            FailureClass::Heterogeneous,
        )
        .sample(&mut rng);
        let budget = Budget::with_deadline(std::time::Duration::ZERO);
        let start = std::time::Instant::now();
        let outcome = BranchBound::new(&pipe, &pf)
            .without_heuristic_seed()
            .solve_with_budget(Objective::MinFpUnderLatency(1e12), &budget);
        assert!(!outcome.is_complete(), "expired budget must report Cutoff");
        assert!(
            start.elapsed() < std::time::Duration::from_secs(5),
            "cutoff must be prompt, took {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn cancellation_token_aborts_search() {
        let mut rng = StdRng::seed_from_u64(98);
        let pipe = PipelineGen::balanced(4).sample(&mut rng);
        let pf = PlatformGen::new(
            6,
            PlatformClass::FullyHeterogeneous,
            FailureClass::Heterogeneous,
        )
        .sample(&mut rng);
        let (budget, handle) = Budget::unlimited().cancellable();
        handle.cancel();
        let outcome = BranchBound::new(&pipe, &pf)
            .without_heuristic_seed()
            .solve_with_budget(Objective::MinFpUnderLatency(1e12), &budget);
        assert!(!outcome.is_complete());
    }

    #[test]
    fn cutoff_incumbent_is_feasible_when_present() {
        let pipe = rpwf_gen::figure5_pipeline();
        let pf = rpwf_gen::figure5_platform();
        let objective = Objective::MinFpUnderLatency(22.0);
        // Heuristic seeding gives an incumbent even at zero budget.
        let outcome = BranchBound::new(&pipe, &pf)
            .solve_with_budget(objective, &Budget::with_deadline(std::time::Duration::ZERO));
        if let Some(sol) = outcome.inner() {
            assert!(objective.feasible(sol.latency, sol.failure_prob));
        }
    }

    #[test]
    fn infeasible_returns_none() {
        let pipe = Pipeline::uniform(2, 100.0, 100.0).unwrap();
        let pf = Platform::fully_homogeneous(3, 1.0, 1.0, 0.9).unwrap();
        assert!(BranchBound::new(&pipe, &pf)
            .solve(Objective::MinFpUnderLatency(1.0))
            .is_none());
    }

    #[test]
    fn handles_larger_instances_than_the_oracle_comfortably() {
        // n = 4, m = 9: the oracle would enumerate up to 5^9 ≈ 2M
        // assignments per partition; B&B finishes quickly and agrees with
        // the bitmask DP on a comm-homogeneous instance (which is also a
        // valid fully-het input).
        let mut rng = StdRng::seed_from_u64(37);
        let pipe = PipelineGen::balanced(4).sample(&mut rng);
        let pf = PlatformGen::new(
            9,
            PlatformClass::CommHomogeneous,
            FailureClass::Heterogeneous,
        )
        .sample(&mut rng);
        let l = crate::mono::minimize_failure(&pipe, &pf).latency * 0.8;
        let bnb = BranchBound::new(&pipe, &pf).solve(Objective::MinFpUnderLatency(l));
        let dp =
            crate::exact::solve_comm_homog(&pipe, &pf, Objective::MinFpUnderLatency(l)).unwrap();
        match (bnb, dp) {
            (Some(a), Some(o)) => assert_approx_eq!(a.failure_prob, o.failure_prob),
            (None, None) => {}
            (a, o) => panic!("{a:?} vs {o:?}"),
        }
    }
}
