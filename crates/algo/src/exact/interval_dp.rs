//! Exact minimum-latency **interval** mapping (no replication) on Fully
//! Heterogeneous platforms — the problem whose complexity the paper leaves
//! open (§4.1, "the complexity is still open for interval mappings,
//! although we suspect it might be NP-hard").
//!
//! Replication only adds communications, so the latency optimum never
//! replicates; what makes the problem hard is that an interval mapping may
//! not reuse a processor for two different intervals (the polynomial
//! shortest-path relaxation of Theorem 4 may). This solver tracks the used
//! set exactly: state `(next stage i, used mask, processor of the previous
//! interval)`, `O(n · 2^m · m)` states with `O(n · m)` transitions each.
//!
//! Also doubles as the certificate that the Theorem 4 relaxation is a lower
//! bound: `general ≤ interval` is asserted in the cross-validation tests.

use crate::solution::Budgeted;
use rpwf_core::budget::Budget;
use rpwf_core::eval::EvalContext;
use rpwf_core::mapping::{Interval, IntervalMapping};
use rpwf_core::platform::{Platform, ProcId, Vertex};
use rpwf_core::stage::Pipeline;

/// Memory guard for the `n·2^m·m` table.
const MAX_PROCS: usize = 16;

/// Minimum-latency interval mapping without replication, exactly.
///
/// # Panics
/// When `m > 16`.
#[must_use]
pub fn min_latency_interval(pipeline: &Pipeline, platform: &Platform) -> (IntervalMapping, f64) {
    min_latency_interval_with_budget(pipeline, platform, &Budget::unlimited())
        .into_inner()
        .expect("unlimited budget always completes")
}

/// Budgeted variant of [`min_latency_interval`]. The DP table is only
/// meaningful when filled completely, so a cutoff yields
/// `Budgeted::Cutoff(None)` rather than a partial answer.
///
/// # Panics
/// When `m > 16`.
#[must_use]
pub fn min_latency_interval_with_budget(
    pipeline: &Pipeline,
    platform: &Platform,
    budget: &Budget,
) -> Budgeted<Option<(IntervalMapping, f64)>> {
    let n = pipeline.n_stages();
    let m = platform.n_procs();
    assert!(
        m <= MAX_PROCS,
        "interval DP supports at most {MAX_PROCS} processors"
    );
    // Interval-cost lookups go through the shared evaluation context
    // (pipeline prefix sums: any `Σ w` segment in O(1)).
    let ctx = EvalContext::new(pipeline, platform);

    let size = 1usize << m;
    // dist[i][mask][u]: stages 0..i−1 mapped onto `mask`, last interval on
    // `u`, output of stage i−1 still resident on u.
    let at = |i: usize, mask: usize, u: usize| (i * size + mask) * m + u;
    let mut dist = vec![f64::INFINITY; (n + 1) * size * m];
    // parent[(i, mask, u)] = (start of the last interval) — enough to walk
    // back: previous state is (start, mask ^ (1<<u), prev_u) where prev_u is
    // stored alongside.
    let mut parent: Vec<(u32, u8)> = vec![(u32::MAX, u8::MAX); (n + 1) * size * m];

    // Base: first interval [0..e] on v.
    for v in 0..m {
        let pv = ProcId::new(v);
        let input = platform.comm_time(Vertex::In, Vertex::Proc(pv), pipeline.input_size());
        let sv = platform.speed(pv);
        for e in 0..n {
            let cost = input + ctx.work(0, e) / sv;
            let s = at(e + 1, 1 << v, v);
            if cost < dist[s] {
                dist[s] = cost;
                parent[s] = (0, u8::MAX);
            }
        }
    }

    // Forward transitions.
    let limited = budget.is_limited();
    let mut cells = 0u64;
    for i in 1..n {
        for mask in 1..size {
            cells += 1;
            if limited && cells & 0x3F == 0 && budget.is_exhausted() {
                return Budgeted::Cutoff(None);
            }
            for u in 0..m {
                if mask & (1 << u) == 0 {
                    continue;
                }
                let cur = dist[at(i, mask, u)];
                if !cur.is_finite() {
                    continue;
                }
                let pu = ProcId::new(u);
                for v in 0..m {
                    if mask & (1 << v) != 0 {
                        continue;
                    }
                    let pv = ProcId::new(v);
                    let hop =
                        platform.comm_time(Vertex::Proc(pu), Vertex::Proc(pv), pipeline.delta(i));
                    let base = cur + hop;
                    let sv = platform.speed(pv);
                    for e in i..n {
                        let cost = base + ctx.work(i, e) / sv;
                        let s = at(e + 1, mask | (1 << v), v);
                        if cost < dist[s] {
                            dist[s] = cost;
                            parent[s] = (i as u32, u as u8);
                        }
                    }
                }
            }
        }
    }

    // Close through P_out.
    let mut best = f64::INFINITY;
    let mut best_state = (0usize, 0usize);
    for mask in 1..size {
        for u in 0..m {
            if mask & (1 << u) == 0 {
                continue;
            }
            let d = dist[at(n, mask, u)];
            if !d.is_finite() {
                continue;
            }
            let total = d + platform.comm_time(
                Vertex::Proc(ProcId::new(u)),
                Vertex::Out,
                pipeline.output_size(),
            );
            if total < best {
                best = total;
                best_state = (mask, u);
            }
        }
    }

    // Traceback.
    let (mut mask, mut u) = best_state;
    let mut i = n;
    let mut segments: Vec<(Interval, ProcId)> = Vec::new();
    while i > 0 {
        let (start, prev_u) = parent[at(i, mask, u)];
        let start = start as usize;
        segments.push((
            Interval::new(start, i - 1).expect("ordered"),
            ProcId::new(u),
        ));
        mask &= !(1 << u);
        i = start;
        if i > 0 {
            u = prev_u as usize;
        }
    }
    segments.reverse();
    let intervals: Vec<Interval> = segments.iter().map(|&(iv, _)| iv).collect();
    let alloc: Vec<Vec<ProcId>> = segments.iter().map(|&(_, p)| vec![p]).collect();
    let mapping =
        IntervalMapping::new(intervals, alloc, n, m).expect("traceback produces a valid mapping");
    Budgeted::Complete(Some((mapping, best)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exhaustive::Exhaustive;
    use crate::mono::{general_mapping_shortest_path, minimize_latency_comm_homog};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rpwf_core::assert_approx_eq;
    use rpwf_core::metrics::latency;
    use rpwf_core::platform::{FailureClass, PlatformClass};
    use rpwf_gen::{PipelineGen, PlatformGen};

    #[test]
    fn budgeted_complete_matches_plain_and_cutoff_is_prompt() {
        let mut rng = StdRng::seed_from_u64(41);
        let pipe = PipelineGen::balanced(4).sample(&mut rng);
        let pf = PlatformGen::new(
            6,
            PlatformClass::FullyHeterogeneous,
            FailureClass::Heterogeneous,
        )
        .sample(&mut rng);
        let (mapping, lat) = min_latency_interval(&pipe, &pf);
        let budgeted = min_latency_interval_with_budget(&pipe, &pf, &Budget::unlimited());
        assert!(budgeted.is_complete());
        let (bm, bl) = budgeted.into_inner().expect("complete");
        assert_eq!(bm, mapping);
        assert_approx_eq!(bl, lat);

        let cutoff = min_latency_interval_with_budget(
            &pipe,
            &pf,
            &Budget::with_deadline(std::time::Duration::ZERO),
        );
        assert!(!cutoff.is_complete());
        assert_eq!(cutoff.into_inner(), None);
    }

    #[test]
    fn figure34_split_found() {
        let pipe = rpwf_gen::figure3_pipeline();
        let pf = rpwf_gen::figure4_platform();
        let (mapping, lat) = min_latency_interval(&pipe, &pf);
        assert_approx_eq!(lat, 7.0);
        assert_eq!(mapping.n_intervals(), 2);
        assert_approx_eq!(latency(&mapping, &pipe, &pf), 7.0);
    }

    #[test]
    fn matches_exhaustive_min_latency() {
        let mut rng = StdRng::seed_from_u64(555);
        for _ in 0..10 {
            let pipe = PipelineGen::balanced(3).sample(&mut rng);
            let pf = PlatformGen::new(
                4,
                PlatformClass::FullyHeterogeneous,
                FailureClass::Heterogeneous,
            )
            .sample(&mut rng);
            let (_, dp) = min_latency_interval(&pipe, &pf);
            let oracle = Exhaustive::new(&pipe, &pf).min_latency();
            assert_approx_eq!(dp, oracle.latency);
        }
    }

    #[test]
    fn reduces_to_thm2_on_comm_homogeneous() {
        let mut rng = StdRng::seed_from_u64(556);
        for _ in 0..10 {
            let pipe = PipelineGen::balanced(4).sample(&mut rng);
            let pf = PlatformGen::new(
                5,
                PlatformClass::CommHomogeneous,
                FailureClass::Heterogeneous,
            )
            .sample(&mut rng);
            let (_, dp) = min_latency_interval(&pipe, &pf);
            let thm2 = minimize_latency_comm_homog(&pipe, &pf).unwrap();
            assert_approx_eq!(dp, thm2.latency);
        }
    }

    #[test]
    fn general_relaxation_is_a_lower_bound() {
        let mut rng = StdRng::seed_from_u64(557);
        for _ in 0..20 {
            let pipe = PipelineGen::comm_heavy(4).sample(&mut rng);
            let pf = PlatformGen::new(
                4,
                PlatformClass::FullyHeterogeneous,
                FailureClass::Heterogeneous,
            )
            .sample(&mut rng);
            let (_, interval) = min_latency_interval(&pipe, &pf);
            let (_, general) = general_mapping_shortest_path(&pipe, &pf);
            assert!(
                general <= interval + 1e-9,
                "general {general} must lower-bound interval {interval}"
            );
        }
    }
}
