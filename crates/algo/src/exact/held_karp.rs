//! Exact one-to-one latency minimization on Fully Heterogeneous platforms
//! via Held–Karp subset dynamic programming.
//!
//! Theorem 3 proves this problem NP-hard (reduction from TSP, see
//! [`crate::reductions::tsp`]); this solver is the exponential exact
//! counterpart: `O(2^m · m²)` over states `(used mask, last processor)`. It
//! is the oracle that certifies the reduction gadget (an optimal mapping of
//! the gadget instance *is* an optimal Hamiltonian path) and the baseline
//! for the one-to-one heuristics on instances up to `m ≈ 18`.

use rpwf_core::mapping::OneToOneMapping;
use rpwf_core::platform::{Platform, ProcId, Vertex};
use rpwf_core::stage::Pipeline;

/// Largest supported processor count (memory: `2^m · m` f64 + parents).
const MAX_PROCS: usize = 18;

/// Minimum-latency one-to-one mapping, or `None` when `n > m`.
///
/// # Panics
/// When `m > 18` — the DP tables would not fit in reasonable memory; use
/// the heuristics for larger platforms.
#[must_use]
pub fn min_latency_one_to_one(
    pipeline: &Pipeline,
    platform: &Platform,
) -> Option<(OneToOneMapping, f64)> {
    let n = pipeline.n_stages();
    let m = platform.n_procs();
    if n > m {
        return None;
    }
    assert!(
        m <= MAX_PROCS,
        "Held–Karp supports at most {MAX_PROCS} processors"
    );

    let size = 1usize << m;
    // dist[mask][u]: stages 0..popcount(mask)−1 assigned to `mask`, the last
    // one on `u`; cost includes the input comm and all computes and
    // inter-processor comms so far (output comm added at the end).
    let mut dist = vec![f64::INFINITY; size * m];
    let mut parent = vec![u8::MAX; size * m];
    let at = |mask: usize, u: usize| mask * m + u;

    for u in 0..m {
        let pu = ProcId::new(u);
        dist[at(1 << u, u)] =
            platform.comm_time(Vertex::In, Vertex::Proc(pu), pipeline.input_size())
                + pipeline.work(0) / platform.speed(pu);
    }

    // Iterate masks in increasing order: all submasks precede supersets.
    for mask in 1..size {
        let k = mask.count_ones() as usize; // stages assigned so far
        if k >= n {
            continue;
        }
        for u in 0..m {
            if mask & (1 << u) == 0 {
                continue;
            }
            let cur = dist[at(mask, u)];
            if !cur.is_finite() {
                continue;
            }
            let pu = ProcId::new(u);
            // Assign stage k to a fresh processor v.
            for v in 0..m {
                if mask & (1 << v) != 0 {
                    continue;
                }
                let pv = ProcId::new(v);
                let cost = cur
                    + platform.comm_time(Vertex::Proc(pu), Vertex::Proc(pv), pipeline.delta(k))
                    + pipeline.work(k) / platform.speed(pv);
                let nmask = mask | (1 << v);
                if cost < dist[at(nmask, v)] {
                    dist[at(nmask, v)] = cost;
                    parent[at(nmask, v)] = u as u8;
                }
            }
        }
    }

    // Close through P_out over all full-size masks.
    let mut best = f64::INFINITY;
    let mut best_state = None;
    for mask in 1..size {
        if mask.count_ones() as usize != n {
            continue;
        }
        for u in 0..m {
            if mask & (1 << u) == 0 {
                continue;
            }
            let d = dist[at(mask, u)];
            if !d.is_finite() {
                continue;
            }
            let total = d + platform.comm_time(
                Vertex::Proc(ProcId::new(u)),
                Vertex::Out,
                pipeline.output_size(),
            );
            if total < best {
                best = total;
                best_state = Some((mask, u));
            }
        }
    }

    let (mut mask, mut u) = best_state?;
    let mut order = vec![0usize; n];
    for k in (0..n).rev() {
        order[k] = u;
        let p = parent[at(mask, u)];
        mask &= !(1 << u);
        if k > 0 {
            u = p as usize;
        }
    }
    let mapping = OneToOneMapping::new(order.into_iter().map(ProcId::new).collect(), m)
        .expect("DP assigns distinct processors");
    Some((mapping, best))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exhaustive::min_latency_one_to_one_brute;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rpwf_core::assert_approx_eq;
    use rpwf_core::metrics::one_to_one_latency;
    use rpwf_core::platform::{FailureClass, PlatformClass};
    use rpwf_gen::{PipelineGen, PlatformGen};

    #[test]
    fn matches_brute_force_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(2024);
        for trial in 0..15 {
            let n = 2 + (trial % 3);
            let m = n + (trial % 3);
            let pipe = PipelineGen::balanced(n).sample(&mut rng);
            let pf = PlatformGen::new(
                m,
                PlatformClass::FullyHeterogeneous,
                FailureClass::Heterogeneous,
            )
            .sample(&mut rng);
            let (hk_map, hk) = min_latency_one_to_one(&pipe, &pf).unwrap();
            let (_, brute) = min_latency_one_to_one_brute(&pipe, &pf).unwrap();
            assert_approx_eq!(hk, brute);
            assert_approx_eq!(one_to_one_latency(&hk_map, &pipe, &pf), hk);
        }
    }

    #[test]
    fn figure34_optimum() {
        let pipe = rpwf_gen::figure3_pipeline();
        let pf = rpwf_gen::figure4_platform();
        let (mapping, lat) = min_latency_one_to_one(&pipe, &pf).unwrap();
        assert_approx_eq!(lat, 7.0);
        assert_eq!(mapping.procs(), &[ProcId(0), ProcId(1)]);
    }

    #[test]
    fn too_few_processors_is_none() {
        let pipe = Pipeline::uniform(4, 1.0, 1.0).unwrap();
        let pf = Platform::fully_homogeneous(3, 1.0, 1.0, 0.0).unwrap();
        assert!(min_latency_one_to_one(&pipe, &pf).is_none());
    }

    #[test]
    fn single_stage_picks_best_io_processor() {
        use rpwf_core::platform::PlatformBuilder;
        let pipe = Pipeline::new(vec![2.0], vec![4.0, 4.0]).unwrap();
        let pf = PlatformBuilder::new(3)
            .speeds(vec![1.0, 1.0, 2.0])
            .unwrap()
            .input_bandwidth(ProcId(2), 4.0)
            .output_bandwidth(ProcId(2), 4.0)
            .build()
            .unwrap();
        let (mapping, lat) = min_latency_one_to_one(&pipe, &pf).unwrap();
        assert_eq!(mapping.procs(), &[ProcId(2)]);
        assert_approx_eq!(lat, 1.0 + 1.0 + 1.0);
    }
}
