//! Exhaustive (ground-truth) interval-mapping solver.
//!
//! Enumerates **every** interval mapping with replication: all `2^(n−1)`
//! partitions of the stages crossed with all assignments of pairwise
//! disjoint, non-empty processor sets to the intervals (each processor
//! either unused or assigned to exactly one interval — `(p+1)^m` counters
//! per `p`-interval partition). Exponential by design: this is the oracle
//! against which the polynomial algorithms, the DPs and the heuristics are
//! validated, and the engine behind the NP-hardness gadget experiments.
//!
//! The sweep is embarrassingly parallel over the assignment counter and runs
//! on crossbeam scoped threads ([`crate::par`]); mappings are only
//! materialized for candidates that survive Pareto filtering, so the hot
//! loop touches nothing but two `f64` accumulators per interval.

use crate::par::{default_threads, par_fold_cancellable};
use crate::solution::{BiSolution, Budgeted, Objective};
use rpwf_core::budget::Budget;
use rpwf_core::intervals::IntervalPartitions;
use rpwf_core::mapping::{Interval, IntervalMapping};
use rpwf_core::num::LogProb;
use rpwf_core::pareto::ParetoFront;
use rpwf_core::platform::{Platform, ProcId, Vertex};
use rpwf_core::stage::Pipeline;

/// Hard cap on the number of enumerated assignments per partition, as a
/// guard against accidentally passing a large instance to the oracle.
const MAX_CANDIDATES_PER_PARTITION: u64 = 2_000_000_000;

/// Exhaustive solver over all interval mappings with replication.
#[derive(Clone, Copy, Debug)]
pub struct Exhaustive<'a> {
    pipeline: &'a Pipeline,
    platform: &'a Platform,
    threads: Option<usize>,
}

/// A candidate surviving local Pareto filtering: the partition index and the
/// base-`(p+1)` allocation counter that reproduce the mapping.
#[derive(Clone, Copy, Debug)]
struct Encoded {
    partition: u32,
    counter: u64,
}

impl<'a> Exhaustive<'a> {
    /// Creates a solver for the given instance.
    #[must_use]
    pub fn new(pipeline: &'a Pipeline, platform: &'a Platform) -> Self {
        Exhaustive {
            pipeline,
            platform,
            threads: None,
        }
    }

    /// Overrides the worker-thread count (default: auto).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Total number of (partition, assignment) candidates that the full
    /// sweep will visit; use to budget experiments.
    #[must_use]
    pub fn candidate_count(&self) -> u128 {
        let n = self.pipeline.n_stages();
        let m = self.platform.n_procs() as u32;
        IntervalPartitions::new(n)
            .filter(|part| part.len() <= m as usize)
            .map(|part| (u128::from(part.len() as u32 + 1)).pow(m))
            .sum()
    }

    /// The exact Pareto front over all interval mappings.
    ///
    /// # Panics
    /// When a single partition would require more than
    /// `MAX_CANDIDATES_PER_PARTITION` assignment evaluations.
    #[must_use]
    pub fn pareto_front(&self) -> ParetoFront<IntervalMapping> {
        self.pareto_front_with_budget(&Budget::unlimited())
            .into_inner()
    }

    /// The Pareto front, stopping when `budget` expires. A
    /// [`Budgeted::Cutoff`] front contains only genuinely achievable
    /// points (every candidate evaluated before the cutoff), so it is a
    /// sound under-approximation of the true front.
    ///
    /// Partitions are visited in **expected-yield order** (descending
    /// work-span diversity, see [`partition_yield_order`]) rather than
    /// enumeration order, so a budget cutoff keeps the partitions that
    /// contribute the front's extremes and widest-spread points. The
    /// complete front is order-insensitive (Pareto merge is a union).
    ///
    /// # Panics
    /// When a single partition would require more than
    /// `MAX_CANDIDATES_PER_PARTITION` assignment evaluations.
    #[must_use]
    pub fn pareto_front_with_budget(
        &self,
        budget: &Budget,
    ) -> Budgeted<ParetoFront<IntervalMapping>> {
        use std::sync::atomic::{AtomicBool, Ordering};

        let n = self.pipeline.n_stages();
        let m = self.platform.n_procs();
        let mut encoded_front: ParetoFront<Encoded> = ParetoFront::new();
        let stop = AtomicBool::new(false);
        let limited = budget.is_limited();

        let partitions: Vec<Vec<Interval>> = IntervalPartitions::new(n).collect();
        let order = partition_yield_order(self.pipeline, &partitions);
        for pi in order {
            let partition = &partitions[pi];
            let p = partition.len();
            if p > m {
                continue;
            }
            if limited && budget.is_exhausted() {
                stop.store(true, Ordering::Relaxed);
                break;
            }
            let total = (p as u64 + 1).checked_pow(m as u32).unwrap_or(u64::MAX);
            assert!(
                total <= MAX_CANDIDATES_PER_PARTITION,
                "exhaustive search would enumerate {total} assignments; \
                 shrink the instance or use the DP/heuristic solvers"
            );
            let eval = CandidateEval::new(self.pipeline, self.platform, partition);
            let threads = self.threads.unwrap_or_else(|| default_threads(total));
            let local: ParetoFront<Encoded> = par_fold_cancellable(
                total,
                threads,
                &stop,
                || (ParetoFront::new(), EvalScratch::new(p, m)),
                |(mut front, mut scratch), counter| {
                    if limited && counter & 0xFFF == 0 && budget.is_exhausted() {
                        stop.store(true, Ordering::Relaxed);
                    }
                    if let Some((lat, fp)) = eval.evaluate(counter, &mut scratch) {
                        front.insert(
                            lat,
                            fp,
                            Encoded {
                                partition: pi as u32,
                                counter,
                            },
                        );
                    }
                    (front, scratch)
                },
                |(mut a, s), (b, _)| {
                    a.merge(b);
                    (a, s)
                },
            )
            .0;
            encoded_front.merge(local);
            if stop.load(Ordering::Relaxed) {
                break;
            }
        }

        // Materialize the surviving mappings.
        let mut out = ParetoFront::new();
        for pt in encoded_front.into_points() {
            let partition = &partitions[pt.payload.partition as usize];
            let mapping = decode_mapping(partition, pt.payload.counter, n, m);
            out.insert(pt.latency, pt.failure_prob, mapping);
        }
        if stop.load(Ordering::Relaxed) {
            Budgeted::Cutoff(out)
        } else {
            Budgeted::Complete(out)
        }
    }

    /// Solves one threshold problem exactly. `None` when infeasible.
    /// Thresholds carry the same tiny slack as [`Objective::feasible`].
    #[must_use]
    pub fn solve(&self, objective: Objective) -> Option<BiSolution> {
        self.solve_with_budget(objective, &Budget::unlimited())
            .into_inner()
    }

    /// Threshold solve under a budget; a [`Budgeted::Cutoff`] answer is
    /// feasible but possibly suboptimal (drawn from the partial front).
    #[must_use]
    pub fn solve_with_budget(
        &self,
        objective: Objective,
        budget: &Budget,
    ) -> Budgeted<Option<BiSolution>> {
        let front = self.pareto_front_with_budget(budget);
        let complete = front.is_complete();
        let front = front.into_inner();
        let cutoff = objective.threshold_with_slack();
        let point = match objective {
            Objective::MinFpUnderLatency(_) => front.min_fp_under_latency(cutoff),
            Objective::MinLatencyUnderFp(_) => front.min_latency_under_fp(cutoff),
        };
        let sol = point.map(|point| BiSolution {
            mapping: point.payload.clone(),
            latency: point.latency,
            failure_prob: point.failure_prob,
        });
        if complete {
            Budgeted::Complete(sol)
        } else {
            Budgeted::Cutoff(sol)
        }
    }

    /// Global latency minimum over interval mappings (with replication
    /// allowed, though the optimum never replicates).
    #[must_use]
    pub fn min_latency(&self) -> BiSolution {
        self.solve(Objective::MinLatencyUnderFp(1.0))
            .expect("FP ≤ 1 is always satisfiable")
    }

    /// Global failure-probability minimum (Theorem 1 cross-check).
    #[must_use]
    pub fn min_failure(&self) -> BiSolution {
        self.solve(Objective::MinFpUnderLatency(f64::INFINITY))
            .expect("L ≤ ∞ is always satisfiable")
    }
}

/// Reusable per-thread decoding buffers.
struct EvalScratch {
    /// Per interval: replica ids.
    alloc: Vec<Vec<u32>>,
}

impl EvalScratch {
    fn new(p: usize, m: usize) -> Self {
        EvalScratch {
            alloc: vec![Vec::with_capacity(m); p],
        }
    }
}

/// Precomputed per-partition data for the hot evaluation loop.
struct CandidateEval<'a> {
    platform: &'a Platform,
    /// Per interval: total work.
    works: Vec<f64>,
    /// Per interval: input data size `δ_{d_j−1}`.
    inputs: Vec<f64>,
    /// Per interval: output data size `δ_{e_j}`.
    outputs: Vec<f64>,
    p: usize,
    m: usize,
}

impl<'a> CandidateEval<'a> {
    fn new(pipeline: &'a Pipeline, platform: &'a Platform, partition: &[Interval]) -> Self {
        CandidateEval {
            platform,
            works: partition
                .iter()
                .map(|&iv| pipeline.interval_work(iv))
                .collect(),
            inputs: partition
                .iter()
                .map(|&iv| pipeline.interval_input(iv))
                .collect(),
            outputs: partition
                .iter()
                .map(|&iv| pipeline.interval_output(iv))
                .collect(),
            p: partition.len(),
            m: platform.n_procs(),
        }
    }

    /// Decodes `counter` (base `p+1` digits, one per processor; digit 0 =
    /// unused) and evaluates equation (2) latency and the failure
    /// probability. `None` when some interval receives no processor.
    fn evaluate(&self, counter: u64, scratch: &mut EvalScratch) -> Option<(f64, f64)> {
        let base = self.p as u64 + 1;
        for a in &mut scratch.alloc {
            a.clear();
        }
        let mut c = counter;
        for u in 0..self.m {
            let digit = (c % base) as usize;
            c /= base;
            if digit > 0 {
                scratch.alloc[digit - 1].push(u as u32);
            }
        }
        if scratch.alloc.iter().any(Vec::is_empty) {
            return None;
        }

        // Failure probability in log space.
        let mut ln_success = 0.0f64;
        for procs in &scratch.alloc {
            let all_fail = procs.iter().fold(LogProb::ONE, |acc, &u| {
                acc * LogProb::from_prob(self.platform.failure_prob(ProcId(u)))
            });
            ln_success += all_fail.one_minus().ln();
        }
        let fp = -(ln_success.exp_m1());

        // Equation (2) latency.
        let pf = self.platform;
        let mut lat = 0.0f64;
        for &u in &scratch.alloc[0] {
            lat += pf.comm_time(Vertex::In, Vertex::Proc(ProcId(u)), self.inputs[0]);
        }
        for j in 0..self.p {
            let mut worst = f64::NEG_INFINITY;
            for &u in &scratch.alloc[j] {
                let mut cost = self.works[j] / pf.speed(ProcId(u));
                if j + 1 < self.p {
                    for &v in &scratch.alloc[j + 1] {
                        cost += pf.comm_time(
                            Vertex::Proc(ProcId(u)),
                            Vertex::Proc(ProcId(v)),
                            self.outputs[j],
                        );
                    }
                } else {
                    cost += pf.comm_time(Vertex::Proc(ProcId(u)), Vertex::Out, self.outputs[j]);
                }
                if cost > worst {
                    worst = cost;
                }
            }
            lat += worst;
        }
        Some((lat, fp))
    }
}

/// Visit order for the budgeted sweep: indices into `partitions` sorted by
/// descending **work-span diversity** — primary key the widest interval
/// work (partitions whose intervals span the most work carry the extreme
/// points and are the cheapest to enumerate, `(p+1)^m` grows with `p`),
/// secondary key the spread `max − min` of interval works (imbalanced
/// partitions cover wider latency ranges than balanced ones), tie-broken
/// by enumeration index for determinism. Cutoff fronts under the same
/// budget dominate or match enumeration-order cutoffs in extreme coverage.
#[must_use]
pub fn partition_yield_order(pipeline: &Pipeline, partitions: &[Vec<Interval>]) -> Vec<usize> {
    let mut scored: Vec<(f64, f64, usize)> = partitions
        .iter()
        .enumerate()
        .map(|(pi, partition)| {
            let mut max = f64::NEG_INFINITY;
            let mut min = f64::INFINITY;
            for &iv in partition {
                let w = pipeline.interval_work(iv);
                max = max.max(w);
                min = min.min(w);
            }
            (max, max - min, pi)
        })
        .collect();
    scored.sort_by(|a, b| {
        b.0.total_cmp(&a.0)
            .then(b.1.total_cmp(&a.1))
            .then(a.2.cmp(&b.2))
    });
    scored.into_iter().map(|(_, _, pi)| pi).collect()
}

/// Rebuilds the [`IntervalMapping`] encoded by a partition + counter pair.
fn decode_mapping(partition: &[Interval], counter: u64, n: usize, m: usize) -> IntervalMapping {
    let p = partition.len();
    let base = p as u64 + 1;
    let mut alloc: Vec<Vec<ProcId>> = vec![Vec::new(); p];
    let mut c = counter;
    for u in 0..m {
        let digit = (c % base) as usize;
        c /= base;
        if digit > 0 {
            alloc[digit - 1].push(ProcId::new(u));
        }
    }
    IntervalMapping::new(partition.to_vec(), alloc, n, m)
        .expect("surviving candidates are valid mappings")
}

/// Brute-force minimum-latency **one-to-one** mapping (Theorem 3's NP-hard
/// problem) by enumerating injective assignments. Cross-check only
/// (`m! / (m−n)!` candidates).
#[must_use]
pub fn min_latency_one_to_one_brute(
    pipeline: &Pipeline,
    platform: &Platform,
) -> Option<(rpwf_core::mapping::OneToOneMapping, f64)> {
    use rpwf_core::mapping::OneToOneMapping;
    use rpwf_core::metrics::one_to_one_latency;
    let n = pipeline.n_stages();
    let m = platform.n_procs();
    if n > m {
        return None;
    }
    let mut best: Option<(OneToOneMapping, f64)> = None;
    let mut current: Vec<ProcId> = Vec::with_capacity(n);
    let mut used = vec![false; m];
    #[allow(clippy::too_many_arguments)] // recursive enumeration state
    fn rec(
        k: usize,
        n: usize,
        m: usize,
        current: &mut Vec<ProcId>,
        used: &mut Vec<bool>,
        pipeline: &Pipeline,
        platform: &Platform,
        best: &mut Option<(rpwf_core::mapping::OneToOneMapping, f64)>,
    ) {
        if k == n {
            let mapping =
                rpwf_core::mapping::OneToOneMapping::new(current.clone(), m).expect("distinct");
            let lat = rpwf_core::metrics::one_to_one_latency(&mapping, pipeline, platform);
            if best.as_ref().is_none_or(|(_, b)| lat < *b) {
                *best = Some((mapping, lat));
            }
            return;
        }
        for u in 0..m {
            if !used[u] {
                used[u] = true;
                current.push(ProcId::new(u));
                rec(k + 1, n, m, current, used, pipeline, platform, best);
                current.pop();
                used[u] = false;
            }
        }
    }
    rec(
        0,
        n,
        m,
        &mut current,
        &mut used,
        pipeline,
        platform,
        &mut best,
    );
    let _ = one_to_one_latency; // silence unused import path note in docs
    best
}

/// Brute-force minimum-latency **general** mapping (`m^n` candidates) for
/// validating Theorem 4's shortest-path solver on small instances.
#[must_use]
pub fn min_latency_general_brute(
    pipeline: &Pipeline,
    platform: &Platform,
) -> (rpwf_core::mapping::GeneralMapping, f64) {
    use rpwf_core::mapping::GeneralMapping;
    use rpwf_core::metrics::general_latency;
    let n = pipeline.n_stages();
    let m = platform.n_procs();
    let total = (m as u64)
        .checked_pow(n as u32)
        .expect("instance too large");
    let mut best_lat = f64::INFINITY;
    let mut best_counter = 0u64;
    for counter in 0..total {
        let mut c = counter;
        let procs: Vec<ProcId> = (0..n)
            .map(|_| {
                let u = (c % m as u64) as usize;
                c /= m as u64;
                ProcId::new(u)
            })
            .collect();
        let g = GeneralMapping::new(procs, m).expect("ids in range");
        let lat = general_latency(&g, pipeline, platform);
        if lat < best_lat {
            best_lat = lat;
            best_counter = counter;
        }
    }
    let mut c = best_counter;
    let procs: Vec<ProcId> = (0..n)
        .map(|_| {
            let u = (c % m as u64) as usize;
            c /= m as u64;
            ProcId::new(u)
        })
        .collect();
    (
        GeneralMapping::new(procs, m).expect("ids in range"),
        best_lat,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpwf_core::assert_approx_eq;
    use rpwf_core::metrics::{failure_probability, latency};

    fn p(i: u32) -> ProcId {
        ProcId(i)
    }

    #[test]
    fn candidate_count_small() {
        let pipe = Pipeline::uniform(2, 1.0, 1.0).unwrap();
        let pf = Platform::fully_homogeneous(2, 1.0, 1.0, 0.5).unwrap();
        // Partitions: [S1S2] (p=1): 2^2=4; [S1][S2] (p=2): 3^2=9 → 13.
        assert_eq!(Exhaustive::new(&pipe, &pf).candidate_count(), 13);
    }

    #[test]
    fn front_matches_naive_enumeration() {
        // Cross-validate the optimized sweep against a direct, slow
        // enumeration built from public APIs.
        let pipe = Pipeline::new(vec![3.0, 7.0, 2.0], vec![4.0, 2.0, 5.0, 1.0]).unwrap();
        let pf = Platform::comm_homogeneous(vec![1.0, 2.5, 4.0], 2.0, vec![0.5, 0.3, 0.7]).unwrap();
        let front = Exhaustive::new(&pipe, &pf).pareto_front();
        assert!(front.invariant_holds());

        let mut naive: ParetoFront<()> = ParetoFront::new();
        for partition in IntervalPartitions::new(3) {
            let pcount = partition.len();
            if pcount > 3 {
                continue;
            }
            let base = pcount as u64 + 1;
            for counter in 0..base.pow(3) {
                let mut alloc: Vec<Vec<ProcId>> = vec![Vec::new(); pcount];
                let mut c = counter;
                for u in 0..3 {
                    let d = (c % base) as usize;
                    c /= base;
                    if d > 0 {
                        alloc[d - 1].push(p(u));
                    }
                }
                if alloc.iter().any(Vec::is_empty) {
                    continue;
                }
                let m = IntervalMapping::new(partition.clone(), alloc, 3, 3).unwrap();
                naive.insert(latency(&m, &pipe, &pf), failure_probability(&m, &pf), ());
            }
        }
        assert_eq!(front.len(), naive.len());
        for (a, b) in front.iter().zip(naive.iter()) {
            assert_approx_eq!(a.latency, b.latency);
            assert_approx_eq!(a.failure_prob, b.failure_prob);
        }
    }

    #[test]
    fn parallel_and_serial_agree() {
        let pipe = Pipeline::new(vec![1.0, 5.0], vec![2.0, 3.0, 1.0]).unwrap();
        let pf =
            Platform::comm_homogeneous(vec![1.0, 2.0, 3.0, 4.0], 1.0, vec![0.2, 0.4, 0.6, 0.8])
                .unwrap();
        let serial = Exhaustive::new(&pipe, &pf).with_threads(1).pareto_front();
        let parallel = Exhaustive::new(&pipe, &pf).with_threads(4).pareto_front();
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(parallel.iter()) {
            assert_eq!(a.latency, b.latency);
            assert_eq!(a.failure_prob, b.failure_prob);
        }
    }

    #[test]
    fn figure5_exhaustive_finds_the_two_interval_optimum() {
        // Reduced Figure 5 (4 fast processors instead of 10 to keep the
        // oracle fast): the structure of the optimum is the same — slow
        // reliable processor alone on S1, all fast ones replicating S2.
        let pipe = Pipeline::new(vec![1.0, 100.0], vec![10.0, 1.0, 0.0]).unwrap();
        let mut speeds = vec![100.0; 5];
        speeds[0] = 1.0;
        let mut fps = vec![0.8; 5];
        fps[0] = 0.1;
        let pf = Platform::comm_homogeneous(speeds, 1.0, fps).unwrap();

        let sol = Exhaustive::new(&pipe, &pf)
            .solve(Objective::MinFpUnderLatency(16.0))
            .expect("feasible");
        // Best: S1 on P0; S2 on {P1..P4}: latency 10+1+4+1 = 16,
        // FP = 1 − 0.9·(1−0.8⁴).
        assert_eq!(sol.mapping.n_intervals(), 2);
        assert_eq!(sol.mapping.alloc(0), &[p(0)]);
        assert_eq!(sol.mapping.replication(1), 4);
        assert_approx_eq!(sol.latency, 16.0);
        assert_approx_eq!(sol.failure_prob, 1.0 - 0.9 * (1.0 - 0.8f64.powi(4)));
    }

    #[test]
    fn yield_order_puts_widest_work_first() {
        // Works 1, 10, 1: the single-interval partition spans all 12 units
        // of work and must come first; the balanced 3-way split (span 10,
        // spread 9) lands behind the partitions keeping S2 whole.
        let pipe = Pipeline::new(vec![1.0, 10.0, 1.0], vec![1.0, 1.0, 1.0, 1.0]).unwrap();
        let partitions: Vec<Vec<Interval>> = IntervalPartitions::new(3).collect();
        let order = partition_yield_order(&pipe, &partitions);
        assert_eq!(order.len(), partitions.len());
        assert_eq!(partitions[order[0]].len(), 1, "single interval first");
        let mut seen: Vec<usize> = order.clone();
        seen.sort_unstable();
        assert_eq!(
            seen,
            (0..partitions.len()).collect::<Vec<_>>(),
            "a permutation"
        );
        // Scores are non-increasing along the order.
        let score = |pi: usize| {
            let works: Vec<f64> = partitions[pi]
                .iter()
                .map(|&iv| pipe.interval_work(iv))
                .collect();
            let max = works.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
            let min = works.iter().fold(f64::INFINITY, |a, &b| a.min(b));
            (max, max - min)
        };
        for w in order.windows(2) {
            let (a, b) = (score(w[0]), score(w[1]));
            assert!(
                a.0 > b.0 || (a.0 == b.0 && a.1 >= b.1),
                "{a:?} before {b:?}"
            );
        }
    }

    #[test]
    fn budgeted_front_complete_matches_plain() {
        let pipe = Pipeline::new(vec![1.0, 5.0], vec![2.0, 3.0, 1.0]).unwrap();
        let pf = Platform::comm_homogeneous(vec![1.0, 2.0, 3.0], 1.0, vec![0.2, 0.4, 0.6]).unwrap();
        let plain = Exhaustive::new(&pipe, &pf).pareto_front();
        let budgeted = Exhaustive::new(&pipe, &pf).pareto_front_with_budget(&Budget::unlimited());
        assert!(budgeted.is_complete());
        assert_eq!(budgeted.inner().len(), plain.len());
    }

    #[test]
    fn expired_budget_reports_cutoff() {
        let pipe = Pipeline::uniform(4, 1.0, 1.0).unwrap();
        let pf = Platform::fully_homogeneous(6, 1.0, 1.0, 0.5).unwrap();
        let budget = Budget::with_deadline(std::time::Duration::ZERO);
        let outcome = Exhaustive::new(&pipe, &pf).pareto_front_with_budget(&budget);
        assert!(!outcome.is_complete());
        // Whatever made it onto the cutoff front must still be genuinely
        // achievable (valid mappings with correct metric values).
        for pt in outcome.inner().iter() {
            let re_lat = latency(&pt.payload, &pipe, &pf);
            assert_approx_eq!(re_lat, pt.latency);
        }
    }

    #[test]
    fn solve_infeasible_returns_none() {
        let pipe = Pipeline::uniform(2, 10.0, 10.0).unwrap();
        let pf = Platform::fully_homogeneous(2, 1.0, 1.0, 0.5).unwrap();
        assert!(Exhaustive::new(&pipe, &pf)
            .solve(Objective::MinFpUnderLatency(0.1))
            .is_none());
        assert!(Exhaustive::new(&pipe, &pf)
            .solve(Objective::MinLatencyUnderFp(0.1))
            .is_none());
    }

    #[test]
    fn min_latency_and_min_failure_extremes() {
        let pipe = Pipeline::uniform(2, 4.0, 2.0).unwrap();
        let pf = Platform::comm_homogeneous(vec![2.0, 1.0], 1.0, vec![0.3, 0.4]).unwrap();
        let ex = Exhaustive::new(&pipe, &pf);
        let fastest = ex.min_latency();
        // Thm 2: single interval, fastest processor: 2 + 8/2 + 2 = 8.
        assert_approx_eq!(fastest.latency, 8.0);
        let safest = ex.min_failure();
        // Thm 1: replicate on both: FP = 0.12.
        assert_approx_eq!(safest.failure_prob, 0.12);
    }

    #[test]
    fn one_to_one_brute_force_small() {
        let pipe = Pipeline::new(vec![2.0, 2.0], vec![100.0, 100.0, 100.0]).unwrap();
        let pf = rpwf_gen::figure4_platform();
        let (mapping, lat) = min_latency_one_to_one_brute(&pipe, &pf).unwrap();
        assert_approx_eq!(lat, 7.0);
        assert_eq!(mapping.procs(), &[p(0), p(1)]);
    }

    #[test]
    fn one_to_one_brute_none_when_too_few_procs() {
        let pipe = Pipeline::uniform(3, 1.0, 1.0).unwrap();
        let pf = Platform::fully_homogeneous(2, 1.0, 1.0, 0.0).unwrap();
        assert!(min_latency_one_to_one_brute(&pipe, &pf).is_none());
    }

    #[test]
    fn general_brute_matches_interval_when_reuse_useless() {
        let pipe = Pipeline::new(vec![2.0, 2.0], vec![100.0, 100.0, 100.0]).unwrap();
        let pf = rpwf_gen::figure4_platform();
        let (_, lat) = min_latency_general_brute(&pipe, &pf);
        assert_approx_eq!(lat, 7.0);
    }
}
