//! Exact solvers: the ground truth the polynomial algorithms and heuristics
//! are validated against.
//!
//! * [`exhaustive`] — full enumeration of interval mappings with
//!   replication (the oracle; parallelized, `n, m ≲ 6`),
//! * [`branch_bound`] — exact threshold solver for Fully Heterogeneous
//!   bi-criteria instances with heuristic-seeded pruning (`m ≲ 10–12`),
//! * [`bitmask_dp`] — exact Pareto fronts on Communication Homogeneous
//!   platforms in `O(n²·3^m)` (`m ≲ 14`),
//! * [`held_karp`] — exact one-to-one latency on Fully Heterogeneous
//!   platforms (Theorem 3's NP-hard problem, `m ≲ 18`),
//! * [`interval_dp`] — exact interval latency on Fully Heterogeneous
//!   platforms (the open problem of §4.1, `m ≲ 16`).

pub mod bitmask_dp;
pub mod branch_bound;
pub mod exhaustive;
pub mod held_karp;
pub mod interval_dp;

pub use bitmask_dp::{
    pareto_front_comm_homog, pareto_front_comm_homog_with_budget, solve_comm_homog,
    solve_comm_homog_with_budget,
};
pub use branch_bound::{BranchBound, SearchStats, WorkerStat};
pub use exhaustive::{
    min_latency_general_brute, min_latency_one_to_one_brute, partition_yield_order, Exhaustive,
};
pub use held_karp::min_latency_one_to_one;
pub use interval_dp::{min_latency_interval, min_latency_interval_with_budget};
