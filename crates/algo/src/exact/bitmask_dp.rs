//! Exact bi-criteria Pareto fronts on Communication Homogeneous platforms
//! via dynamic programming over (stage boundary × used-processor mask).
//!
//! On comm-homogeneous platforms the equation-(1) latency is a sum of
//! **interval-local** terms (`k_j·δ_{d_j−1}/b + W_j/min s`), and the failure
//! probability multiplies interval-local survival terms. The only coupling
//! between intervals is processor disjointness — captured exactly by a
//! bitmask of used processors. The DP therefore computes, for every state
//! `(next stage i, used mask)`, the Pareto set of
//! `(latency so far, −ln success so far)` pairs; the union over final states
//! is the exact bi-objective front.
//!
//! This scales to `m ≈ 12–14` processors (vs `m ≈ 6` for the brute-force
//! oracle) and is the ground truth used to evaluate heuristics on the
//! problem the paper leaves open — Communication Homogeneous with
//! heterogeneous failures (§4.4, conjectured NP-hard).
//!
//! Complexity: `O(n² · 3^m)` transitions (submask enumeration), each O(1)
//! thanks to precomputed per-subset tables.

use crate::solution::{BiSolution, Budgeted, Objective};
use rpwf_core::budget::Budget;
use rpwf_core::error::{CoreError, Result};
use rpwf_core::eval::EvalContext;
use rpwf_core::mapping::{Interval, IntervalMapping};
use rpwf_core::num::LogProb;
use rpwf_core::pareto::ParetoFront;
use rpwf_core::platform::{Platform, ProcId};
use rpwf_core::stage::Pipeline;

/// Sanity cap: `2^m` state axis.
const MAX_PROCS: usize = 20;

/// Compact partial solution: per interval, `(end stage, replica mask)`.
type PartialAlloc = Vec<(u8, u32)>;

/// Exact Pareto front over all interval mappings, by bitmask DP.
///
/// # Errors
/// [`CoreError::NotCommHomogeneous`] on heterogeneous links.
///
/// # Panics
/// When `m > 20` (state space `2^m` would be excessive).
pub fn pareto_front_comm_homog(
    pipeline: &Pipeline,
    platform: &Platform,
) -> Result<ParetoFront<IntervalMapping>> {
    Ok(pareto_front_comm_homog_with_budget(pipeline, platform, &Budget::unlimited())?.into_inner())
}

/// Budgeted variant of [`pareto_front_comm_homog`]. The budget is polled
/// once per DP cell; on exhaustion the final states reached so far are
/// collected, so a [`Budgeted::Cutoff`] front is a sound
/// under-approximation (every point is a real, complete mapping).
///
/// # Errors
/// [`CoreError::NotCommHomogeneous`] on heterogeneous links.
///
/// # Panics
/// When `m > 20` (state space `2^m` would be excessive).
pub fn pareto_front_comm_homog_with_budget(
    pipeline: &Pipeline,
    platform: &Platform,
    budget: &Budget,
) -> Result<Budgeted<ParetoFront<IntervalMapping>>> {
    let b = platform
        .uniform_bandwidth()
        .ok_or(CoreError::NotCommHomogeneous)?;
    let n = pipeline.n_stages();
    let m = platform.n_procs();
    assert!(
        m <= MAX_PROCS,
        "bitmask DP supports at most {MAX_PROCS} processors"
    );
    let full: u32 = if m == 32 { u32::MAX } else { (1u32 << m) - 1 };

    // Per-subset tables: min speed, Σ ln fp, −ln(1 − Π fp). Both fold
    // tables share the lowest-bit recurrence, so building them is O(2^m)
    // rather than O(2^m · m); the per-processor `ln fp_u` terms come
    // cached from the shared evaluation context.
    let ctx = EvalContext::new(pipeline, platform);
    let n_subsets = 1usize << m;
    let mut min_speed = vec![f64::INFINITY; n_subsets];
    let mut ln_all_fail = vec![0.0f64; n_subsets];
    let mut fp_cost = vec![0.0f64; n_subsets];
    for mask in 1u32..(n_subsets as u32) {
        let low = mask.trailing_zeros() as usize;
        let rest = mask & (mask - 1);
        let s_low = platform.speed(ProcId::new(low));
        min_speed[mask as usize] = if rest == 0 {
            s_low
        } else {
            min_speed[rest as usize].min(s_low)
        };
        ln_all_fail[mask as usize] = ln_all_fail[rest as usize] + ctx.ln_failure(ProcId::new(low));
        fp_cost[mask as usize] = -LogProb::from_ln(ln_all_fail[mask as usize])
            .one_minus()
            .ln();
    }

    // states[i][mask] = Pareto front of (lat, fp_cost) with the partial
    // allocation as payload. Laid out as a flat vector.
    let idx = |i: usize, mask: u32| -> usize { i * n_subsets + mask as usize };
    let mut states: Vec<ParetoFront<PartialAlloc>> = (0..(n + 1) * n_subsets)
        .map(|_| ParetoFront::new())
        .collect();
    states[idx(0, 0)].insert(0.0, 0.0, Vec::new());

    let limited = budget.is_limited();
    let mut aborted = false;
    let mut cells = 0u64;
    'dp: for i in 0..n {
        for mask in 0..(n_subsets as u32) {
            cells += 1;
            if limited && cells & 0x3F == 0 && budget.is_exhausted() {
                aborted = true;
                break 'dp;
            }
            if states[idx(i, mask)].is_empty() {
                continue;
            }
            // Snapshot the source front (transitions write other cells).
            let source = std::mem::take(&mut states[idx(i, mask)]);
            let free = full & !mask;
            for e in i..n {
                let work: f64 = pipeline.work_sum(i, e);
                let input = pipeline.delta(i);
                // Enumerate non-empty submasks of `free`.
                let mut sub = free;
                while sub != 0 {
                    let k = sub.count_ones() as f64;
                    let lat_step = k * input / b + work / min_speed[sub as usize];
                    let fp_step = fp_cost[sub as usize];
                    let target = idx(e + 1, mask | sub);
                    for pt in source.iter() {
                        let mut alloc = pt.payload.clone();
                        alloc.push((e as u8, sub));
                        states[target].insert(
                            pt.latency + lat_step,
                            pt.failure_prob + fp_step,
                            alloc,
                        );
                    }
                    sub = (sub - 1) & free;
                }
            }
            // Keep the source front: final states at i == n are collected
            // below, and other code may query intermediate fronts later.
            states[idx(i, mask)] = source;
        }
    }

    // Collect final states; add the closing δn/b and convert fp_cost → FP.
    let out_comm = pipeline.output_size() / b;
    let mut front: ParetoFront<IntervalMapping> = ParetoFront::new();
    for mask in 0..(n_subsets as u32) {
        for pt in states[idx(n, mask)].iter() {
            let latency = pt.latency + out_comm;
            let fp = -(-pt.failure_prob).exp_m1();
            let mapping = decode(&pt.payload, n, m);
            front.insert(latency, fp, mapping);
        }
    }
    Ok(if aborted {
        Budgeted::Cutoff(front)
    } else {
        Budgeted::Complete(front)
    })
}

/// Threshold query on the DP front.
///
/// # Errors
/// Propagates [`pareto_front_comm_homog`].
pub fn solve_comm_homog(
    pipeline: &Pipeline,
    platform: &Platform,
    objective: Objective,
) -> Result<Option<BiSolution>> {
    Ok(
        solve_comm_homog_with_budget(pipeline, platform, objective, &Budget::unlimited())?
            .into_inner(),
    )
}

/// Budgeted threshold query; a [`Budgeted::Cutoff`] answer is feasible
/// but possibly suboptimal (drawn from the partial DP front).
///
/// # Errors
/// Propagates [`pareto_front_comm_homog_with_budget`].
pub fn solve_comm_homog_with_budget(
    pipeline: &Pipeline,
    platform: &Platform,
    objective: Objective,
    budget: &Budget,
) -> Result<Budgeted<Option<BiSolution>>> {
    let outcome = pareto_front_comm_homog_with_budget(pipeline, platform, budget)?;
    let complete = outcome.is_complete();
    let front = outcome.into_inner();
    let cutoff = objective.threshold_with_slack();
    let point = match objective {
        Objective::MinFpUnderLatency(_) => front.min_fp_under_latency(cutoff),
        Objective::MinLatencyUnderFp(_) => front.min_latency_under_fp(cutoff),
    };
    let sol = point.map(|pt| BiSolution {
        mapping: pt.payload.clone(),
        latency: pt.latency,
        failure_prob: pt.failure_prob,
    });
    Ok(if complete {
        Budgeted::Complete(sol)
    } else {
        Budgeted::Cutoff(sol)
    })
}

fn decode(alloc: &PartialAlloc, n: usize, m: usize) -> IntervalMapping {
    let mut intervals = Vec::with_capacity(alloc.len());
    let mut procs = Vec::with_capacity(alloc.len());
    let mut start = 0usize;
    for &(end, mask) in alloc {
        intervals.push(Interval::new(start, end as usize).expect("ordered"));
        let mut ids = Vec::with_capacity(mask.count_ones() as usize);
        let mut mm = mask;
        while mm != 0 {
            ids.push(ProcId::new(mm.trailing_zeros() as usize));
            mm &= mm - 1;
        }
        procs.push(ids);
        start = end as usize + 1;
    }
    IntervalMapping::new(intervals, procs, n, m).expect("DP produces valid mappings")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exhaustive::Exhaustive;
    use rpwf_core::assert_approx_eq;

    #[test]
    fn dp_front_matches_exhaustive_oracle() {
        let pipe = Pipeline::new(vec![3.0, 7.0, 2.0], vec![4.0, 2.0, 5.0, 1.0]).unwrap();
        let pf = Platform::comm_homogeneous(vec![1.0, 2.5, 4.0], 2.0, vec![0.5, 0.3, 0.7]).unwrap();
        let dp = pareto_front_comm_homog(&pipe, &pf).unwrap();
        let oracle = Exhaustive::new(&pipe, &pf).pareto_front();
        assert_eq!(dp.len(), oracle.len());
        for (a, b) in dp.iter().zip(oracle.iter()) {
            assert_approx_eq!(a.latency, b.latency);
            assert_approx_eq!(a.failure_prob, b.failure_prob);
        }
    }

    #[test]
    fn dp_front_matches_oracle_failure_homogeneous() {
        let pipe = Pipeline::new(vec![1.0, 9.0], vec![3.0, 3.0, 3.0]).unwrap();
        let pf = Platform::fully_homogeneous(4, 2.0, 1.5, 0.4).unwrap();
        let dp = pareto_front_comm_homog(&pipe, &pf).unwrap();
        let oracle = Exhaustive::new(&pipe, &pf).pareto_front();
        assert_eq!(dp.len(), oracle.len());
        for (a, b) in dp.iter().zip(oracle.iter()) {
            assert_approx_eq!(a.latency, b.latency);
            assert_approx_eq!(a.failure_prob, b.failure_prob);
        }
    }

    #[test]
    fn figure5_dp_finds_paper_optimum() {
        // Full Figure 5 (m = 11): the DP handles what the brute-force oracle
        // cannot.
        let pipe = rpwf_gen::figure5_pipeline();
        let pf = rpwf_gen::figure5_platform();
        let sol = solve_comm_homog(&pipe, &pf, Objective::MinFpUnderLatency(22.0))
            .unwrap()
            .expect("feasible at L = 22");
        assert_approx_eq!(sol.latency, 22.0);
        let expected_fp = 1.0 - 0.9 * (1.0 - 0.8f64.powi(10));
        assert_approx_eq!(sol.failure_prob, expected_fp);
        assert!(sol.failure_prob < 0.2, "paper: FP < 0.2");
        // And the best single interval at the same threshold is 0.64 —
        // strictly worse.
        assert_eq!(sol.mapping.n_intervals(), 2);
    }

    #[test]
    fn budgeted_complete_matches_plain() {
        let pipe = rpwf_gen::figure5_pipeline();
        let pf = rpwf_gen::figure5_platform();
        let objective = Objective::MinFpUnderLatency(22.0);
        let plain = solve_comm_homog(&pipe, &pf, objective).unwrap();
        let budgeted = solve_comm_homog_with_budget(
            &pipe,
            &pf,
            objective,
            &rpwf_core::budget::Budget::unlimited(),
        )
        .unwrap();
        assert!(budgeted.is_complete());
        assert_eq!(budgeted.into_inner(), plain);
    }

    #[test]
    fn expired_budget_reports_cutoff_with_sound_points() {
        let pipe = rpwf_gen::figure5_pipeline();
        let pf = rpwf_gen::figure5_platform();
        let budget = rpwf_core::budget::Budget::with_deadline(std::time::Duration::ZERO);
        let outcome = pareto_front_comm_homog_with_budget(&pipe, &pf, &budget).unwrap();
        assert!(!outcome.is_complete());
        for pt in outcome.inner().iter() {
            let re = crate::solution::BiSolution::evaluate(pt.payload.clone(), &pipe, &pf);
            assert_approx_eq!(re.latency, pt.latency);
            assert_approx_eq!(re.failure_prob, pt.failure_prob);
        }
    }

    #[test]
    fn rejects_heterogeneous_links() {
        let pipe = Pipeline::uniform(2, 1.0, 1.0).unwrap();
        let pf = rpwf_gen::figure4_platform();
        assert_eq!(
            pareto_front_comm_homog(&pipe, &pf).unwrap_err(),
            CoreError::NotCommHomogeneous
        );
    }

    #[test]
    fn infeasible_thresholds_return_none() {
        let pipe = Pipeline::uniform(2, 100.0, 100.0).unwrap();
        let pf = Platform::fully_homogeneous(2, 1.0, 1.0, 0.9).unwrap();
        assert!(
            solve_comm_homog(&pipe, &pf, Objective::MinFpUnderLatency(1.0))
                .unwrap()
                .is_none()
        );
        assert!(
            solve_comm_homog(&pipe, &pf, Objective::MinLatencyUnderFp(0.5))
                .unwrap()
                .is_none()
        );
    }

    #[test]
    fn front_extremes_match_theorems_1_and_2() {
        let pipe = Pipeline::new(vec![2.0, 6.0], vec![1.0, 2.0, 1.0]).unwrap();
        let pf = Platform::comm_homogeneous(vec![4.0, 2.0, 1.0], 1.0, vec![0.2, 0.5, 0.6]).unwrap();
        let front = pareto_front_comm_homog(&pipe, &pf).unwrap();
        // Leftmost point = Theorem 2 optimum (fastest single processor).
        let fastest = front.points().first().unwrap();
        assert_approx_eq!(fastest.latency, 1.0 + 8.0 / 4.0 + 1.0);
        // Rightmost-FP point = Theorem 1 optimum (replicate all).
        let safest = front.points().last().unwrap();
        assert_approx_eq!(safest.failure_prob, 0.2 * 0.5 * 0.6);
    }
}
