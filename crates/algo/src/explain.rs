//! Infeasibility explanations: MUS/MCS enumeration and nearest-feasible
//! what-if answers.
//!
//! An infeasible threshold query (no mapping meets the latency or
//! reliability bound) has a *reason* and a *nearest escape*. This module
//! extracts both over a small **constraint universe** describing the
//! query:
//!
//! | bit | constraint | relaxation semantics |
//! |---|---|---|
//! | 0 | [`Constraint::Bound`] — the objective's threshold | dropped: any mapping qualifies |
//! | 1 | [`Constraint::SpeedLimit`] — processor speeds as given | relaxed: every processor runs at the platform's maximum speed |
//! | 2 | [`Constraint::LinkLimit`] — link bandwidths as given | relaxed: every link runs at the platform's maximum bandwidth |
//! | 3 | [`Constraint::PlatformSize`] — `m` processors | relaxed: the processor set is doubled (each original gains a mirror) |
//!
//! A subset of the universe (a bitmask) is *satisfiable* when the
//! platform relaxed on the **cleared** bits admits a mapping that meets
//! the bound (or the bound bit itself is cleared — some mapping always
//! exists, so bound-free subsets are trivially satisfiable with zero
//! solver work). Relaxations are **monotone**: they only ever add
//! mappings, so satisfiability is monotone over subsets and the
//! MUS/MCS machinery below applies.
//!
//! [`marco`] runs a MARCO-style enumeration (Liffiton et al.; the
//! pattern aries uses for its MUS/MCS streams) over the 16-element
//! powerset: a map solver picks an unexplored seed, one satisfiability
//! probe decides its fate, and the seed is then *shrunk* to a **minimal
//! unsatisfiable subset** (MUS — drop any member and it becomes
//! satisfiable) or *grown* to a maximal satisfiable subset whose
//! complement is a **minimal correction set** (MCS — relax all of its
//! members and the query becomes feasible). The sat oracle is a Pareto
//! front read — [`Engine`] front solves via
//! [`EngineOracle`], or a caller-provided [`FrontOracle`] that can serve
//! cached fronts — so no new solver is written. Fronts are memoized per
//! platform variant and bound-free subsets short-circuit, so a full
//! enumeration costs at most 8 oracle calls, strictly below the
//! 16-subset powerset.
//!
//! [`relaxation`] answers the what-if: the adjacent staircase point just
//! past the infeasible bound on the front the failed solve already built
//! ("feasible at latency ≥ X" / "feasible at failure ≤ Y") — one
//! [`nearest_above`](ParetoFront::nearest_above) /
//! [`nearest_below`](ParetoFront::nearest_below) read per axis.
//!
//! **Completeness contract:** a satisfiable verdict is always proven (the
//! front holds a real mapping), but an *unsatisfiable* verdict read off a
//! budget-cutoff or heuristic front is best-effort. Any such verdict
//! clears [`Explanation::proven`]; consumers must then present MUSes as
//! candidates, never as proven-minimal conflicts.

use crate::engine::{Engine, SolveRequest, SolverStat, Want};
use crate::exact::SearchStats;
use crate::front::threshold_read;
use crate::solution::Objective;
use rpwf_core::budget::Budget;
use rpwf_core::mapping::IntervalMapping;
use rpwf_core::pareto::ParetoFront;
use rpwf_core::platform::{Platform, PlatformBuilder, ProcId, Vertex};
use rpwf_core::stage::Pipeline;
use std::sync::Arc;

/// The full constraint universe as a bitmask.
pub const FULL_MASK: u8 = 0b1111;

/// Number of constraints in the universe.
pub const UNIVERSE_SIZE: usize = 4;

// ---------------------------------------------------------------------------
// Constraint universe
// ---------------------------------------------------------------------------

/// One constraint in the explanation universe. The enum discriminant is
/// the constraint's bit position in subset masks and its index in
/// [`universe`] — both stable, so wire payloads can reference
/// constraints by index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Constraint {
    /// The objective's threshold (latency bound or reliability bound).
    Bound = 0,
    /// Processor speeds as given (relaxed: all run at the maximum speed).
    SpeedLimit = 1,
    /// Link bandwidths as given (relaxed: all links at the maximum
    /// bandwidth, which also makes the platform comm-homogeneous).
    LinkLimit = 2,
    /// The processor count `m` (relaxed: the processor set is doubled).
    PlatformSize = 3,
}

impl Constraint {
    /// Every constraint, in bit order.
    pub const ALL: [Constraint; UNIVERSE_SIZE] = [
        Constraint::Bound,
        Constraint::SpeedLimit,
        Constraint::LinkLimit,
        Constraint::PlatformSize,
    ];

    /// The constraint's bit in subset masks.
    #[must_use]
    pub fn bit(self) -> u8 {
        1 << (self as u8)
    }

    /// Stable lowercase label (wire payloads and CLI rendering).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Constraint::Bound => "bound",
            Constraint::SpeedLimit => "speed-limit",
            Constraint::LinkLimit => "link-limit",
            Constraint::PlatformSize => "platform-size",
        }
    }
}

/// A constraint of the universe rendered against one concrete query:
/// the stable label plus a human-readable instantiation.
#[derive(Clone, Debug, PartialEq)]
pub struct ConstraintInfo {
    /// Which constraint.
    pub constraint: Constraint,
    /// Stable lowercase label ([`Constraint::label`]).
    pub label: &'static str,
    /// The constraint instantiated on this query, e.g. `latency <= 1`.
    pub detail: String,
}

/// The constraint universe for one query, indexed by constraint bit.
#[must_use]
pub fn universe(objective: Objective, platform: &Platform) -> Vec<ConstraintInfo> {
    let bound = match objective {
        Objective::MinFpUnderLatency(l) => format!("latency <= {l}"),
        Objective::MinLatencyUnderFp(f) => format!("failure probability <= {f}"),
    };
    let max_speed = max_speed(platform);
    let max_bw = max_finite_bandwidth(platform);
    let m = platform.n_procs();
    Constraint::ALL
        .iter()
        .map(|&constraint| {
            let detail = match constraint {
                Constraint::Bound => bound.clone(),
                Constraint::SpeedLimit => {
                    format!("processor speeds as given (max {max_speed})")
                }
                Constraint::LinkLimit => {
                    format!("link bandwidths as given (max {max_bw})")
                }
                Constraint::PlatformSize => format!("{m} processors"),
            };
            ConstraintInfo {
                constraint,
                label: constraint.label(),
                detail,
            }
        })
        .collect()
}

fn max_speed(platform: &Platform) -> f64 {
    platform
        .speeds()
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max)
}

/// The largest finite bandwidth anywhere in the communication graph
/// (diagonal entries are +∞ and excluded). Falls back to 1 on the
/// degenerate all-infinite platform.
fn max_finite_bandwidth(platform: &Platform) -> f64 {
    let verts = all_vertices(platform.n_procs());
    let mut best = f64::NEG_INFINITY;
    for (i, &a) in verts.iter().enumerate() {
        for &b in &verts[i + 1..] {
            let bw = platform.bandwidth(a, b);
            if bw.is_finite() {
                best = best.max(bw);
            }
        }
    }
    if best.is_finite() {
        best
    } else {
        1.0
    }
}

fn all_vertices(m: usize) -> Vec<Vertex> {
    let mut verts = Vec::with_capacity(m + 2);
    verts.push(Vertex::In);
    verts.push(Vertex::Out);
    verts.extend((0..m).map(|i| Vertex::Proc(ProcId::new(i))));
    verts
}

/// `platform` with every platform constraint whose bit is **cleared** in
/// `mask` relaxed (the bound bit is ignored — it lives in the threshold
/// read, not the platform). Relaxations are monotone: every mapping
/// valid on the base platform stays valid, with no worse latency or
/// reliability, on the relaxed one.
///
/// - [`Constraint::SpeedLimit`] cleared: all speeds become the
///   platform's maximum speed.
/// - [`Constraint::LinkLimit`] cleared: all links get the platform's
///   maximum finite bandwidth (making it comm-homogeneous, which also
///   widens the set of applicable exact backends).
/// - [`Constraint::PlatformSize`] cleared: the processor set is doubled;
///   mirror processor `m + i` copies processor `i`'s speed, failure
///   probability and links (mirror↔original links get the maximum
///   bandwidth). Original mappings use only processors `0 … m−1` and are
///   untouched.
#[must_use]
pub fn relaxed_platform(base: &Platform, mask: u8) -> Platform {
    let keep_speed = mask & Constraint::SpeedLimit.bit() != 0;
    let keep_link = mask & Constraint::LinkLimit.bit() != 0;
    let keep_size = mask & Constraint::PlatformSize.bit() != 0;
    if keep_speed && keep_link && keep_size {
        return base.clone();
    }
    let m = base.n_procs();
    let procs = if keep_size { m } else { m * 2 };
    let top_speed = max_speed(base);
    let speeds: Vec<f64> = (0..procs)
        .map(|i| {
            if keep_speed {
                base.speed(ProcId::new(i % m))
            } else {
                top_speed
            }
        })
        .collect();
    let fps: Vec<f64> = (0..procs)
        .map(|i| base.failure_prob(ProcId::new(i % m)))
        .collect();
    let mut builder = PlatformBuilder::new(procs)
        .speeds(speeds)
        .expect("length matches processor count")
        .failure_probs(fps)
        .expect("length matches processor count");
    let max_bw = max_finite_bandwidth(base);
    if keep_link {
        let verts = all_vertices(procs);
        for (i, &a) in verts.iter().enumerate() {
            for &b in &verts[i + 1..] {
                let (oa, ob) = (original_vertex(a, m), original_vertex(b, m));
                // A mirror and its original collapse onto the (infinite)
                // diagonal; give that link the best real bandwidth instead.
                let bw = if oa == ob {
                    max_bw
                } else {
                    base.bandwidth(oa, ob)
                };
                builder = builder.bandwidth(a, b, bw);
            }
        }
    } else {
        builder = builder.bandwidth_uniform(max_bw);
    }
    builder.build().expect("relaxed platform stays valid")
}

fn original_vertex(v: Vertex, m: usize) -> Vertex {
    match v {
        Vertex::Proc(p) if p.index() >= m => Vertex::Proc(ProcId::new(p.index() - m)),
        other => other,
    }
}

// ---------------------------------------------------------------------------
// The sat oracle
// ---------------------------------------------------------------------------

/// A Pareto front produced by a [`FrontOracle`], with the provenance the
/// completeness contract needs.
#[derive(Clone, Debug)]
pub struct OracleFront {
    /// The front (a sound under-approximation when incomplete).
    pub front: Arc<ParetoFront<IntervalMapping>>,
    /// Whether the front is proven exact — only then does a missing
    /// point prove infeasibility.
    pub complete: bool,
    /// Whether the front was served from a cache rather than solved
    /// (metrics only; never part of the explanation payload, which must
    /// be byte-identical warm or cold).
    pub cached: bool,
}

/// The satisfiability oracle behind [`marco`]: a whole Pareto front per
/// `(pipeline, platform)` pair, so one build answers every subset that
/// shares the platform variant. `variant` is the mask's platform bits
/// (`mask >> 1`, `0 … 7`) — a stable tag implementations may use for
/// labeling; the platform passed in is already relaxed.
pub trait FrontOracle {
    /// The (possibly cached, possibly incomplete) front for the pair.
    fn front(&mut self, pipeline: &Pipeline, platform: &Platform, variant: u8) -> OracleFront;
}

/// The default oracle: every front is an [`Engine`] front solve under
/// the caller's budget. Accumulates the per-backend stats of every solve
/// it runs so the engine's `Explain` plan can report them.
pub struct EngineOracle<'a> {
    engine: &'a Engine,
    budget: &'a Budget,
    stats: Vec<SolverStat>,
    parallel: Vec<(&'static str, SearchStats)>,
    heuristic_complete: bool,
}

impl<'a> EngineOracle<'a> {
    /// An oracle solving through `engine` under `budget`.
    #[must_use]
    pub fn new(engine: &'a Engine, budget: &'a Budget) -> Self {
        EngineOracle {
            engine,
            budget,
            stats: Vec::new(),
            parallel: Vec::new(),
            heuristic_complete: true,
        }
    }

    /// The accumulated per-backend stats, parallel-search telemetry, and
    /// whether every heuristic the oracle's solves ran finished.
    #[must_use]
    pub fn into_parts(self) -> (Vec<SolverStat>, Vec<(&'static str, SearchStats)>, bool) {
        (self.stats, self.parallel, self.heuristic_complete)
    }
}

impl FrontOracle for EngineOracle<'_> {
    fn front(&mut self, pipeline: &Pipeline, platform: &Platform, _variant: u8) -> OracleFront {
        let report = self.engine.solve(&SolveRequest {
            pipeline,
            platform,
            want: Want::Front,
            budget: self.budget,
        });
        self.heuristic_complete &= report.completeness.heuristic_complete;
        let complete = report.completeness.exact_complete;
        let front = report
            .front_answer()
            .cloned()
            .unwrap_or_else(|| Arc::new(ParetoFront::new()));
        self.stats.extend(report.stats);
        self.parallel.extend(report.parallel.clone());
        OracleFront {
            front,
            complete,
            cached: false,
        }
    }
}

// ---------------------------------------------------------------------------
// MARCO enumeration
// ---------------------------------------------------------------------------

/// Everything [`marco`] found: full MUS/MCS enumerations, the base
/// (unrelaxed) front for the relaxation read, and the proof/effort
/// record.
#[derive(Clone, Debug)]
pub struct MarcoOutcome {
    /// Whether the full universe is satisfiable (the query is feasible).
    /// When `true` the MUS/MCS lists are empty.
    pub feasible: bool,
    /// Every minimal unsatisfiable subset, as sorted masks. Each one
    /// always contains [`Constraint::Bound`] (bound-free subsets are
    /// trivially satisfiable).
    pub muses: Vec<u8>,
    /// Every minimal correction set, as sorted masks: relax all members
    /// of any one and the query becomes feasible.
    pub mcses: Vec<u8>,
    /// The base platform's front (always materialized — the full mask is
    /// probed first), for the nearest-feasible relaxation read.
    pub base: OracleFront,
    /// Whether every unsatisfiable verdict was read off a proven-exact
    /// front. When `false` the enumeration is best-effort: MUSes are
    /// candidates, not proven-minimal conflicts.
    pub proven: bool,
    /// Oracle invocations (always < 16, the powerset size).
    pub oracle_calls: u64,
    /// Oracle invocations served from a cache.
    pub oracle_cached: u64,
}

struct SatCache<'a> {
    pipeline: &'a Pipeline,
    platform: &'a Platform,
    objective: Objective,
    oracle: &'a mut dyn FrontOracle,
    memo: [Option<OracleFront>; 8],
    proven: bool,
    calls: u64,
    cached: u64,
}

impl SatCache<'_> {
    fn ensure(&mut self, variant: u8) {
        if self.memo[variant as usize].is_some() {
            return;
        }
        let mask = (variant << 1) | Constraint::Bound.bit();
        let of = if variant == FULL_MASK >> 1 {
            self.oracle.front(self.pipeline, self.platform, variant)
        } else {
            let relaxed = relaxed_platform(self.platform, mask);
            self.oracle.front(self.pipeline, &relaxed, variant)
        };
        self.calls += 1;
        if of.cached {
            self.cached += 1;
        }
        self.memo[variant as usize] = Some(of);
    }

    fn sat(&mut self, mask: u8) -> bool {
        if mask & Constraint::Bound.bit() == 0 {
            // No bound to violate: the reliability extreme (or any
            // mapping at all) satisfies a bound-free subset.
            return true;
        }
        let variant = mask >> 1;
        self.ensure(variant);
        let of = self.memo[variant as usize].as_ref().expect("ensured");
        let found = threshold_read(&of.front, self.objective).is_some();
        let complete = of.complete;
        if !found && !complete {
            // Absence of a point on a cutoff/heuristic front does not
            // prove infeasibility — the verdict (and everything built on
            // it) is best-effort.
            self.proven = false;
        }
        found
    }
}

/// Deterministic map solver: the unexplored subset with the most members
/// (ties to the larger mask). A subset is explored once it is a superset
/// of a known MUS or a subset of a known MSS.
fn next_seed(muses: &[u8], msses: &[u8]) -> Option<u8> {
    let mut order: Vec<u8> = (0..=FULL_MASK).collect();
    order.sort_by_key(|m| (std::cmp::Reverse(m.count_ones()), std::cmp::Reverse(*m)));
    order.into_iter().find(|&m| {
        !muses.iter().any(|&mus| mus & !m == 0) && !msses.iter().any(|&mss| m & !mss == 0)
    })
}

/// Grows a satisfiable seed to a maximal satisfiable subset, trying
/// missing members in ascending bit order (deterministic).
fn grow(seed: u8, sat: &mut SatCache<'_>) -> u8 {
    let mut cur = seed;
    for bit in 0..UNIVERSE_SIZE as u8 {
        let b = 1u8 << bit;
        if cur & b == 0 && sat.sat(cur | b) {
            cur |= b;
        }
    }
    cur
}

/// Shrinks an unsatisfiable seed to a minimal unsatisfiable subset,
/// trying members in ascending bit order (deterministic).
fn shrink(seed: u8, sat: &mut SatCache<'_>) -> u8 {
    let mut cur = seed;
    for bit in 0..UNIVERSE_SIZE as u8 {
        let b = 1u8 << bit;
        if cur & b != 0 && !sat.sat(cur & !b) {
            cur &= !b;
        }
    }
    cur
}

/// MARCO-style enumeration of every MUS and MCS of the query's
/// constraint universe. Deterministic for a deterministic oracle: the
/// map solver, grow and shrink orders are all fixed, so two nodes with
/// byte-identical fronts produce byte-identical outcomes.
pub fn marco(
    pipeline: &Pipeline,
    platform: &Platform,
    objective: Objective,
    oracle: &mut dyn FrontOracle,
) -> MarcoOutcome {
    let mut sat = SatCache {
        pipeline,
        platform,
        objective,
        oracle,
        memo: Default::default(),
        proven: true,
        calls: 0,
        cached: 0,
    };
    // The full universe first: its front is the base platform's (the
    // relaxation read needs it), and its verdict is overall feasibility.
    let feasible = sat.sat(FULL_MASK);
    let mut muses: Vec<u8> = Vec::new();
    let mut mcses: Vec<u8> = Vec::new();
    let mut msses: Vec<u8> = Vec::new();
    if feasible {
        // Every subset of a satisfiable universe is satisfiable: the
        // whole powerset is explored, no conflicts exist.
        msses.push(FULL_MASK);
    } else {
        while let Some(seed) = next_seed(&muses, &msses) {
            if sat.sat(seed) {
                let mss = grow(seed, &mut sat);
                mcses.push(FULL_MASK ^ mss);
                msses.push(mss);
            } else {
                muses.push(shrink(seed, &mut sat));
            }
        }
        muses.sort_unstable();
        mcses.sort_unstable();
    }
    let base = sat.memo[(FULL_MASK >> 1) as usize]
        .clone()
        .expect("full-mask probe materializes the base front");
    MarcoOutcome {
        feasible,
        muses,
        mcses,
        base,
        proven: sat.proven,
        oracle_calls: sat.calls,
        oracle_cached: sat.cached,
    }
}

// ---------------------------------------------------------------------------
// Nearest-feasible relaxation
// ---------------------------------------------------------------------------

/// The nearest feasible point past an infeasible bound.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NearestPoint {
    /// The point's latency.
    pub latency: f64,
    /// The point's failure probability.
    pub failure_prob: f64,
}

/// The what-if answer for an infeasible bound: which axis to relax and
/// the adjacent staircase point that becomes reachable.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Relaxation {
    /// The bounded axis: `"latency"` for a latency bound,
    /// `"failure_prob"` for a reliability bound.
    pub axis: &'static str,
    /// The adjacent feasible point just past the bound (`None` when the
    /// front is empty — nothing to suggest).
    pub nearest: Option<NearestPoint>,
    /// Whether the front read was proven exact. On a best-effort front
    /// the suggestion is an upper bound on the true nearest point.
    pub proven: bool,
}

/// One threshold read per axis on the front the failed solve already
/// built: the adjacent staircase point past the infeasible bound.
#[must_use]
pub fn relaxation(
    front: &ParetoFront<IntervalMapping>,
    complete: bool,
    objective: Objective,
) -> Relaxation {
    let threshold = objective.threshold_with_slack();
    let to_point = |p: &rpwf_core::pareto::ParetoPoint<IntervalMapping>| NearestPoint {
        latency: p.latency,
        failure_prob: p.failure_prob,
    };
    let (axis, nearest) = match objective {
        Objective::MinFpUnderLatency(_) => {
            ("latency", front.nearest_above(threshold).map(to_point))
        }
        Objective::MinLatencyUnderFp(_) => {
            ("failure_prob", front.nearest_below(threshold).map(to_point))
        }
    };
    Relaxation {
        axis,
        nearest,
        proven: complete,
    }
}

// ---------------------------------------------------------------------------
// The assembled explanation
// ---------------------------------------------------------------------------

/// A complete infeasibility explanation: why the query failed (MUSes),
/// what to relax (MCSes), and the nearest feasible what-if.
#[derive(Clone, Debug)]
pub struct Explanation {
    /// The explained objective.
    pub objective: Objective,
    /// The constraint universe, indexed by the MUS/MCS member indices.
    pub universe: Vec<ConstraintInfo>,
    /// Whether the query is feasible as posed (then the MUS/MCS lists
    /// are empty and there is nothing to explain).
    pub feasible: bool,
    /// Minimal unsatisfiable subsets, as sorted indices into
    /// [`Explanation::universe`].
    pub muses: Vec<Vec<usize>>,
    /// Minimal correction sets, as sorted indices into
    /// [`Explanation::universe`].
    pub mcses: Vec<Vec<usize>>,
    /// The nearest-feasible what-if (`None` when feasible).
    pub relaxation: Option<Relaxation>,
    /// Whether every infeasibility verdict was proven (see
    /// [`MarcoOutcome::proven`]). Best-effort explanations must never be
    /// presented as minimal-proven.
    pub proven: bool,
    /// Oracle invocations the enumeration spent (metrics only — not part
    /// of the wire explanation, which is identical warm or cold).
    pub oracle_calls: u64,
    /// Oracle invocations served from a cache (metrics only).
    pub oracle_cached: u64,
}

/// The member indices of a subset mask, ascending.
#[must_use]
pub fn mask_indices(mask: u8) -> Vec<usize> {
    (0..UNIVERSE_SIZE)
        .filter(|&i| mask & (1 << i) != 0)
        .collect()
}

/// Shapes a [`MarcoOutcome`] into the [`Explanation`] every consumer
/// (engine report, wire payload, CLI rendering) shares.
#[must_use]
pub fn assemble(objective: Objective, platform: &Platform, outcome: &MarcoOutcome) -> Explanation {
    let relaxation = (!outcome.feasible)
        .then(|| relaxation(&outcome.base.front, outcome.base.complete, objective));
    Explanation {
        objective,
        universe: universe(objective, platform),
        feasible: outcome.feasible,
        muses: outcome.muses.iter().map(|&m| mask_indices(m)).collect(),
        mcses: outcome.mcses.iter().map(|&m| mask_indices(m)).collect(),
        relaxation,
        proven: outcome.proven,
        oracle_calls: outcome.oracle_calls,
        oracle_cached: outcome.oracle_cached,
    }
}

/// Runs the full pipeline — MARCO enumeration, relaxation read,
/// assembly — against a caller-provided oracle.
#[must_use]
pub fn explain(
    pipeline: &Pipeline,
    platform: &Platform,
    objective: Objective,
    oracle: &mut dyn FrontOracle,
) -> Explanation {
    let outcome = marco(pipeline, platform, objective, oracle);
    assemble(objective, platform, &outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> Engine {
        Engine::with_default_backends(1)
    }

    fn sat_of(pipeline: &Pipeline, platform: &Platform, objective: Objective, mask: u8) -> bool {
        let engine = engine();
        let budget = Budget::unlimited();
        let mut oracle = EngineOracle::new(&engine, &budget);
        let mut sat = SatCache {
            pipeline,
            platform,
            objective,
            oracle: &mut oracle,
            memo: Default::default(),
            proven: true,
            calls: 0,
            cached: 0,
        };
        sat.sat(mask)
    }

    #[test]
    fn feasible_query_explains_as_feasible() {
        let pipeline = rpwf_gen::figure5_pipeline();
        let platform = rpwf_gen::figure5_platform();
        let engine = engine();
        let budget = Budget::unlimited();
        let mut oracle = EngineOracle::new(&engine, &budget);
        let explanation = explain(
            &pipeline,
            &platform,
            Objective::MinFpUnderLatency(22.0),
            &mut oracle,
        );
        assert!(explanation.feasible);
        assert!(explanation.muses.is_empty() && explanation.mcses.is_empty());
        assert!(explanation.relaxation.is_none());
        assert!(explanation.proven);
        assert_eq!(
            explanation.oracle_calls, 1,
            "one probe settles a sat universe"
        );
    }

    #[test]
    fn impossible_bound_yields_the_singleton_relaxations() {
        // A latency bound below even the doubled/uncapped platform's reach:
        // the bound conflicts with everything, so {bound} alone... is
        // satisfiable only bound-free; every MUS must contain the bound.
        let pipeline = Pipeline::uniform(2, 100.0, 100.0).unwrap();
        let platform = Platform::fully_homogeneous(3, 1.0, 1.0, 0.9).unwrap();
        let objective = Objective::MinFpUnderLatency(1.0);
        let engine = engine();
        let budget = Budget::unlimited();
        let mut oracle = EngineOracle::new(&engine, &budget);
        let explanation = explain(&pipeline, &platform, objective, &mut oracle);
        assert!(!explanation.feasible);
        assert!(
            explanation.proven,
            "small exact instance proves its verdicts"
        );
        assert!(!explanation.muses.is_empty());
        for mus in &explanation.muses {
            assert!(mus.contains(&0), "every MUS contains the bound: {mus:?}");
        }
        // The relaxation names the latency axis and a real nearest point.
        let relaxation = explanation.relaxation.expect("infeasible → what-if");
        assert_eq!(relaxation.axis, "latency");
        let nearest = relaxation.nearest.expect("non-empty base front");
        assert!(nearest.latency > 1.0);
        assert!(
            explanation.oracle_calls < 16,
            "enumeration beats the powerset: {}",
            explanation.oracle_calls
        );
    }

    #[test]
    fn muses_are_unsat_and_minimal_mcses_correct() {
        let pipeline = Pipeline::uniform(3, 10.0, 5.0).unwrap();
        let platform = Platform::comm_homogeneous(vec![1.0, 2.0], 2.0, vec![0.1, 0.2]).unwrap();
        let objective = Objective::MinFpUnderLatency(4.0);
        let engine = engine();
        let budget = Budget::unlimited();
        let mut oracle = EngineOracle::new(&engine, &budget);
        let explanation = explain(&pipeline, &platform, objective, &mut oracle);
        if explanation.feasible {
            return; // nothing to check on this instance
        }
        for mus in &explanation.muses {
            let mask = mus.iter().fold(0u8, |m, &i| m | (1 << i));
            assert!(!sat_of(&pipeline, &platform, objective, mask));
            for &i in mus {
                assert!(
                    sat_of(&pipeline, &platform, objective, mask & !(1 << i)),
                    "dropping member {i} must make the MUS satisfiable"
                );
            }
        }
        for mcs in &explanation.mcses {
            let mask = mcs.iter().fold(0u8, |m, &i| m | (1 << i));
            assert!(
                sat_of(&pipeline, &platform, objective, FULL_MASK & !mask),
                "relaxing an MCS must make the query feasible"
            );
        }
    }

    #[test]
    fn relaxed_platforms_are_monotone_supersets() {
        let platform = rpwf_gen::figure5_platform();
        let m = platform.n_procs();
        // Speed relaxation: every processor at the max speed.
        let fast = relaxed_platform(&platform, FULL_MASK & !Constraint::SpeedLimit.bit());
        assert_eq!(fast.n_procs(), m);
        let top = platform
            .speeds()
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(fast.speeds().iter().all(|&s| s == top));
        // Size relaxation: doubled, mirrors copy their originals.
        let wide = relaxed_platform(&platform, FULL_MASK & !Constraint::PlatformSize.bit());
        assert_eq!(wide.n_procs(), 2 * m);
        for i in 0..m {
            assert_eq!(
                wide.speed(ProcId::new(m + i)),
                platform.speed(ProcId::new(i))
            );
            assert_eq!(
                wide.failure_prob(ProcId::new(m + i)),
                platform.failure_prob(ProcId::new(i))
            );
        }
        // Link relaxation: comm-homogeneous at the max bandwidth.
        let linked = relaxed_platform(&platform, FULL_MASK & !Constraint::LinkLimit.bit());
        assert!(linked.uniform_bandwidth().is_some());
        // Full mask: byte-identical platform.
        assert_eq!(
            serde_json::to_string(&relaxed_platform(&platform, FULL_MASK)).unwrap(),
            serde_json::to_string(&platform).unwrap()
        );
    }

    #[test]
    fn mask_indices_are_ascending_bit_positions() {
        assert_eq!(mask_indices(0b1011), vec![0, 1, 3]);
        assert_eq!(mask_indices(0), Vec::<usize>::new());
        assert_eq!(mask_indices(FULL_MASK), vec![0, 1, 2, 3]);
    }
}
