//! # rpwf-algo — solvers for bi-criteria pipeline mapping
//!
//! Every algorithmic result of *Optimizing Latency and Reliability of
//! Pipeline Workflow Applications* (Benoit, Rehn-Sonigo, Robert 2008), as
//! runnable code:
//!
//! | paper result | module |
//! |---|---|
//! | Theorem 1 (min FP, poly) | [`mono::minimize_failure`] |
//! | Theorem 2 (min latency, comm-homog, poly) | [`mono::minimize_latency_comm_homog`] |
//! | Theorem 3 (one-to-one latency, NP-hard) | gadget [`reductions::tsp`], exact [`exact::held_karp`] |
//! | Theorem 4 (general mapping latency, poly) | [`mono::general_mapping_shortest_path`] |
//! | Theorem 5 / Algorithms 1–2 | [`bicriteria::fully_homog`] |
//! | Theorem 6 / Algorithms 3–4 | [`bicriteria::comm_homog`] |
//! | Theorem 7 (bi-criteria, fully-het, NP-hard) | gadget [`reductions::two_partition`] |
//! | open problems (§4.1, §4.4) | [`exact::interval_dp`], [`exact::bitmask_dp`], [`heuristics`] |
//!
//! The [`exact`] solvers are exponential oracles used to validate the
//! polynomial algorithms and to ground-truth the [`heuristics`]; the
//! [`Exhaustive`](exact::Exhaustive) sweep is parallelized with crossbeam
//! ([`par`]).
//!
//! The unified entry point over all of them is the [`engine`]: every
//! backend registers as an [`engine::Solver`] declaring
//! [`engine::Capabilities`], and [`Engine::solve`] plans each request
//! (capability filtering, exact-first selection, portfolio racing,
//! budget-cutoff fallback) in one audited place. The serving layer, CLI
//! and experiments all go through it.
//!
//! When a threshold query is infeasible, the [`explain`] module says
//! *why*: MARCO-style MUS/MCS enumeration over the query's constraint
//! universe plus a nearest-feasible what-if, reusing engine front solves
//! as its sat oracle ([`Want::Explain`](engine::Want)).

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod bicriteria;
pub mod engine;
pub mod exact;
pub mod explain;
pub mod front;
pub mod heuristics;
pub mod mono;
pub mod par;
pub mod reductions;
pub mod solution;

pub use engine::{Engine, Provenance, SolveReport, SolveRequest, Solver, Want};
pub use explain::{EngineOracle, Explanation, FrontOracle};
pub use front::{threshold_read, FrontSource};
pub use solution::{BiSolution, Budgeted, Objective};
