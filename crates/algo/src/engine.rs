//! The unified solver engine: one capability-driven API over every exact,
//! heuristic, and front backend.
//!
//! The paper's algorithmic landscape is a matrix — {min-latency-under-FP,
//! min-FP-under-latency, full bi-criteria front} × {fully homogeneous,
//! communication-homogeneous, fully heterogeneous} — and before this
//! module every cell was wired up ad hoc: per-heuristic `solve` methods,
//! [`Portfolio::race`](crate::heuristics::Portfolio::race),
//! `best_front_source`, and duplicated
//! selection/fallback logic in the serving layer. The engine makes
//! "objective × platform class × exactness" a first-class, queryable
//! surface:
//!
//! * every backend is a [`Solver`] declaring [`Capabilities`] (platform
//!   classes, objective kinds, stage/processor bounds, exactness tier,
//!   budget support),
//! * a request is a [`SolveRequest`] (`pipeline`, `platform`, a [`Want`]
//!   describing the answer shape, and a [`Budget`]),
//! * an answer is a [`SolveReport`] (the [`Answer`], a [`Completeness`]
//!   record, the winning [`Provenance`], any Pareto-front by-product, and
//!   per-solver [`SolverStat`]s),
//! * [`Engine::solve`] plans each request — capability filtering,
//!   exact-first selection, portfolio racing, and budget-cutoff fallback —
//!   in one audited place.
//!
//! The planning reproduces the legacy entry points **byte for byte** (the
//! `engine_equivalence` proptest suite asserts it): the serving layer, the
//! CLI, and the bench experiments all collapse onto [`Engine::solve`].
//!
//! ```
//! use rpwf_algo::engine::{Engine, SolveRequest, Want};
//! use rpwf_algo::Objective;
//! use rpwf_core::budget::Budget;
//!
//! let engine = Engine::with_default_backends(0xCAFE);
//! let pipeline = rpwf_gen::figure5_pipeline();
//! let platform = rpwf_gen::figure5_platform();
//! let report = engine.solve(&SolveRequest {
//!     pipeline: &pipeline,
//!     platform: &platform,
//!     want: Want::Point {
//!         objective: Objective::MinFpUnderLatency(22.0),
//!         keep_front: false,
//!     },
//!     budget: &Budget::unlimited(),
//! });
//! let sol = report.point().expect("feasible at L = 22");
//! assert!(report.completeness.exact_complete, "answer proven optimal");
//! assert!((sol.latency - 22.0).abs() < 1e-6);
//! ```
#![deny(missing_docs)]

use crate::exact::{
    pareto_front_comm_homog_with_budget, solve_comm_homog_with_budget, BranchBound, SearchStats,
};
use crate::explain::{EngineOracle, Explanation};
use crate::front::{
    threshold_read, BranchBoundSweep, FrontSource, IntervalDpFront, PortfolioFront,
};
use crate::heuristics::{annealing, local_search, one_to_one, random_search, single_interval};
use crate::heuristics::{split_dp, Annealing, LocalSearch, RandomSearch};
use crate::solution::{BiSolution, Budgeted, Objective};
use rpwf_core::budget::Budget;
use rpwf_core::mapping::IntervalMapping;
use rpwf_core::pareto::ParetoFront;
use rpwf_core::platform::{Platform, PlatformClass};
use rpwf_core::stage::Pipeline;
use rpwf_core::trace::TraceScope;
use serde::{Deserialize, Serialize, Value};
use std::sync::Arc;
use std::time::Instant;

// ---------------------------------------------------------------------------
// Provenance
// ---------------------------------------------------------------------------

/// Which side of the engine produced an answer. This is the **single**
/// provenance vocabulary: the wire protocol's `meta.solver`, the solution
/// cache, fleet forwards, and the CLI all serialize this enum (as the
/// stable lowercase strings `"exact"` / `"heuristic"`), so provenance
/// reads identically whether an answer was computed locally, replayed
/// from a cache, or forwarded across the fleet.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Provenance {
    /// An exact backend (proof-capable tier) produced the answer. The
    /// answer is *proven* only when the accompanying completeness record
    /// says the backend ran to completion.
    Exact,
    /// The heuristic portfolio produced the answer.
    Heuristic,
}

impl Provenance {
    /// The stable wire string (`"exact"` / `"heuristic"`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Provenance::Exact => "exact",
            Provenance::Heuristic => "heuristic",
        }
    }
}

impl std::fmt::Display for Provenance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl Serialize for Provenance {
    fn to_value(&self) -> Value {
        Value::Str(self.as_str().to_string())
    }
}

impl<'de> Deserialize<'de> for Provenance {
    fn from_value(value: &Value) -> Result<Self, serde::Error> {
        match value.as_str() {
            Some("exact") => Ok(Provenance::Exact),
            Some("heuristic") => Ok(Provenance::Heuristic),
            other => Err(serde::Error::msg(format!(
                "provenance must be \"exact\" or \"heuristic\", got {other:?}"
            ))),
        }
    }
}

// ---------------------------------------------------------------------------
// Capabilities
// ---------------------------------------------------------------------------

/// Exactness tier of a [`Solver`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Exactness {
    /// Completion certifies optimality (point answers) or front
    /// exactness; cutoffs may still yield sound partial answers.
    Exact,
    /// Exact *and* designed to improve monotonically under a budget: a
    /// cutoff keeps a useful, proven prefix (yield-ordered sweeps,
    /// point-by-point front enumeration).
    Anytime,
    /// Never certifies: every answer is a sound best effort.
    Heuristic,
}

impl Exactness {
    /// Whether a completed run of this tier proves its answer.
    #[must_use]
    pub fn proof_capable(self) -> bool {
        !matches!(self, Exactness::Heuristic)
    }
}

/// The set of platform classes a solver supports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClassSet {
    /// Supports Fully Homogeneous platforms.
    pub fully_homogeneous: bool,
    /// Supports Communication Homogeneous platforms.
    pub comm_homogeneous: bool,
    /// Supports Fully Heterogeneous platforms.
    pub fully_heterogeneous: bool,
}

impl ClassSet {
    /// Every platform class.
    pub const ALL: ClassSet = ClassSet {
        fully_homogeneous: true,
        comm_homogeneous: true,
        fully_heterogeneous: true,
    };

    /// Platforms with uniform link bandwidths (Fully Homogeneous and
    /// Communication Homogeneous).
    pub const UNIFORM_LINKS: ClassSet = ClassSet {
        fully_homogeneous: true,
        comm_homogeneous: true,
        fully_heterogeneous: false,
    };

    /// Whether `class` is in the set.
    #[must_use]
    pub fn contains(self, class: PlatformClass) -> bool {
        match class {
            PlatformClass::FullyHomogeneous => self.fully_homogeneous,
            PlatformClass::CommHomogeneous => self.comm_homogeneous,
            PlatformClass::FullyHeterogeneous => self.fully_heterogeneous,
        }
    }
}

/// The threshold-objective kinds a solver answers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ObjectiveSet {
    /// Answers `MinFpUnderLatency` (minimize FP under a latency bound).
    pub min_fp_under_latency: bool,
    /// Answers `MinLatencyUnderFp` (minimize latency under an FP bound).
    pub min_latency_under_fp: bool,
}

impl ObjectiveSet {
    /// Both threshold objectives.
    pub const BOTH: ObjectiveSet = ObjectiveSet {
        min_fp_under_latency: true,
        min_latency_under_fp: true,
    };

    /// Latency minimization only (`MinLatencyUnderFp`).
    pub const LATENCY_ONLY: ObjectiveSet = ObjectiveSet {
        min_fp_under_latency: false,
        min_latency_under_fp: true,
    };

    /// Whether the set covers `objective`'s kind.
    #[must_use]
    pub fn contains(self, objective: Objective) -> bool {
        match objective {
            Objective::MinFpUnderLatency(_) => self.min_fp_under_latency,
            Objective::MinLatencyUnderFp(_) => self.min_latency_under_fp,
        }
    }
}

/// The answer shapes a solver produces.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AnswerShapes {
    /// Produces threshold (point) answers via [`Solver::solve_point`].
    pub points: bool,
    /// Produces Pareto fronts via [`Solver::solve_front`].
    pub fronts: bool,
}

/// What a [`Solver`] declares about itself. The engine consults only this
/// record (plus [`Solver::applicable`]) when planning — registering a new
/// backend with honest capabilities is all it takes to put it on every
/// request path it can serve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Capabilities {
    /// Platform classes the solver accepts.
    pub classes: ClassSet,
    /// Threshold-objective kinds it answers.
    pub objectives: ObjectiveSet,
    /// Answer shapes it produces.
    pub shapes: AnswerShapes,
    /// Inclusive stage-count bound (`None` = unbounded).
    pub max_stages: Option<usize>,
    /// Inclusive processor-count bound (`None` = unbounded).
    pub max_procs: Option<usize>,
    /// Exactness tier.
    pub exactness: Exactness,
    /// Polls the request [`Budget`] cooperatively (solvers that do not
    /// are bounded polynomial work and always run to completion).
    pub budget_aware: bool,
    /// Accepts an externally-computed incumbent to prune with
    /// ([`Solver::solve_point_seeded`]). The engine runs the heuristic
    /// side *first* for seedable exact backends (sequential, seeded)
    /// instead of racing them in parallel.
    pub seedable: bool,
    /// Member of the engine's default heuristic portfolio: raced (in
    /// registration order) whenever a point request needs a heuristic
    /// side. Non-members remain individually invocable.
    pub race_member: bool,
    /// A [`Budgeted::Complete`] front from this solver is the **exact**
    /// Pareto front. `false` for partial-front producers (the interval-DP
    /// latency anchor) and every heuristic sweep.
    pub front_exact: bool,
    /// Worker threads the backend runs its search on (`1` = sequential).
    /// Parallel backends report their *resolved* count, so the serving
    /// layer can budget `solver threads × pool workers` against the
    /// machine's cores.
    pub threads: usize,
}

impl Capabilities {
    /// Whether the static capability record admits the instance (class
    /// and size bounds). [`Solver::applicable`] may tighten this with
    /// instance-specific checks.
    #[must_use]
    pub fn admits(&self, pipeline: &Pipeline, platform: &Platform) -> bool {
        self.classes.contains(platform.class())
            && self.max_stages.is_none_or(|b| pipeline.n_stages() <= b)
            && self.max_procs.is_none_or(|b| platform.n_procs() <= b)
    }
}

// ---------------------------------------------------------------------------
// Request / report
// ---------------------------------------------------------------------------

/// The answer shape a [`SolveRequest`] wants.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Want {
    /// One threshold answer.
    Point {
        /// The threshold objective.
        objective: Objective,
        /// Also build (and report) the instance's whole Pareto front when
        /// an exact front backend applies — the point is then a read off
        /// that front, and the front travels back in
        /// [`SolveReport::front`] so callers with a cache can amortize it
        /// across later queries. With `keep_front: false` the engine runs
        /// the cheaper per-threshold race instead (identical answers on
        /// complete runs — both read the same exact solution).
        keep_front: bool,
    },
    /// The whole bi-objective Pareto front.
    Front,
    /// The front, destined for chunked streaming. The engine plans this
    /// exactly like [`Want::Front`] — chunking is a transport rendering —
    /// but the hint travels with the request so one request type
    /// describes every solve/pareto call site.
    FrontStream {
        /// Maximum points per streamed chunk (must be ≥ 1).
        chunk: usize,
    },
    /// An infeasibility explanation for the threshold query: MUS/MCS
    /// enumeration over the query's constraint universe plus the
    /// nearest-feasible what-if (see [`crate::explain`]). Planned as a
    /// series of front solves (one per platform relaxation variant) under
    /// the request's budget.
    Explain {
        /// The threshold objective to explain.
        objective: Objective,
    },
}

/// One solve request: the instance, the wanted answer shape, and the
/// budget every cooperative backend polls.
///
/// ```
/// use rpwf_algo::engine::{Engine, SolveRequest, Want};
/// use rpwf_core::budget::Budget;
///
/// let engine = Engine::with_default_backends(7);
/// let pipeline = rpwf_gen::figure5_pipeline();
/// let platform = rpwf_gen::figure5_platform();
/// let report = engine.solve(&SolveRequest {
///     pipeline: &pipeline,
///     platform: &platform,
///     want: Want::Front,
///     budget: &Budget::unlimited(),
/// });
/// let front = report.front_answer().expect("front request yields a front");
/// assert!(report.completeness.exact_complete && front.len() >= 2);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct SolveRequest<'a> {
    /// The application.
    pub pipeline: &'a Pipeline,
    /// The platform.
    pub platform: &'a Platform,
    /// The wanted answer shape.
    pub want: Want,
    /// Deadline/cancellation budget shared by every backend the plan
    /// runs.
    pub budget: &'a Budget,
}

/// The answer inside a [`SolveReport`].
#[derive(Clone, Debug)]
pub enum Answer {
    /// A threshold answer; `None` when nothing feasible was found (the
    /// completeness record says whether that *proves* infeasibility).
    Point(Option<BiSolution>),
    /// A Pareto front (possibly a partial, sound under-approximation —
    /// check the completeness record).
    Front(Arc<ParetoFront<IntervalMapping>>),
    /// An infeasibility explanation ([`Want::Explain`]); best-effort
    /// when the completeness record says the plan was budget-cut.
    Explain(Arc<Explanation>),
}

/// How complete a [`SolveReport`] is — the record cache layers and
/// response shaping key off.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Completeness {
    /// An exact (proof-capable) backend applied to the instance at all.
    pub exact_capable: bool,
    /// That backend ran to completion: point answers are proven optimal
    /// (or proven infeasible when absent), fronts are the exact front.
    pub exact_complete: bool,
    /// Every heuristic the plan ran finished (no budget truncation), so
    /// a rerun with more budget could not strengthen the heuristic side.
    pub heuristic_complete: bool,
}

impl Completeness {
    /// Whether a *point* answer may be cached: either proven, or produced
    /// by untruncated heuristics on an instance no exact backend could
    /// improve. Budget-cutoff answers may be beaten by a rerun and must
    /// never poison a cache.
    #[must_use]
    pub fn cacheable_point(&self) -> bool {
        self.exact_complete || (!self.exact_capable && self.heuristic_complete)
    }
}

/// Aggregate telemetry from one cooperative parallel search: how many
/// workers ran, how the frontier work units were distributed, and how
/// often the shared incumbent improved. `None` on a [`SolverStat`] means
/// the backend is not a parallel search (or did not report).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParallelSummary {
    /// Worker threads the search ran.
    pub threads: usize,
    /// Frontier work units executed across all workers.
    pub units_executed: u64,
    /// Units a worker claimed outside its round-robin home share
    /// (work-stealing activity).
    pub units_stolen: u64,
    /// Successful publications of a strictly better shared incumbent.
    pub improvements: u64,
}

impl ParallelSummary {
    fn from_search(stats: &SearchStats) -> Self {
        ParallelSummary {
            threads: stats.threads,
            units_executed: stats.units_executed(),
            units_stolen: stats.units_stolen(),
            improvements: stats.improvements(),
        }
    }
}

/// One backend's contribution to a plan, for observability and the E18
/// overhead experiment.
#[derive(Clone, Copy, Debug)]
pub struct SolverStat {
    /// Registered solver name.
    pub solver: &'static str,
    /// Wall-clock time this backend ran, in microseconds.
    pub elapsed_us: u64,
    /// Whether it ran to completion (never true for heuristics' *proof*
    /// sense — this is the budget sense: not truncated).
    pub complete: bool,
    /// Whether it produced a feasible point / non-empty front.
    pub produced: bool,
    /// Parallel-search telemetry, when the backend ran one.
    pub parallel: Option<ParallelSummary>,
}

/// The engine's reply to a [`SolveRequest`].
#[derive(Clone, Debug)]
pub struct SolveReport {
    /// The answer, shaped per the request's [`Want`].
    pub answer: Answer,
    /// Completeness of the plan's exact and heuristic sides.
    pub completeness: Completeness,
    /// Provenance of the winning answer (`None` when nothing was found).
    pub provenance: Option<Provenance>,
    /// Whole-front by-product of a `Point { keep_front: true }` request:
    /// the front the answer was read from, plus whether it is complete.
    /// Callers with a front cache store it so later queries over the
    /// instance become front reads.
    pub front: Option<FrontArtifact>,
    /// Per-backend contributions, in execution order.
    pub stats: Vec<SolverStat>,
    /// Per-worker search telemetry from every parallel backend the plan
    /// ran, keyed by solver name. [`Engine::solve_traced`] renders these
    /// as `solver.bnb.worker` child spans; the serving layer folds them
    /// into its metrics.
    pub parallel: Vec<(&'static str, SearchStats)>,
}

/// A Pareto front built along the way to a point answer, with the
/// provenance a cache must replay on later hits (carried here so callers
/// copy instead of guessing which backend produced it).
#[derive(Clone, Debug)]
pub struct FrontArtifact {
    /// The front (mappings included, so later reads replay exactly).
    pub front: Arc<ParetoFront<IntervalMapping>>,
    /// Whether the front is proven exact.
    pub complete: bool,
    /// Who produced the front.
    pub provenance: Provenance,
    /// Whether an exact front backend applies to the instance (when
    /// `false`, an incomplete front is the best any rerun could do).
    pub exact_capable: bool,
}

impl SolveReport {
    /// The point answer, when the request wanted one and a feasible
    /// solution was found.
    #[must_use]
    pub fn point(&self) -> Option<&BiSolution> {
        match &self.answer {
            Answer::Point(sol) => sol.as_ref(),
            Answer::Front(_) | Answer::Explain(_) => None,
        }
    }

    /// The front answer, when the request wanted a front.
    #[must_use]
    pub fn front_answer(&self) -> Option<&Arc<ParetoFront<IntervalMapping>>> {
        match &self.answer {
            Answer::Front(front) => Some(front),
            Answer::Point(_) | Answer::Explain(_) => None,
        }
    }

    /// The explanation, when the request wanted one ([`Want::Explain`]).
    #[must_use]
    pub fn explanation(&self) -> Option<&Arc<Explanation>> {
        match &self.answer {
            Answer::Explain(explanation) => Some(explanation),
            Answer::Point(_) | Answer::Front(_) => None,
        }
    }
}

// ---------------------------------------------------------------------------
// The Solver trait
// ---------------------------------------------------------------------------

/// A solver backend as the engine sees it: a capability record plus the
/// answer-shape entry points its capabilities advertise.
///
/// Implementations must only be called for shapes their
/// [`Capabilities::shapes`] declare — the engine guarantees this; direct
/// callers should check [`Solver::applicable`] first. The default method
/// bodies panic, so an incapable call is loud, not silently wrong.
///
/// ```
/// use rpwf_algo::engine::{
///     AnswerShapes, Capabilities, ClassSet, Exactness, ObjectiveSet, Solver,
/// };
/// use rpwf_algo::{BiSolution, Budgeted, Objective};
/// use rpwf_core::budget::Budget;
/// use rpwf_core::platform::Platform;
/// use rpwf_core::stage::Pipeline;
///
/// /// A toy backend: Theorem 1's polynomial reliability extreme, offered
/// /// as a (feasibility-filtered) point answer.
/// struct SafestOnly;
///
/// impl Solver for SafestOnly {
///     fn name(&self) -> &'static str {
///         "safest-only"
///     }
///     fn capabilities(&self) -> Capabilities {
///         Capabilities {
///             classes: ClassSet::ALL,
///             objectives: ObjectiveSet::BOTH,
///             shapes: AnswerShapes { points: true, fronts: false },
///             max_stages: None,
///             max_procs: None,
///             exactness: Exactness::Heuristic,
///             budget_aware: false,
///             seedable: false,
///             race_member: false,
///             front_exact: false,
///             threads: 1,
///         }
///     }
///     fn solve_point(
///         &self,
///         pipeline: &Pipeline,
///         platform: &Platform,
///         objective: Objective,
///         _budget: &Budget,
///     ) -> Budgeted<Option<BiSolution>> {
///         let safest = rpwf_algo::mono::minimize_failure(pipeline, platform);
///         let feasible = objective.feasible(safest.latency, safest.failure_prob);
///         Budgeted::Complete(feasible.then_some(safest))
///     }
/// }
///
/// let mut engine = rpwf_algo::engine::Engine::new(0);
/// engine.register(std::sync::Arc::new(SafestOnly));
/// assert!(engine.solver("safest-only").is_some());
/// ```
pub trait Solver: Send + Sync {
    /// Stable registry name (logs, stats, experiment tables).
    fn name(&self) -> &'static str;

    /// The capability record the engine plans with.
    fn capabilities(&self) -> Capabilities;

    /// Whether this solver can run on the instance. The default defers to
    /// [`Capabilities::admits`]; override to add instance-specific checks
    /// the static record cannot express (e.g. `n ≤ m` for one-to-one
    /// mappings).
    fn applicable(&self, pipeline: &Pipeline, platform: &Platform) -> bool {
        self.capabilities().admits(pipeline, platform)
    }

    /// Answers a threshold objective. Only called when
    /// [`Capabilities::shapes`]`.points` holds.
    ///
    /// # Panics
    /// The default body panics — point-incapable solvers must never be
    /// asked for points.
    fn solve_point(
        &self,
        pipeline: &Pipeline,
        platform: &Platform,
        objective: Objective,
        budget: &Budget,
    ) -> Budgeted<Option<BiSolution>> {
        let _ = (pipeline, platform, objective, budget);
        unreachable!("{} does not produce point answers", self.name())
    }

    /// [`solve_point`](Self::solve_point) seeded with an
    /// externally-computed incumbent. Only meaningfully overridden when
    /// [`Capabilities::seedable`] holds; the default ignores the seed.
    fn solve_point_seeded(
        &self,
        pipeline: &Pipeline,
        platform: &Platform,
        objective: Objective,
        budget: &Budget,
        incumbent: Option<BiSolution>,
    ) -> Budgeted<Option<BiSolution>> {
        let _ = incumbent;
        self.solve_point(pipeline, platform, objective, budget)
    }

    /// [`solve_point_seeded`](Self::solve_point_seeded) that additionally
    /// reports per-worker [`SearchStats`] when the backend runs a
    /// cooperative parallel search. The default delegates and reports
    /// none.
    fn solve_point_seeded_stats(
        &self,
        pipeline: &Pipeline,
        platform: &Platform,
        objective: Objective,
        budget: &Budget,
        incumbent: Option<BiSolution>,
    ) -> (Budgeted<Option<BiSolution>>, Option<SearchStats>) {
        (
            self.solve_point_seeded(pipeline, platform, objective, budget, incumbent),
            None,
        )
    }

    /// Produces the best Pareto front achievable within the budget. Only
    /// called when [`Capabilities::shapes`]`.fronts` holds.
    ///
    /// # Panics
    /// The default body panics — front-incapable solvers must never be
    /// asked for fronts.
    fn solve_front(
        &self,
        pipeline: &Pipeline,
        platform: &Platform,
        budget: &Budget,
    ) -> Budgeted<ParetoFront<IntervalMapping>> {
        let _ = (pipeline, platform, budget);
        unreachable!("{} does not produce fronts", self.name())
    }

    /// [`solve_front`](Self::solve_front) that additionally reports
    /// per-worker [`SearchStats`] when the backend runs a cooperative
    /// parallel search. The default delegates and reports none.
    fn solve_front_stats(
        &self,
        pipeline: &Pipeline,
        platform: &Platform,
        budget: &Budget,
    ) -> (Budgeted<ParetoFront<IntervalMapping>>, Option<SearchStats>) {
        (self.solve_front(pipeline, platform, budget), None)
    }
}

// ---------------------------------------------------------------------------
// The Engine
// ---------------------------------------------------------------------------

/// The solver registry and planner. Registration order is the preference
/// order: for each answer shape, the *first* applicable proof-capable
/// solver is the exact backend, and race members run in registration
/// order (which is what makes the engine's heuristic side bit-identical
/// to the legacy [`Portfolio`](crate::heuristics::Portfolio)).
///
/// ```
/// use rpwf_algo::engine::Engine;
///
/// let engine = Engine::with_default_backends(0xCAFE);
/// // The capability surface is queryable: which backend would answer a
/// // front request for Figure 5's comm-homogeneous platform?
/// let pipeline = rpwf_gen::figure5_pipeline();
/// let platform = rpwf_gen::figure5_platform();
/// let backend = engine.front_backend(&pipeline, &platform).expect("m = 11 ≤ 16");
/// assert_eq!(backend.name(), "bitmask-dp");
/// ```
pub struct Engine {
    solvers: Vec<Arc<dyn Solver>>,
    seed: u64,
    threads: usize,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("seed", &self.seed)
            .field("threads", &self.threads)
            .field(
                "solvers",
                &self.solvers.iter().map(|s| s.name()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl Engine {
    /// An empty engine (no backends registered).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Engine {
            solvers: Vec::new(),
            seed,
            threads: 1,
        }
    }

    /// An engine with every stock backend registered, in the canonical
    /// preference order: bitmask-dp, branch-bound, exhaustive, bnb-sweep,
    /// interval-dp, one-to-one, single-interval, split-dp, local-search,
    /// annealing, random-search, portfolio-front. `seed` drives every
    /// randomized member (a fixed seed makes answers deterministic).
    #[must_use]
    pub fn with_default_backends(seed: u64) -> Self {
        Engine::with_parallel_backends(seed, 1)
    }

    /// [`Engine::with_default_backends`] with the exact searches
    /// (branch-and-bound and its ε-constraint sweep) running `threads`
    /// cooperative workers (`0` = one per available core, `1` =
    /// sequential, byte-identical to the default engine). Parallel and
    /// sequential engines return byte-identical answers; more threads
    /// only move the instance-size frontier (`m ≤ 14` instead of `12`
    /// for the branch-and-bound backends) and wall-clock time.
    #[must_use]
    pub fn with_parallel_backends(seed: u64, threads: usize) -> Self {
        let mut engine = Engine::new(seed);
        engine.threads = crate::par::resolve_threads(threads);
        engine.register(Arc::new(BitmaskDpSolver));
        engine.register(Arc::new(BranchBoundSolver { threads }));
        engine.register(Arc::new(ExhaustiveSolver));
        engine.register(Arc::new(BnbSweepSolver {
            threads,
            seed: BranchBoundSweep::default().seed,
        }));
        engine.register(Arc::new(IntervalDpSolver));
        engine.register(Arc::new(OneToOneSolver));
        engine.register(Arc::new(SingleIntervalSolver));
        engine.register(Arc::new(SplitDpSolver));
        engine.register(Arc::new(LocalSearchSolver { seed }));
        engine.register(Arc::new(AnnealingSolver { seed }));
        engine.register(Arc::new(RandomSearchSolver { seed }));
        engine.register(Arc::new(PortfolioFrontSolver {
            front: PortfolioFront { seed, steps: 9 },
        }));
        engine
    }

    /// Appends a backend to the registry (lowest preference so far).
    pub fn register(&mut self, solver: Arc<dyn Solver>) {
        self.solvers.push(solver);
    }

    /// The registered backends, in preference order.
    #[must_use]
    pub fn solvers(&self) -> &[Arc<dyn Solver>] {
        &self.solvers
    }

    /// Looks a backend up by its registry name.
    #[must_use]
    pub fn solver(&self, name: &str) -> Option<&Arc<dyn Solver>> {
        self.solvers.iter().find(|s| s.name() == name)
    }

    /// The seed driving randomized members.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The resolved worker-thread count the parallel exact backends run
    /// with (`1` for [`Engine::with_default_backends`] and hand-built
    /// engines). The serving layer exports this as the
    /// `rpwf_engine_solver_threads` gauge.
    #[must_use]
    pub fn solver_threads(&self) -> usize {
        self.threads
    }

    /// The exact front backend the engine would use for the instance: the
    /// first applicable proof-capable solver whose `Complete` fronts are
    /// exact. `None` means only heuristic fronts are available (the
    /// portfolio fallback still answers).
    #[must_use]
    pub fn front_backend(&self, pipeline: &Pipeline, platform: &Platform) -> Option<&dyn Solver> {
        self.solvers.iter().map(AsRef::as_ref).find(|s| {
            let caps = s.capabilities();
            caps.shapes.fronts
                && caps.front_exact
                && caps.exactness.proof_capable()
                && s.applicable(pipeline, platform)
        })
    }

    /// The exact point backend the engine would race for the instance and
    /// objective: the first applicable proof-capable point solver.
    #[must_use]
    pub fn point_backend(
        &self,
        pipeline: &Pipeline,
        platform: &Platform,
        objective: Objective,
    ) -> Option<&dyn Solver> {
        self.solvers.iter().map(AsRef::as_ref).find(|s| {
            let caps = s.capabilities();
            caps.shapes.points
                && caps.exactness.proof_capable()
                && caps.objectives.contains(objective)
                && s.applicable(pipeline, platform)
        })
    }

    /// The heuristic front fallback (first applicable heuristic-tier
    /// front producer — the portfolio sweep in the stock registry).
    fn front_fallback(&self, pipeline: &Pipeline, platform: &Platform) -> Option<&dyn Solver> {
        self.solvers.iter().map(AsRef::as_ref).find(|s| {
            let caps = s.capabilities();
            caps.shapes.fronts
                && caps.exactness == Exactness::Heuristic
                && s.applicable(pipeline, platform)
        })
    }

    /// Plans and executes one request. See the module docs for the plan
    /// shapes; every solve/pareto call site of the serving layer, CLI and
    /// experiments goes through here.
    #[must_use]
    pub fn solve(&self, req: &SolveRequest<'_>) -> SolveReport {
        self.solve_traced(req, None)
    }

    /// [`Engine::solve`] with an optional trace scope. When `scope` is
    /// set, the engine opens an `engine.plan` span recording the planning
    /// decision (answer shape, capability filter result, chosen backend,
    /// race membership) and the budget outcome, plus one `solver.<name>`
    /// child span per backend execution, synthesized from the report's
    /// [`SolverStat`]s. Race members run in parallel, so sibling solver
    /// spans may overlap: each records its own duration inside the plan
    /// window rather than a disjoint slice of it. With `scope == None`
    /// this is exactly [`Engine::solve`] — no span is allocated.
    #[must_use]
    pub fn solve_traced(
        &self,
        req: &SolveRequest<'_>,
        scope: Option<TraceScope<'_>>,
    ) -> SolveReport {
        let Some(scope) = scope else {
            return self.dispatch(req);
        };
        let trace = scope.trace;
        let plan_start_us = trace.elapsed_us();
        let plan = trace.begin("engine.plan", Some(scope.parent));
        self.describe_plan(req, scope, plan.index());
        let report = self.dispatch(req);
        for stat in &report.stats {
            let solver_span = trace.add(
                &format!("solver.{}", stat.solver),
                Some(plan.index()),
                plan_start_us,
                stat.elapsed_us,
                vec![
                    ("complete".to_owned(), stat.complete.to_string()),
                    ("produced".to_owned(), stat.produced.to_string()),
                ],
            );
            // One child span per cooperative search worker — only for
            // genuinely parallel runs, so sequential plans trace exactly
            // as they always have (one span per solver stat).
            let search = report
                .parallel
                .iter()
                .find(|(name, s)| *name == stat.solver && s.threads > 1);
            if let Some((_, search)) = search {
                for w in &search.workers {
                    trace.add(
                        "solver.bnb.worker",
                        Some(solver_span),
                        plan_start_us,
                        w.elapsed_us,
                        vec![
                            ("worker".to_owned(), w.worker.to_string()),
                            ("nodes".to_owned(), w.nodes.to_string()),
                            ("units_executed".to_owned(), w.units_executed.to_string()),
                            ("units_stolen".to_owned(), w.units_stolen.to_string()),
                            ("improvements".to_owned(), w.improvements.to_string()),
                        ],
                    );
                }
            }
        }
        trace.attr(
            plan.index(),
            "exact_complete",
            report.completeness.exact_complete.to_string(),
        );
        trace.attr(
            plan.index(),
            "budget_exhausted",
            req.budget.is_exhausted().to_string(),
        );
        if let Some(provenance) = report.provenance {
            trace.attr(plan.index(), "provenance", provenance.as_str());
        }
        trace.end(&plan);
        report
    }

    /// The untraced planning core shared by [`Engine::solve`] and
    /// [`Engine::solve_traced`].
    fn dispatch(&self, req: &SolveRequest<'_>) -> SolveReport {
        match req.want {
            Want::Front | Want::FrontStream { .. } => self.plan_front(req),
            Want::Explain { objective } => self.plan_explain(req, objective),
            Want::Point {
                objective,
                keep_front,
            } => {
                if keep_front {
                    if let Some(backend) = self.front_backend(req.pipeline, req.platform) {
                        return self.plan_point_via_front(req, objective, backend);
                    }
                }
                self.plan_point_race(req, objective)
            }
        }
    }

    /// Records the planning decision onto the `engine.plan` span: which
    /// plan shape was chosen, which backend answers, which race members
    /// join, and how many registered solvers survived the capability
    /// filter for this instance.
    fn describe_plan(&self, req: &SolveRequest<'_>, scope: TraceScope<'_>, plan: u32) {
        let trace = scope.trace;
        let applicable = self
            .solvers
            .iter()
            .filter(|s| s.applicable(req.pipeline, req.platform))
            .count();
        trace.attr(
            plan,
            "applicable",
            format!("{applicable}/{}", self.solvers.len()),
        );
        match req.want {
            Want::Explain { objective } => {
                trace.attr(plan, "want", "explain");
                trace.attr(
                    plan,
                    "objective",
                    match objective {
                        Objective::MinFpUnderLatency(_) => "min-fp-under-latency",
                        Objective::MinLatencyUnderFp(_) => "min-latency-under-fp",
                    },
                );
                match self.front_backend(req.pipeline, req.platform) {
                    Some(backend) => {
                        trace.attr(plan, "plan", "explain-exact");
                        trace.attr(plan, "backend", backend.name());
                    }
                    None => trace.attr(plan, "plan", "explain-heuristic"),
                }
            }
            Want::Front | Want::FrontStream { .. } => {
                trace.attr(plan, "want", "front");
                if let Some(backend) = self.front_backend(req.pipeline, req.platform) {
                    trace.attr(plan, "plan", "front-exact");
                    trace.attr(plan, "backend", backend.name());
                } else if let Some(backend) = self.front_fallback(req.pipeline, req.platform) {
                    trace.attr(plan, "plan", "front-heuristic");
                    trace.attr(plan, "backend", backend.name());
                } else {
                    trace.attr(plan, "plan", "front-none");
                }
            }
            Want::Point {
                objective,
                keep_front,
            } => {
                trace.attr(plan, "want", "point");
                trace.attr(
                    plan,
                    "objective",
                    match objective {
                        Objective::MinFpUnderLatency(_) => "min-fp-under-latency",
                        Objective::MinLatencyUnderFp(_) => "min-latency-under-fp",
                    },
                );
                let race: Vec<&str> = self
                    .solvers
                    .iter()
                    .map(AsRef::as_ref)
                    .filter(|s| {
                        let caps = s.capabilities();
                        caps.race_member
                            && caps.shapes.points
                            && caps.objectives.contains(objective)
                            && s.applicable(req.pipeline, req.platform)
                    })
                    .map(Solver::name)
                    .collect();
                trace.attr(plan, "race", race.join(","));
                if keep_front {
                    if let Some(backend) = self.front_backend(req.pipeline, req.platform) {
                        trace.attr(plan, "plan", "point-via-front");
                        trace.attr(plan, "backend", backend.name());
                        return;
                    }
                }
                match self.point_backend(req.pipeline, req.platform, objective) {
                    Some(backend) => {
                        trace.attr(plan, "plan", "point-race");
                        trace.attr(plan, "backend", backend.name());
                    }
                    None => trace.attr(plan, "plan", "point-heuristic"),
                }
            }
        }
    }

    /// Front plan: the exact front backend where one applies, the
    /// heuristic portfolio sweep beyond.
    fn plan_front(&self, req: &SolveRequest<'_>) -> SolveReport {
        let mut stats = Vec::new();
        let mut parallel = Vec::new();
        let (outcome, provenance, exact_capable) =
            match self.front_backend(req.pipeline, req.platform) {
                Some(backend) => {
                    let outcome = timed_front(backend, req, &mut stats, &mut parallel);
                    (outcome, Provenance::Exact, true)
                }
                None => match self.front_fallback(req.pipeline, req.platform) {
                    Some(backend) => {
                        let outcome = timed_front(backend, req, &mut stats, &mut parallel);
                        (outcome, Provenance::Heuristic, false)
                    }
                    None => (
                        Budgeted::Cutoff(ParetoFront::new()),
                        Provenance::Heuristic,
                        false,
                    ),
                },
            };
        let complete = outcome.is_complete();
        let front = Arc::new(outcome.into_inner());
        // Field semantics: `exact_complete` may only be claimed by a
        // proof-capable backend (a heuristic sweep that happens to finish
        // its budget proves nothing), and `heuristic_complete` covers the
        // heuristics the plan actually ran (vacuously true on the exact
        // path, where none do).
        let completeness = if exact_capable {
            Completeness {
                exact_capable: true,
                exact_complete: complete,
                heuristic_complete: true,
            }
        } else {
            Completeness {
                exact_capable: false,
                exact_complete: false,
                heuristic_complete: complete,
            }
        };
        SolveReport {
            provenance: Some(provenance),
            completeness,
            answer: Answer::Front(front),
            front: None,
            stats,
            parallel,
        }
    }

    /// Explain plan: MARCO MUS/MCS enumeration over the query's
    /// constraint universe ([`crate::explain`]), each satisfiability
    /// probe a recursive [`Want::Front`] solve under the request's
    /// budget. `exact_complete` means every infeasibility verdict the
    /// enumeration relied on was read off a proven-exact front — the
    /// explanation is minimal-proven; anything less is best-effort.
    fn plan_explain(&self, req: &SolveRequest<'_>, objective: Objective) -> SolveReport {
        let mut oracle = EngineOracle::new(self, req.budget);
        let explanation =
            crate::explain::explain(req.pipeline, req.platform, objective, &mut oracle);
        let (stats, parallel, heuristic_complete) = oracle.into_parts();
        let proven = explanation.proven;
        SolveReport {
            answer: Answer::Explain(Arc::new(explanation)),
            completeness: Completeness {
                exact_capable: self.front_backend(req.pipeline, req.platform).is_some(),
                exact_complete: proven,
                heuristic_complete,
            },
            provenance: Some(if proven {
                Provenance::Exact
            } else {
                Provenance::Heuristic
            }),
            front: None,
            stats,
            parallel,
        }
    }

    /// Point-via-front plan: build the whole front with the exact backend
    /// while the heuristic portfolio races on a second thread; answer
    /// from the front when it completes, otherwise take the best of the
    /// partial front and the heuristics. The front travels back as a
    /// by-product for callers that cache it.
    fn plan_point_via_front(
        &self,
        req: &SolveRequest<'_>,
        objective: Objective,
        backend: &dyn Solver,
    ) -> SolveReport {
        let mut stats = Vec::new();
        let mut parallel = Vec::new();
        let (front_outcome, heuristic, mut heuristic_stats) = crossbeam::thread::scope(|scope| {
            let heuristic = scope.spawn(|_| {
                let mut hstats = Vec::new();
                let outcome = self.race_heuristics(req, objective, &mut hstats);
                (outcome, hstats)
            });
            let front = timed_front(backend, req, &mut stats, &mut parallel);
            let (heuristic, hstats) = heuristic.join().expect("heuristics do not panic");
            (front, heuristic, hstats)
        })
        .expect("race threads do not panic");
        stats.append(&mut heuristic_stats);

        let complete = front_outcome.is_complete();
        let heuristic_complete = heuristic.is_complete();
        let front = Arc::new(front_outcome.into_inner());
        let exact_point = threshold_read(&front, objective);
        let (answer, provenance) = if complete {
            let provenance = exact_point.is_some().then_some(Provenance::Exact);
            (exact_point, provenance)
        } else {
            pick_better(objective, exact_point, heuristic.into_inner())
        };
        SolveReport {
            answer: Answer::Point(answer),
            completeness: Completeness {
                exact_capable: true,
                exact_complete: complete,
                heuristic_complete,
            },
            provenance,
            front: Some(FrontArtifact {
                front,
                complete,
                provenance: Provenance::Exact,
                exact_capable: true,
            }),
            stats,
            parallel,
        }
    }

    /// Per-threshold race plan: the exact point backend against the
    /// heuristic race members under the shared budget. Non-seedable exact
    /// backends run truly in parallel on a second thread; seedable ones
    /// (branch-and-bound) run after the heuristics, seeded with their
    /// answer, so the exact search polls the budget from its first node.
    fn plan_point_race(&self, req: &SolveRequest<'_>, objective: Objective) -> SolveReport {
        let mut stats = Vec::new();
        let mut parallel = Vec::new();
        let backend = self.point_backend(req.pipeline, req.platform, objective);
        let (exact_outcome, heuristic) = match backend {
            Some(s) if s.capabilities().seedable => {
                let heuristic = self.race_heuristics(req, objective, &mut stats);
                let start = Instant::now();
                let (outcome, search) = s.solve_point_seeded_stats(
                    req.pipeline,
                    req.platform,
                    objective,
                    req.budget,
                    heuristic.inner().clone(),
                );
                push_point_stat(&mut stats, s.name(), start, &outcome, search.as_ref());
                if let Some(search) = search {
                    parallel.push((s.name(), search));
                }
                (Some(outcome), heuristic)
            }
            Some(s) => {
                let (exact, heuristic) = crossbeam::thread::scope(|scope| {
                    let exact = scope.spawn(|_| {
                        let start = Instant::now();
                        let outcome =
                            s.solve_point(req.pipeline, req.platform, objective, req.budget);
                        (outcome, start)
                    });
                    let heuristic = self.race_heuristics(req, objective, &mut stats);
                    let (outcome, start) = exact.join().expect("exact solver does not panic");
                    push_point_stat(&mut stats, s.name(), start, &outcome, None);
                    (outcome, heuristic)
                })
                .expect("race threads do not panic");
                (Some(exact), heuristic)
            }
            None => (None, self.race_heuristics(req, objective, &mut stats)),
        };

        let heuristic_complete = heuristic.is_complete();
        let heuristic = heuristic.into_inner();
        let (answer, provenance, completeness) = match exact_outcome {
            Some(Budgeted::Complete(sol)) => {
                let provenance = sol.is_some().then_some(Provenance::Exact);
                (
                    sol,
                    provenance,
                    Completeness {
                        exact_capable: true,
                        exact_complete: true,
                        heuristic_complete,
                    },
                )
            }
            Some(Budgeted::Cutoff(partial)) => {
                let (answer, provenance) = pick_better(objective, partial, heuristic);
                (
                    answer,
                    provenance,
                    Completeness {
                        exact_capable: true,
                        exact_complete: false,
                        heuristic_complete,
                    },
                )
            }
            None => {
                let provenance = heuristic.is_some().then_some(Provenance::Heuristic);
                (
                    heuristic,
                    provenance,
                    Completeness {
                        exact_capable: false,
                        exact_complete: false,
                        heuristic_complete,
                    },
                )
            }
        };
        SolveReport {
            answer: Answer::Point(answer),
            completeness,
            provenance,
            front: None,
            stats,
            parallel,
        }
    }

    /// Runs every applicable race member in registration order under the
    /// shared budget and keeps the best answer — the engine's heuristic
    /// portfolio, bit-identical to the legacy
    /// [`Portfolio`](crate::heuristics::Portfolio) fold.
    fn race_heuristics(
        &self,
        req: &SolveRequest<'_>,
        objective: Objective,
        stats: &mut Vec<SolverStat>,
    ) -> Budgeted<Option<BiSolution>> {
        let mut complete = true;
        let mut best: Option<BiSolution> = None;
        for solver in self.solvers.iter().map(AsRef::as_ref) {
            let caps = solver.capabilities();
            if !(caps.race_member
                && caps.shapes.points
                && caps.objectives.contains(objective)
                && solver.applicable(req.pipeline, req.platform))
            {
                continue;
            }
            let start = Instant::now();
            let outcome = solver.solve_point(req.pipeline, req.platform, objective, req.budget);
            let member_complete = outcome.is_complete();
            if !member_complete {
                complete = false;
            }
            let sol = outcome.into_inner();
            stats.push(SolverStat {
                solver: solver.name(),
                elapsed_us: elapsed_us(start),
                complete: member_complete,
                produced: sol.is_some(),
                parallel: None,
            });
            if let Some(sol) = sol {
                best = match best {
                    Some(b) if !objective.better(&sol, &b) => Some(b),
                    _ => Some(sol),
                };
            }
        }
        if complete {
            Budgeted::Complete(best)
        } else {
            Budgeted::Cutoff(best)
        }
    }
}

/// The cutoff tie-break shared by every race shape: a partial exact
/// answer against the heuristic answer, feasibility-then-objective order
/// (exact wins ties). One copy — this comparison is what the
/// engine-equivalence contract pins, so it must not fork.
fn pick_better(
    objective: Objective,
    exact_partial: Option<BiSolution>,
    heuristic: Option<BiSolution>,
) -> (Option<BiSolution>, Option<Provenance>) {
    match (exact_partial, heuristic) {
        (Some(e), Some(h)) => {
            if objective.better(&e, &h) {
                (Some(e), Some(Provenance::Exact))
            } else {
                (Some(h), Some(Provenance::Heuristic))
            }
        }
        (Some(e), None) => (Some(e), Some(Provenance::Exact)),
        (None, Some(h)) => (Some(h), Some(Provenance::Heuristic)),
        (None, None) => (None, None),
    }
}

/// Runs a front backend and records its stat (plus per-worker search
/// telemetry when the backend runs a parallel search).
fn timed_front(
    backend: &dyn Solver,
    req: &SolveRequest<'_>,
    stats: &mut Vec<SolverStat>,
    parallel: &mut Vec<(&'static str, SearchStats)>,
) -> Budgeted<ParetoFront<IntervalMapping>> {
    let start = Instant::now();
    let (outcome, search) = backend.solve_front_stats(req.pipeline, req.platform, req.budget);
    stats.push(SolverStat {
        solver: backend.name(),
        elapsed_us: elapsed_us(start),
        complete: outcome.is_complete(),
        produced: !outcome.inner().is_empty(),
        parallel: search.as_ref().map(ParallelSummary::from_search),
    });
    if let Some(search) = search {
        parallel.push((backend.name(), search));
    }
    outcome
}

/// Records a point backend's stat.
fn push_point_stat(
    stats: &mut Vec<SolverStat>,
    solver: &'static str,
    start: Instant,
    outcome: &Budgeted<Option<BiSolution>>,
    search: Option<&SearchStats>,
) {
    stats.push(SolverStat {
        solver,
        elapsed_us: elapsed_us(start),
        complete: outcome.is_complete(),
        produced: outcome.inner().is_some(),
        parallel: search.map(ParallelSummary::from_search),
    });
}

fn elapsed_us(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX)
}

// ---------------------------------------------------------------------------
// Stock backend registrations
// ---------------------------------------------------------------------------

/// The bitmask DP on uniform-link platforms (`m ≤ 16`): the whole exact
/// front in one `O(n²·3^m)` pass; threshold answers are reads off it.
#[derive(Clone, Copy, Debug, Default)]
pub struct BitmaskDpSolver;

impl Solver for BitmaskDpSolver {
    fn name(&self) -> &'static str {
        "bitmask-dp"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            classes: ClassSet::UNIFORM_LINKS,
            objectives: ObjectiveSet::BOTH,
            shapes: AnswerShapes {
                points: true,
                fronts: true,
            },
            max_stages: None,
            max_procs: Some(16),
            exactness: Exactness::Exact,
            budget_aware: true,
            seedable: false,
            race_member: false,
            front_exact: true,
            threads: 1,
        }
    }

    fn solve_point(
        &self,
        pipeline: &Pipeline,
        platform: &Platform,
        objective: Objective,
        budget: &Budget,
    ) -> Budgeted<Option<BiSolution>> {
        solve_comm_homog_with_budget(pipeline, platform, objective, budget)
            .expect("applicability checked: uniform bandwidth")
    }

    fn solve_front(
        &self,
        pipeline: &Pipeline,
        platform: &Platform,
        budget: &Budget,
    ) -> Budgeted<ParetoFront<IntervalMapping>> {
        pareto_front_comm_homog_with_budget(pipeline, platform, budget)
            .expect("applicability checked: uniform bandwidth")
    }
}

/// The branch-and-bound threshold solver (any class, `m ≤ 12`
/// sequential, `m ≤ 14` with a multi-thread worker pool): exact point
/// answers with heuristic-seeded pruning. Answers are byte-identical at
/// every thread count.
#[derive(Clone, Copy, Debug)]
pub struct BranchBoundSolver {
    /// Worker threads for the cooperative search (`0` = one per
    /// available core, `1` = sequential).
    pub threads: usize,
}

impl Default for BranchBoundSolver {
    fn default() -> Self {
        BranchBoundSolver { threads: 1 }
    }
}

impl Solver for BranchBoundSolver {
    fn name(&self) -> &'static str {
        "branch-bound"
    }

    fn capabilities(&self) -> Capabilities {
        let threads = crate::par::resolve_threads(self.threads);
        Capabilities {
            classes: ClassSet::ALL,
            objectives: ObjectiveSet::BOTH,
            shapes: AnswerShapes {
                points: true,
                fronts: false,
            },
            max_stages: None,
            max_procs: Some(if threads > 1 { 14 } else { 12 }),
            exactness: Exactness::Exact,
            budget_aware: true,
            seedable: true,
            race_member: false,
            front_exact: false,
            threads,
        }
    }

    fn solve_point(
        &self,
        pipeline: &Pipeline,
        platform: &Platform,
        objective: Objective,
        budget: &Budget,
    ) -> Budgeted<Option<BiSolution>> {
        BranchBound::new(pipeline, platform)
            .with_threads(self.threads)
            .solve_with_budget(objective, budget)
    }

    fn solve_point_seeded(
        &self,
        pipeline: &Pipeline,
        platform: &Platform,
        objective: Objective,
        budget: &Budget,
        incumbent: Option<BiSolution>,
    ) -> Budgeted<Option<BiSolution>> {
        self.solve_point_seeded_stats(pipeline, platform, objective, budget, incumbent)
            .0
    }

    fn solve_point_seeded_stats(
        &self,
        pipeline: &Pipeline,
        platform: &Platform,
        objective: Objective,
        budget: &Budget,
        incumbent: Option<BiSolution>,
    ) -> (Budgeted<Option<BiSolution>>, Option<SearchStats>) {
        let (outcome, stats) = BranchBound::new(pipeline, platform)
            .with_threads(self.threads)
            .solve_with_budget_seeded_stats(objective, budget, incumbent);
        (outcome, Some(stats))
    }
}

/// The exhaustive oracle (any class, `m ≤ 6`): full enumeration with
/// replication, yield-ordered so cutoff fronts cover the extremes first.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExhaustiveSolver;

impl Solver for ExhaustiveSolver {
    fn name(&self) -> &'static str {
        "exhaustive"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            classes: ClassSet::ALL,
            objectives: ObjectiveSet::BOTH,
            shapes: AnswerShapes {
                points: true,
                fronts: true,
            },
            max_stages: None,
            max_procs: Some(6),
            exactness: Exactness::Anytime,
            budget_aware: true,
            seedable: false,
            race_member: false,
            front_exact: true,
            threads: 1,
        }
    }

    fn solve_point(
        &self,
        pipeline: &Pipeline,
        platform: &Platform,
        objective: Objective,
        budget: &Budget,
    ) -> Budgeted<Option<BiSolution>> {
        crate::exact::Exhaustive::new(pipeline, platform).solve_with_budget(objective, budget)
    }

    fn solve_front(
        &self,
        pipeline: &Pipeline,
        platform: &Platform,
        budget: &Budget,
    ) -> Budgeted<ParetoFront<IntervalMapping>> {
        crate::exact::Exhaustive::new(pipeline, platform).pareto_front_with_budget(budget)
    }
}

/// The branch-and-bound ε-constraint sweep (any class, `m ≤ 12`
/// sequential, `m ≤ 14` with a multi-thread worker pool): enumerates the
/// exact front point by point — anytime by construction. Fronts are
/// byte-identical at every thread count.
#[derive(Clone, Copy, Debug)]
pub struct BnbSweepSolver {
    /// Worker threads for the cooperative search within each ε-step
    /// (`0` = one per available core, `1` = sequential).
    pub threads: usize,
    /// Seed for the first ε-step's heuristic incumbent.
    pub seed: u64,
}

impl Default for BnbSweepSolver {
    fn default() -> Self {
        let sweep = BranchBoundSweep::default();
        BnbSweepSolver {
            threads: sweep.threads,
            seed: sweep.seed,
        }
    }
}

impl Solver for BnbSweepSolver {
    fn name(&self) -> &'static str {
        "bnb-sweep"
    }

    fn capabilities(&self) -> Capabilities {
        let threads = crate::par::resolve_threads(self.threads);
        Capabilities {
            classes: ClassSet::ALL,
            objectives: ObjectiveSet::BOTH,
            shapes: AnswerShapes {
                points: false,
                fronts: true,
            },
            max_stages: None,
            max_procs: Some(if threads > 1 { 14 } else { 12 }),
            exactness: Exactness::Anytime,
            budget_aware: true,
            seedable: false,
            race_member: false,
            front_exact: true,
            threads,
        }
    }

    fn solve_front(
        &self,
        pipeline: &Pipeline,
        platform: &Platform,
        budget: &Budget,
    ) -> Budgeted<ParetoFront<IntervalMapping>> {
        self.solve_front_stats(pipeline, platform, budget).0
    }

    fn solve_front_stats(
        &self,
        pipeline: &Pipeline,
        platform: &Platform,
        budget: &Budget,
    ) -> (Budgeted<ParetoFront<IntervalMapping>>, Option<SearchStats>) {
        let sweep = BranchBoundSweep {
            threads: self.threads,
            seed: self.seed,
        };
        let (outcome, stats) = sweep.front_with_budget_stats(pipeline, platform, budget);
        (outcome, Some(stats))
    }
}

/// The exact interval DP (any class, `m ≤ 16`, no replication): produces
/// the latency extreme of the front as a one-point *partial* front (its
/// point is exact — replication never reduces latency — but a one-point
/// front is never the whole front, hence `front_exact: false`).
#[derive(Clone, Copy, Debug, Default)]
pub struct IntervalDpSolver;

impl Solver for IntervalDpSolver {
    fn name(&self) -> &'static str {
        "interval-dp"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            classes: ClassSet::ALL,
            objectives: ObjectiveSet::LATENCY_ONLY,
            shapes: AnswerShapes {
                points: false,
                fronts: true,
            },
            max_stages: None,
            max_procs: Some(16),
            exactness: Exactness::Exact,
            budget_aware: true,
            seedable: false,
            race_member: false,
            front_exact: false,
            threads: 1,
        }
    }

    fn solve_front(
        &self,
        pipeline: &Pipeline,
        platform: &Platform,
        budget: &Budget,
    ) -> Budgeted<ParetoFront<IntervalMapping>> {
        IntervalDpFront.front_with_budget(pipeline, platform, budget)
    }
}

/// The one-to-one mapping heuristic (greedy + 2-opt over Theorem 3's
/// TSP-shaped problem): latency-oriented answers from the
/// no-replication, one-stage-per-processor family. Requires `n ≤ m`;
/// not a default race member (its family is too restrictive to improve
/// the portfolio, but it remains individually invocable).
#[derive(Clone, Copy, Debug, Default)]
pub struct OneToOneSolver;

impl Solver for OneToOneSolver {
    fn name(&self) -> &'static str {
        "one-to-one"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            classes: ClassSet::ALL,
            objectives: ObjectiveSet::LATENCY_ONLY,
            shapes: AnswerShapes {
                points: true,
                fronts: false,
            },
            max_stages: None,
            max_procs: None,
            exactness: Exactness::Heuristic,
            budget_aware: false,
            seedable: false,
            race_member: false,
            front_exact: false,
            threads: 1,
        }
    }

    fn applicable(&self, pipeline: &Pipeline, platform: &Platform) -> bool {
        self.capabilities().admits(pipeline, platform) && pipeline.n_stages() <= platform.n_procs()
    }

    fn solve_point(
        &self,
        pipeline: &Pipeline,
        platform: &Platform,
        objective: Objective,
        _budget: &Budget,
    ) -> Budgeted<Option<BiSolution>> {
        let answer = one_to_one::solve_one_to_one(pipeline, platform).and_then(|(mapping, _)| {
            let mapping = mapping.to_interval_mapping(platform.n_procs());
            let sol = BiSolution::evaluate(mapping, pipeline, platform);
            objective
                .feasible(sol.latency, sol.failure_prob)
                .then_some(sol)
        });
        Budgeted::Complete(answer)
    }
}

/// The single-interval family search (any class): exact within its family
/// on uniform links, greedy orders beyond — a heuristic overall. First
/// member of the default race.
#[derive(Clone, Copy, Debug, Default)]
pub struct SingleIntervalSolver;

impl Solver for SingleIntervalSolver {
    fn name(&self) -> &'static str {
        "single-interval"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            classes: ClassSet::ALL,
            objectives: ObjectiveSet::BOTH,
            shapes: AnswerShapes {
                points: true,
                fronts: false,
            },
            max_stages: None,
            max_procs: None,
            exactness: Exactness::Heuristic,
            budget_aware: false,
            seedable: false,
            race_member: true,
            front_exact: false,
            threads: 1,
        }
    }

    fn solve_point(
        &self,
        pipeline: &Pipeline,
        platform: &Platform,
        objective: Objective,
        _budget: &Budget,
    ) -> Budgeted<Option<BiSolution>> {
        Budgeted::Complete(single_interval::best_single_interval(
            pipeline, platform, objective,
        ))
    }
}

/// The split DP (uniform links): exact Pareto DP restricted to processor
/// orders, a portfolio of three orders — a heuristic overall.
#[derive(Clone, Copy, Debug, Default)]
pub struct SplitDpSolver;

impl Solver for SplitDpSolver {
    fn name(&self) -> &'static str {
        "split-dp"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            classes: ClassSet::UNIFORM_LINKS,
            objectives: ObjectiveSet::BOTH,
            shapes: AnswerShapes {
                points: true,
                fronts: false,
            },
            max_stages: None,
            max_procs: None,
            exactness: Exactness::Heuristic,
            budget_aware: false,
            seedable: false,
            race_member: true,
            front_exact: false,
            threads: 1,
        }
    }

    fn solve_point(
        &self,
        pipeline: &Pipeline,
        platform: &Platform,
        objective: Objective,
        _budget: &Budget,
    ) -> Budgeted<Option<BiSolution>> {
        Budgeted::Complete(
            split_dp::solve(pipeline, platform, objective)
                .expect("applicability checked: uniform bandwidth"),
        )
    }
}

/// Multi-start steepest descent over the 7-move neighborhood (any class),
/// budget-aware.
#[derive(Clone, Copy, Debug)]
pub struct LocalSearchSolver {
    /// Seed for the random restarts.
    pub seed: u64,
}

impl Solver for LocalSearchSolver {
    fn name(&self) -> &'static str {
        "local-search"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            classes: ClassSet::ALL,
            objectives: ObjectiveSet::BOTH,
            shapes: AnswerShapes {
                points: true,
                fronts: false,
            },
            max_stages: None,
            max_procs: None,
            exactness: Exactness::Heuristic,
            budget_aware: true,
            seedable: false,
            race_member: true,
            front_exact: false,
            threads: 1,
        }
    }

    fn solve_point(
        &self,
        pipeline: &Pipeline,
        platform: &Platform,
        objective: Objective,
        budget: &Budget,
    ) -> Budgeted<Option<BiSolution>> {
        local_search::LocalSearch {
            seed: self.seed,
            ..LocalSearch::default()
        }
        .solve_with_budget(pipeline, platform, objective, budget)
    }
}

/// Penalty-based simulated annealing (any class), budget-aware.
#[derive(Clone, Copy, Debug)]
pub struct AnnealingSolver {
    /// Seed for the annealing schedule.
    pub seed: u64,
}

impl Solver for AnnealingSolver {
    fn name(&self) -> &'static str {
        "annealing"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            classes: ClassSet::ALL,
            objectives: ObjectiveSet::BOTH,
            shapes: AnswerShapes {
                points: true,
                fronts: false,
            },
            max_stages: None,
            max_procs: None,
            exactness: Exactness::Heuristic,
            budget_aware: true,
            seedable: false,
            race_member: true,
            front_exact: false,
            threads: 1,
        }
    }

    fn solve_point(
        &self,
        pipeline: &Pipeline,
        platform: &Platform,
        objective: Objective,
        budget: &Budget,
    ) -> Budgeted<Option<BiSolution>> {
        annealing::Annealing {
            seed: self.seed,
            ..Annealing::default()
        }
        .solve_with_budget(pipeline, platform, objective, budget)
    }
}

/// Uniform random sampling baseline (any class), budget-aware.
#[derive(Clone, Copy, Debug)]
pub struct RandomSearchSolver {
    /// Seed for the sampler.
    pub seed: u64,
}

impl Solver for RandomSearchSolver {
    fn name(&self) -> &'static str {
        "random-search"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            classes: ClassSet::ALL,
            objectives: ObjectiveSet::BOTH,
            shapes: AnswerShapes {
                points: true,
                fronts: false,
            },
            max_stages: None,
            max_procs: None,
            exactness: Exactness::Heuristic,
            budget_aware: true,
            seedable: false,
            race_member: true,
            front_exact: false,
            threads: 1,
        }
    }

    fn solve_point(
        &self,
        pipeline: &Pipeline,
        platform: &Platform,
        objective: Objective,
        budget: &Budget,
    ) -> Budgeted<Option<BiSolution>> {
        random_search::RandomSearch {
            seed: self.seed,
            ..RandomSearch::default()
        }
        .solve_with_budget(pipeline, platform, objective, budget)
    }
}

/// The heuristic portfolio as a front producer (any class): a grid of
/// threshold solves between the Theorem 1 reliability extreme and the
/// least reliable useful point, plus the interval-DP latency anchor where
/// it applies. The universal front fallback; never claims exactness.
#[derive(Clone, Copy, Debug)]
pub struct PortfolioFrontSolver {
    /// The underlying grid-sweep configuration.
    pub front: PortfolioFront,
}

impl Solver for PortfolioFrontSolver {
    fn name(&self) -> &'static str {
        "portfolio-front"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            classes: ClassSet::ALL,
            objectives: ObjectiveSet::BOTH,
            shapes: AnswerShapes {
                points: false,
                fronts: true,
            },
            max_stages: None,
            max_procs: None,
            exactness: Exactness::Heuristic,
            budget_aware: true,
            seedable: false,
            race_member: false,
            front_exact: false,
            threads: 1,
        }
    }

    fn solve_front(
        &self,
        pipeline: &Pipeline,
        platform: &Platform,
        budget: &Budget,
    ) -> Budgeted<ParetoFront<IntervalMapping>> {
        self.front.front_with_budget(pipeline, platform, budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristics::Portfolio;
    use rpwf_core::assert_approx_eq;
    use rpwf_core::platform::FailureClass;

    fn engine() -> Engine {
        Engine::with_default_backends(0xCAFE)
    }

    fn instance(class: PlatformClass, n: usize, m: usize, seed: u64) -> (Pipeline, Platform) {
        let inst = rpwf_gen::make_instance(class, FailureClass::Heterogeneous, n, m, seed);
        (inst.pipeline, inst.platform)
    }

    #[test]
    fn traced_solve_records_plan_and_solver_spans() {
        use rpwf_core::trace::{Trace, TraceId, TraceScope};

        let engine = engine();
        let (pipe, pf) = instance(PlatformClass::CommHomogeneous, 3, 4, 7);
        let safest = crate::mono::minimize_failure(&pipe, &pf);
        let trace = Trace::new(TraceId::next(), Instant::now());
        let root = trace.begin_root("request");
        let req = SolveRequest {
            pipeline: &pipe,
            platform: &pf,
            want: Want::Point {
                objective: Objective::MinFpUnderLatency(safest.latency * 1.5),
                keep_front: false,
            },
            budget: &Budget::unlimited(),
        };
        let traced = engine.solve_traced(&req, Some(TraceScope::new(&trace, root.index())));
        trace.end(&root);
        let untraced = engine.solve(&req);
        assert_eq!(
            traced.point(),
            untraced.point(),
            "tracing must not change answers"
        );

        let tree = trace.finish();
        let plan = tree
            .spans
            .iter()
            .find(|s| s.name == "engine.plan")
            .expect("plan span");
        assert_eq!(plan.parent, Some(0));
        let attr = |key: &str| {
            plan.attrs
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.as_str())
        };
        assert_eq!(attr("want"), Some("point"));
        assert_eq!(attr("plan"), Some("point-race"));
        assert_eq!(attr("backend"), Some("bitmask-dp"));
        assert_eq!(attr("budget_exhausted"), Some("false"));
        assert!(attr("race").expect("race attr").contains("local-search"));
        let solver_spans: Vec<_> = tree
            .spans
            .iter()
            .filter(|s| s.name.starts_with("solver."))
            .collect();
        assert_eq!(
            solver_spans.len(),
            traced.stats.len(),
            "one span per solver stat"
        );
        for span in solver_spans {
            assert!(span.name.len() > "solver.".len());
        }
    }

    #[test]
    fn traced_parallel_solve_records_worker_spans() {
        use rpwf_core::trace::{Trace, TraceId, TraceScope};

        let parallel = Engine::with_parallel_backends(0xCAFE, 4);
        let (pipe, pf) = instance(PlatformClass::FullyHeterogeneous, 4, 8, 7);
        let safest = crate::mono::minimize_failure(&pipe, &pf);
        let trace = Trace::new(TraceId::next(), Instant::now());
        let root = trace.begin_root("request");
        let req = SolveRequest {
            pipeline: &pipe,
            platform: &pf,
            want: Want::Point {
                objective: Objective::MinFpUnderLatency(safest.latency * 1.5),
                keep_front: false,
            },
            budget: &Budget::unlimited(),
        };
        let traced = parallel.solve_traced(&req, Some(TraceScope::new(&trace, root.index())));
        trace.end(&root);
        assert_eq!(
            traced.point(),
            engine().solve(&req).point(),
            "parallel engine must answer identically to sequential"
        );

        let tree = trace.finish();
        let bnb = tree
            .spans
            .iter()
            .position(|s| s.name == "solver.branch-bound")
            .expect("branch-bound solver span");
        let workers: Vec<_> = tree
            .spans
            .iter()
            .filter(|s| s.name == "solver.bnb.worker")
            .collect();
        assert_eq!(workers.len(), 4, "one span per worker thread");
        for span in &workers {
            assert_eq!(span.parent, Some(bnb as u32), "nested under the solver");
            for key in ["worker", "nodes", "units_executed", "units_stolen"] {
                assert!(
                    span.attrs.iter().any(|(k, _)| k == key),
                    "worker span carries {key}"
                );
            }
        }
        let executed: u64 = workers
            .iter()
            .map(|s| {
                s.attrs
                    .iter()
                    .find(|(k, _)| k == "units_executed")
                    .and_then(|(_, v)| v.parse::<u64>().ok())
                    .expect("units_executed parses")
            })
            .sum();
        let (_, search) = traced
            .parallel
            .iter()
            .find(|(name, _)| *name == "branch-bound")
            .expect("parallel search stats");
        assert_eq!(executed, search.units_executed());
    }

    #[test]
    fn backend_selection_mirrors_the_legacy_policy() {
        let engine = engine();
        let (pipe, pf) = instance(PlatformClass::FullyHeterogeneous, 3, 4, 1);
        assert_eq!(
            engine.front_backend(&pipe, &pf).expect("m=4").name(),
            "exhaustive"
        );
        let (pipe, pf) = instance(PlatformClass::FullyHeterogeneous, 3, 10, 1);
        assert_eq!(
            engine.front_backend(&pipe, &pf).expect("m=10").name(),
            "bnb-sweep"
        );
        let (pipe, pf) = instance(PlatformClass::CommHomogeneous, 3, 10, 1);
        assert_eq!(
            engine.front_backend(&pipe, &pf).expect("comm-homog").name(),
            "bitmask-dp"
        );
        let (pipe, pf) = instance(PlatformClass::FullyHeterogeneous, 3, 14, 1);
        assert!(
            engine.front_backend(&pipe, &pf).is_none(),
            "m=14 het: heuristics only"
        );

        // Point backends: the DP on uniform links, branch-and-bound beyond
        // (shadowing the exhaustive oracle, exactly like the legacy race).
        let objective = Objective::MinFpUnderLatency(10.0);
        let (pipe, pf) = instance(PlatformClass::CommHomogeneous, 3, 10, 1);
        assert_eq!(
            engine
                .point_backend(&pipe, &pf, objective)
                .expect("ch")
                .name(),
            "bitmask-dp"
        );
        let (pipe, pf) = instance(PlatformClass::FullyHeterogeneous, 3, 5, 1);
        assert_eq!(
            engine
                .point_backend(&pipe, &pf, objective)
                .expect("het m=5")
                .name(),
            "branch-bound"
        );
        let (pipe, pf) = instance(PlatformClass::FullyHeterogeneous, 3, 14, 1);
        assert!(engine.point_backend(&pipe, &pf, objective).is_none());
    }

    #[test]
    fn point_race_equals_legacy_portfolio_race() {
        let engine = engine();
        for (class, m) in [
            (PlatformClass::CommHomogeneous, 5),
            (PlatformClass::FullyHeterogeneous, 5),
            (PlatformClass::FullyHeterogeneous, 14),
        ] {
            let (pipe, pf) = instance(class, 3, m, 11);
            let objective =
                Objective::MinFpUnderLatency(crate::mono::minimize_failure(&pipe, &pf).latency);
            let report = engine.solve(&SolveRequest {
                pipeline: &pipe,
                platform: &pf,
                want: Want::Point {
                    objective,
                    keep_front: false,
                },
                budget: &Budget::unlimited(),
            });
            let legacy = Portfolio::new(0xCAFE).race(&pipe, &pf, objective, &Budget::unlimited());
            assert_eq!(
                serde_json::to_string(&report.point().cloned()).unwrap(),
                serde_json::to_string(&legacy.best).unwrap(),
                "class {class:?} m={m}"
            );
            assert_eq!(report.completeness.exact_capable, legacy.exact_attempted);
            assert_eq!(report.completeness.exact_complete, legacy.exact_complete);
            assert_eq!(
                report.completeness.heuristic_complete,
                legacy.heuristic_complete
            );
            assert!(!report.stats.is_empty(), "per-solver stats recorded");
        }
    }

    #[test]
    fn point_via_front_reports_the_front_byproduct() {
        let engine = engine();
        let pipe = rpwf_gen::figure5_pipeline();
        let pf = rpwf_gen::figure5_platform();
        let report = engine.solve(&SolveRequest {
            pipeline: &pipe,
            platform: &pf,
            want: Want::Point {
                objective: Objective::MinFpUnderLatency(22.0),
                keep_front: true,
            },
            budget: &Budget::unlimited(),
        });
        let sol = report.point().expect("feasible");
        assert_approx_eq!(sol.failure_prob, 1.0 - 0.9 * (1.0 - 0.8f64.powi(10)));
        assert_eq!(report.provenance, Some(Provenance::Exact));
        let artifact = report.front.as_ref().expect("front by-product");
        assert!(artifact.complete);
        // The by-product answers later queries directly.
        assert!(threshold_read(&artifact.front, Objective::MinLatencyUnderFp(0.9)).is_some());
    }

    #[test]
    fn front_request_beyond_exact_backends_falls_back_to_the_portfolio() {
        let engine = engine();
        let (pipe, pf) = instance(PlatformClass::FullyHeterogeneous, 4, 14, 2);
        let report = engine.solve(&SolveRequest {
            pipeline: &pipe,
            platform: &pf,
            want: Want::Front,
            budget: &Budget::unlimited(),
        });
        assert_eq!(report.provenance, Some(Provenance::Heuristic));
        assert!(!report.completeness.exact_capable);
        assert!(!report.completeness.exact_complete);
        let front = report.front_answer().expect("front");
        assert!(!front.is_empty() && front.invariant_holds());
        assert_eq!(report.stats.len(), 1);
        assert_eq!(report.stats[0].solver, "portfolio-front");
    }

    #[test]
    fn expired_budget_yields_a_cutoff_not_a_proof() {
        let engine = engine();
        let pipe = rpwf_gen::figure5_pipeline();
        let pf = rpwf_gen::figure5_platform();
        let expired = Budget::with_deadline(std::time::Duration::ZERO);
        let report = engine.solve(&SolveRequest {
            pipeline: &pipe,
            platform: &pf,
            want: Want::Point {
                objective: Objective::MinFpUnderLatency(22.0),
                keep_front: false,
            },
            budget: &expired,
        });
        assert!(report.completeness.exact_capable);
        assert!(!report.completeness.exact_complete);
        assert!(!report.completeness.cacheable_point());
    }

    #[test]
    fn provenance_serializes_to_the_stable_wire_strings() {
        assert_eq!(
            serde_json::to_string(&Provenance::Exact).unwrap(),
            "\"exact\""
        );
        assert_eq!(
            serde_json::to_string(&Provenance::Heuristic).unwrap(),
            "\"heuristic\""
        );
        let parsed: Provenance = serde_json::from_str("\"heuristic\"").unwrap();
        assert_eq!(parsed, Provenance::Heuristic);
        assert!(serde_json::from_str::<Provenance>("\"bogus\"").is_err());
        assert_eq!(Provenance::Exact.to_string(), "exact");
    }

    #[test]
    fn one_to_one_is_registered_but_outside_the_race() {
        let engine = engine();
        let solver = engine.solver("one-to-one").expect("registered");
        let caps = solver.capabilities();
        assert!(!caps.race_member);
        assert!(!caps.objectives.min_fp_under_latency);
        // n > m: the family does not apply.
        let (pipe, pf) = instance(PlatformClass::FullyHeterogeneous, 6, 4, 3);
        assert!(!solver.applicable(&pipe, &pf));
        // n ≤ m: it answers with a valid evaluated mapping.
        let (pipe, pf) = instance(PlatformClass::FullyHeterogeneous, 3, 5, 3);
        assert!(solver.applicable(&pipe, &pf));
        let sol = solver
            .solve_point(
                &pipe,
                &pf,
                Objective::MinLatencyUnderFp(1.0),
                &Budget::unlimited(),
            )
            .into_inner()
            .expect("FP ≤ 1 always feasible");
        let re = BiSolution::evaluate(sol.mapping.clone(), &pipe, &pf);
        assert_approx_eq!(re.latency, sol.latency);
    }

    #[test]
    fn registry_is_extensible_and_queryable() {
        let engine = engine();
        assert_eq!(engine.solvers().len(), 12);
        let names: Vec<&str> = engine.solvers().iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec![
                "bitmask-dp",
                "branch-bound",
                "exhaustive",
                "bnb-sweep",
                "interval-dp",
                "one-to-one",
                "single-interval",
                "split-dp",
                "local-search",
                "annealing",
                "random-search",
                "portfolio-front",
            ]
        );
        assert!(engine.solver("bitmask-dp").is_some());
        assert!(engine.solver("bogus").is_none());
    }
}
