//! Neighborhood moves on interval mappings, shared by the local-search and
//! annealing heuristics.
//!
//! A neighbor differs from the current mapping by exactly one structural
//! move. The move set is closed over the validity constraints (contiguous
//! cover, non-empty disjoint allocations), so every produced mapping is
//! valid by construction:
//!
//! 1. **shift** an interval boundary left/right by one stage,
//! 2. **merge** two adjacent intervals (pooling their replicas),
//! 3. **split** an interval between two stages, dividing its replica set,
//! 4. **grow** an interval's replica set with an unused processor,
//! 5. **shrink** a replica set (drop one replica, if ≥ 2 remain),
//! 6. **swap** a replica for an unused processor,
//! 7. **migrate** a replica from one interval to another.

use rand::seq::SliceRandom;
use rand::Rng;
use rpwf_core::mapping::{Interval, IntervalMapping};
use rpwf_core::platform::ProcId;

/// All single-move neighbors of `mapping` on an `n_procs` platform.
#[must_use]
pub fn neighbors(mapping: &IntervalMapping, n_procs: usize) -> Vec<IntervalMapping> {
    let mut out = Vec::new();
    let n = mapping.n_stages();
    let p = mapping.n_intervals();
    let used = mapping.used_processors();
    let free: Vec<ProcId> = (0..n_procs)
        .map(ProcId::new)
        .filter(|pid| used.binary_search(pid).is_err())
        .collect();

    let intervals = mapping.intervals().to_vec();
    let alloc: Vec<Vec<ProcId>> = (0..p).map(|j| mapping.alloc(j).to_vec()).collect();

    let rebuild = |ivs: Vec<Interval>, al: Vec<Vec<ProcId>>| -> Option<IntervalMapping> {
        IntervalMapping::new(ivs, al, n, n_procs).ok()
    };

    // 1. Boundary shifts.
    for j in 0..p.saturating_sub(1) {
        let (a, b) = (intervals[j], intervals[j + 1]);
        // Shift right: move first stage of b into a.
        if b.len() >= 2 {
            let mut ivs = intervals.clone();
            ivs[j] = Interval::new(a.start(), a.end() + 1).expect("grows right");
            ivs[j + 1] = Interval::new(b.start() + 1, b.end()).expect("shrinks left");
            out.extend(rebuild(ivs, alloc.clone()));
        }
        // Shift left: move last stage of a into b.
        if a.len() >= 2 {
            let mut ivs = intervals.clone();
            ivs[j] = Interval::new(a.start(), a.end() - 1).expect("shrinks right");
            ivs[j + 1] = Interval::new(b.start() - 1, b.end()).expect("grows left");
            out.extend(rebuild(ivs, alloc.clone()));
        }
    }

    // 2. Merges.
    for j in 0..p.saturating_sub(1) {
        let mut ivs = Vec::with_capacity(p - 1);
        let mut al = Vec::with_capacity(p - 1);
        for i in 0..p {
            if i == j {
                ivs.push(
                    Interval::new(intervals[j].start(), intervals[j + 1].end())
                        .expect("adjacent merge"),
                );
                al.push([alloc[j].as_slice(), alloc[j + 1].as_slice()].concat());
            } else if i != j + 1 {
                ivs.push(intervals[i]);
                al.push(alloc[i].clone());
            }
        }
        out.extend(rebuild(ivs, al));
    }

    // 3. Splits (replica set divided; needs ≥ 2 replicas and ≥ 2 stages).
    for j in 0..p {
        let iv = intervals[j];
        if iv.len() < 2 || alloc[j].len() < 2 {
            continue;
        }
        for cut in iv.start()..iv.end() {
            let mut ivs = Vec::with_capacity(p + 1);
            let mut al = Vec::with_capacity(p + 1);
            for i in 0..p {
                if i == j {
                    ivs.push(Interval::new(iv.start(), cut).expect("cut in range"));
                    ivs.push(Interval::new(cut + 1, iv.end()).expect("cut in range"));
                    let half = alloc[j].len() / 2;
                    al.push(alloc[j][..half].to_vec());
                    al.push(alloc[j][half..].to_vec());
                } else {
                    ivs.push(intervals[i]);
                    al.push(alloc[i].clone());
                }
            }
            out.extend(rebuild(ivs, al));
        }
    }

    // 4. Grow with a free processor.
    for j in 0..p {
        for &f in &free {
            let mut al = alloc.clone();
            al[j].push(f);
            out.extend(rebuild(intervals.clone(), al));
        }
    }

    // 5. Shrink.
    for j in 0..p {
        if alloc[j].len() < 2 {
            continue;
        }
        for r in 0..alloc[j].len() {
            let mut al = alloc.clone();
            al[j].remove(r);
            out.extend(rebuild(intervals.clone(), al));
        }
    }

    // 6. Swap used ↔ free.
    for j in 0..p {
        for r in 0..alloc[j].len() {
            for &f in &free {
                let mut al = alloc.clone();
                al[j][r] = f;
                out.extend(rebuild(intervals.clone(), al));
            }
        }
    }

    // 7. Migrate a replica between intervals.
    for j in 0..p {
        if alloc[j].len() < 2 {
            continue;
        }
        for r in 0..alloc[j].len() {
            for j2 in 0..p {
                if j2 == j {
                    continue;
                }
                let mut al = alloc.clone();
                let moved = al[j].remove(r);
                al[j2].push(moved);
                out.extend(rebuild(intervals.clone(), al));
            }
        }
    }

    out
}

/// One uniformly chosen neighbor (for annealing); `None` when the mapping
/// has no neighbor (single stage, single processor platform).
#[must_use]
pub fn random_neighbor<R: Rng + ?Sized>(
    mapping: &IntervalMapping,
    n_procs: usize,
    rng: &mut R,
) -> Option<IntervalMapping> {
    let all = neighbors(mapping, n_procs);
    all.choose(rng).cloned()
}

/// A uniformly random valid interval mapping: random boundary mask (capped
/// at `m` parts), random processor subset and deal.
#[must_use]
pub fn random_mapping<R: Rng + ?Sized>(
    n_stages: usize,
    n_procs: usize,
    rng: &mut R,
) -> IntervalMapping {
    // Random partition.
    let mut intervals = Vec::new();
    let mut start = 0usize;
    for i in 0..n_stages - 1 {
        // Bias toward few intervals: boundary probability 1/3.
        if intervals.len() + 1 < n_procs && rng.gen_bool(1.0 / 3.0) {
            intervals.push(Interval::new(start, i).expect("ordered"));
            start = i + 1;
        }
    }
    intervals.push(Interval::new(start, n_stages - 1).expect("ordered"));
    let p = intervals.len();

    // Random processor deal: shuffle, take a random count ≥ p, round-robin.
    let mut procs: Vec<ProcId> = (0..n_procs).map(ProcId::new).collect();
    procs.shuffle(rng);
    let used = rng.gen_range(p..=n_procs);
    let mut alloc: Vec<Vec<ProcId>> = vec![Vec::new(); p];
    for (i, &pid) in procs[..used].iter().enumerate() {
        alloc[i % p].push(pid);
    }
    IntervalMapping::new(intervals, alloc, n_stages, n_procs)
        .expect("constructed to satisfy all constraints")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn p(i: u32) -> ProcId {
        ProcId(i)
    }

    fn sample_mapping() -> IntervalMapping {
        IntervalMapping::new(
            vec![Interval::new(0, 1).unwrap(), Interval::new(2, 3).unwrap()],
            vec![vec![p(0), p(1)], vec![p(2)]],
            4,
            5,
        )
        .unwrap()
    }

    #[test]
    fn all_neighbors_are_valid_and_distinct_from_origin() {
        let m = sample_mapping();
        let ns = neighbors(&m, 5);
        assert!(!ns.is_empty());
        for nb in &ns {
            assert_eq!(nb.n_stages(), 4);
            assert_ne!(nb, &m);
        }
    }

    #[test]
    fn move_types_are_represented() {
        let m = sample_mapping();
        let ns = neighbors(&m, 5);
        // merge present: 1 interval
        assert!(ns.iter().any(|nb| nb.n_intervals() == 1));
        // split present: 3 intervals (interval 0 has 2 stages + 2 replicas)
        assert!(ns.iter().any(|nb| nb.n_intervals() == 3));
        // grow: some neighbor uses 4 processors
        assert!(ns.iter().any(|nb| nb.total_replicas() == 4));
        // shrink: some neighbor uses 2 processors
        assert!(ns.iter().any(|nb| nb.total_replicas() == 2));
        // swap: P3 or P4 appear
        assert!(
            ns.iter()
                .any(|nb| nb.used_processors().contains(&p(3))
                    || nb.used_processors().contains(&p(4)))
        );
        // boundary shift: some 2-interval neighbor with different boundary
        assert!(ns
            .iter()
            .any(|nb| nb.n_intervals() == 2 && nb.interval(0).end() != 1));
    }

    #[test]
    fn single_stage_single_proc_has_no_neighbors() {
        let m = IntervalMapping::single_interval(1, vec![p(0)], 1).unwrap();
        assert!(neighbors(&m, 1).is_empty());
        let mut rng = StdRng::seed_from_u64(1);
        assert!(random_neighbor(&m, 1, &mut rng).is_none());
    }

    #[test]
    fn random_mappings_are_valid_and_diverse() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut interval_counts = std::collections::HashSet::new();
        for _ in 0..100 {
            let m = random_mapping(5, 6, &mut rng);
            assert_eq!(m.n_stages(), 5);
            interval_counts.insert(m.n_intervals());
        }
        assert!(interval_counts.len() > 1, "partitions should vary");
    }

    #[test]
    fn random_mapping_single_proc_platform() {
        let mut rng = StdRng::seed_from_u64(10);
        let m = random_mapping(4, 1, &mut rng);
        assert_eq!(m.n_intervals(), 1);
        assert_eq!(m.total_replicas(), 1);
    }

    #[test]
    fn neighbor_closure_reaches_multi_interval_shapes() {
        // From the single-interval mapping, two moves suffice to reach a
        // split mapping — the search space is connected enough.
        let m = IntervalMapping::single_interval(3, vec![p(0), p(1)], 3).unwrap();
        let first = neighbors(&m, 3);
        assert!(first.iter().any(|nb| nb.n_intervals() == 2));
    }
}
