//! Neighborhood moves on interval mappings, shared by the local-search and
//! annealing heuristics.
//!
//! A neighbor differs from the current mapping by exactly one structural
//! move. The move set is closed over the validity constraints (contiguous
//! cover, non-empty disjoint allocations), so every produced mapping is
//! valid by construction:
//!
//! 1. **shift** an interval boundary left/right by one stage,
//! 2. **merge** two adjacent intervals (pooling their replicas),
//! 3. **split** an interval between two stages, dividing its replica set,
//! 4. **grow** an interval's replica set with an unused processor,
//! 5. **shrink** a replica set (drop one replica, if ≥ 2 remain),
//! 6. **swap** a replica for an unused processor,
//! 7. **migrate** a replica from one interval to another.
//!
//! Two enumeration forms exist:
//!
//! * [`MoveStream`] — the fast path: a lazy, allocation-free cursor over
//!   [`Move`] descriptors evaluated in place against a
//!   [`DeltaEval`] (apply → score → revert), used by the heuristics;
//! * [`neighbors`] — the materializing reference: every neighbor cloned
//!   out as a full `IntervalMapping`. Kept as the ground truth the stream
//!   is property-tested against, and as the baseline the E15 experiment
//!   measures the incremental engine's speedup over.
//!
//! The stream yields moves in **exactly** the order `neighbors` produces
//! them (and [`move_count`] equals `neighbors(..).len()`), so porting a
//! solver from one form to the other cannot change its search trajectory.

use rand::seq::SliceRandom;
use rand::Rng;
use rpwf_core::eval::{DeltaEval, Move};
use rpwf_core::mapping::{Interval, IntervalMapping};
use rpwf_core::platform::ProcId;

/// Lazy cursor over the neighborhood of a [`DeltaEval`] state. Holds no
/// borrow and allocates nothing: call [`next`](Self::next) with the
/// evaluator between applications. The evaluator must be back in the
/// cursor's base state (apply followed by revert, or no move at all)
/// whenever `next` is called.
#[derive(Clone, Copy, Debug, Default)]
pub struct MoveStream {
    phase: u8,
    j: usize,
    r: usize,
    sub: usize,
}

impl MoveStream {
    /// A cursor positioned before the first move.
    #[must_use]
    pub fn new() -> Self {
        MoveStream::default()
    }

    /// The next move, in the canonical neighborhood order.
    pub fn next(&mut self, de: &DeltaEval) -> Option<Move> {
        let p = de.n_intervals();
        let nf = de.free().len();
        loop {
            match self.phase {
                // 1. Boundary shifts: per boundary, right shift then left.
                0 => {
                    while self.j + 1 < p {
                        if self.sub == 0 {
                            self.sub = 1;
                            if de.interval(self.j + 1).len() >= 2 {
                                return Some(Move::ShiftRight { j: self.j });
                            }
                        }
                        if self.sub == 1 {
                            self.sub = 2;
                            if de.interval(self.j).len() >= 2 {
                                return Some(Move::ShiftLeft { j: self.j });
                            }
                        }
                        self.j += 1;
                        self.sub = 0;
                    }
                    self.advance_phase();
                }
                // 2. Merges.
                1 => {
                    if self.j + 1 < p {
                        let j = self.j;
                        self.j += 1;
                        return Some(Move::Merge { j });
                    }
                    self.advance_phase();
                }
                // 3. Splits (≥ 2 stages and ≥ 2 replicas).
                2 => {
                    while self.j < p {
                        let iv = de.interval(self.j);
                        if iv.len() >= 2 && de.alloc(self.j).len() >= 2 {
                            let cut = iv.start() + self.sub;
                            if cut < iv.end() {
                                self.sub += 1;
                                return Some(Move::Split { j: self.j, cut });
                            }
                        }
                        self.j += 1;
                        self.sub = 0;
                    }
                    self.advance_phase();
                }
                // 4. Grow with a free processor.
                3 => {
                    while self.j < p {
                        if self.sub < nf {
                            let proc = de.free()[self.sub];
                            self.sub += 1;
                            return Some(Move::Grow { j: self.j, proc });
                        }
                        self.j += 1;
                        self.sub = 0;
                    }
                    self.advance_phase();
                }
                // 5. Shrink (≥ 2 replicas).
                4 => {
                    while self.j < p {
                        let k = de.alloc(self.j).len();
                        if k >= 2 && self.sub < k {
                            let r = self.sub;
                            self.sub += 1;
                            return Some(Move::Shrink { j: self.j, r });
                        }
                        self.j += 1;
                        self.sub = 0;
                    }
                    self.advance_phase();
                }
                // 6. Swap used ↔ free.
                5 => {
                    while self.j < p {
                        if self.r < de.alloc(self.j).len() {
                            if self.sub < nf {
                                let proc = de.free()[self.sub];
                                self.sub += 1;
                                return Some(Move::Swap {
                                    j: self.j,
                                    r: self.r,
                                    proc,
                                });
                            }
                            self.r += 1;
                            self.sub = 0;
                            continue;
                        }
                        self.j += 1;
                        self.r = 0;
                        self.sub = 0;
                    }
                    self.advance_phase();
                }
                // 7. Migrate a replica between intervals.
                6 => {
                    while self.j < p {
                        let k = de.alloc(self.j).len();
                        if k >= 2 && self.r < k {
                            while self.sub < p {
                                let to = self.sub;
                                self.sub += 1;
                                if to != self.j {
                                    return Some(Move::Migrate {
                                        j: self.j,
                                        r: self.r,
                                        to,
                                    });
                                }
                            }
                            self.r += 1;
                            self.sub = 0;
                            continue;
                        }
                        self.j += 1;
                        self.r = 0;
                        self.sub = 0;
                    }
                    self.advance_phase();
                }
                _ => return None,
            }
        }
    }

    fn advance_phase(&mut self) {
        self.phase += 1;
        self.j = 0;
        self.r = 0;
        self.sub = 0;
    }
}

/// Number of moves [`MoveStream`] will yield from this state — equals
/// `neighbors(&de.mapping(), m).len()`, in O(p) arithmetic.
#[must_use]
pub fn move_count(de: &DeltaEval) -> usize {
    let p = de.n_intervals();
    let nf = de.free().len();
    let mut count = 0usize;
    // Shifts.
    for j in 0..p.saturating_sub(1) {
        count += usize::from(de.interval(j + 1).len() >= 2);
        count += usize::from(de.interval(j).len() >= 2);
    }
    // Merges.
    count += p.saturating_sub(1);
    let mut replicas = 0usize;
    let mut movable = 0usize; // replicas in intervals with k ≥ 2
    for j in 0..p {
        let k = de.alloc(j).len();
        replicas += k;
        if k >= 2 {
            movable += k;
            // Splits.
            if de.interval(j).len() >= 2 {
                count += de.interval(j).len() - 1;
            }
        }
    }
    // Grow + shrink + swap + migrate.
    count += p * nf;
    count += movable;
    count += replicas * nf;
    count += movable * (p - 1);
    count
}

/// The `idx`-th move of the stream (`idx < move_count`).
///
/// # Panics
/// When `idx` is out of range.
#[must_use]
pub fn nth_move(de: &DeltaEval, idx: usize) -> Move {
    let mut stream = MoveStream::new();
    let mut seen = 0usize;
    while let Some(mv) = stream.next(de) {
        if seen == idx {
            return mv;
        }
        seen += 1;
    }
    panic!("nth_move: index {idx} out of range ({seen} moves)");
}

/// One uniformly chosen move (the streaming equivalent of
/// [`random_neighbor`]); `None` when the state has no neighbor. Consumes
/// the same RNG draws as `random_neighbor` — one `gen_range` when moves
/// exist, nothing otherwise — so seeded solvers keep their trajectories
/// when ported between the two forms.
#[must_use]
pub fn random_move<R: Rng + ?Sized>(de: &DeltaEval, rng: &mut R) -> Option<Move> {
    let count = move_count(de);
    if count == 0 {
        return None;
    }
    Some(nth_move(de, rng.gen_range(0..count)))
}

/// All single-move neighbors of `mapping` on an `n_procs` platform.
///
/// Materializing reference enumeration: O(n·m) cloned mappings per call.
/// Solvers use [`MoveStream`] + [`DeltaEval`] instead; this form remains
/// the property-test oracle and the E15 baseline.
#[must_use]
pub fn neighbors(mapping: &IntervalMapping, n_procs: usize) -> Vec<IntervalMapping> {
    let mut out = Vec::new();
    let n = mapping.n_stages();
    let p = mapping.n_intervals();
    let used = mapping.used_processors();
    let free: Vec<ProcId> = (0..n_procs)
        .map(ProcId::new)
        .filter(|pid| used.binary_search(pid).is_err())
        .collect();

    let intervals = mapping.intervals().to_vec();
    let alloc: Vec<Vec<ProcId>> = (0..p).map(|j| mapping.alloc(j).to_vec()).collect();

    let rebuild = |ivs: Vec<Interval>, al: Vec<Vec<ProcId>>| -> Option<IntervalMapping> {
        IntervalMapping::new(ivs, al, n, n_procs).ok()
    };

    // 1. Boundary shifts.
    for j in 0..p.saturating_sub(1) {
        let (a, b) = (intervals[j], intervals[j + 1]);
        // Shift right: move first stage of b into a.
        if b.len() >= 2 {
            let mut ivs = intervals.clone();
            ivs[j] = Interval::new(a.start(), a.end() + 1).expect("grows right");
            ivs[j + 1] = Interval::new(b.start() + 1, b.end()).expect("shrinks left");
            out.extend(rebuild(ivs, alloc.clone()));
        }
        // Shift left: move last stage of a into b.
        if a.len() >= 2 {
            let mut ivs = intervals.clone();
            ivs[j] = Interval::new(a.start(), a.end() - 1).expect("shrinks right");
            ivs[j + 1] = Interval::new(b.start() - 1, b.end()).expect("grows left");
            out.extend(rebuild(ivs, alloc.clone()));
        }
    }

    // 2. Merges.
    for j in 0..p.saturating_sub(1) {
        let mut ivs = Vec::with_capacity(p - 1);
        let mut al = Vec::with_capacity(p - 1);
        for i in 0..p {
            if i == j {
                ivs.push(
                    Interval::new(intervals[j].start(), intervals[j + 1].end())
                        .expect("adjacent merge"),
                );
                al.push([alloc[j].as_slice(), alloc[j + 1].as_slice()].concat());
            } else if i != j + 1 {
                ivs.push(intervals[i]);
                al.push(alloc[i].clone());
            }
        }
        out.extend(rebuild(ivs, al));
    }

    // 3. Splits (replica set divided; needs ≥ 2 replicas and ≥ 2 stages).
    for j in 0..p {
        let iv = intervals[j];
        if iv.len() < 2 || alloc[j].len() < 2 {
            continue;
        }
        for cut in iv.start()..iv.end() {
            let mut ivs = Vec::with_capacity(p + 1);
            let mut al = Vec::with_capacity(p + 1);
            for i in 0..p {
                if i == j {
                    ivs.push(Interval::new(iv.start(), cut).expect("cut in range"));
                    ivs.push(Interval::new(cut + 1, iv.end()).expect("cut in range"));
                    let half = alloc[j].len() / 2;
                    al.push(alloc[j][..half].to_vec());
                    al.push(alloc[j][half..].to_vec());
                } else {
                    ivs.push(intervals[i]);
                    al.push(alloc[i].clone());
                }
            }
            out.extend(rebuild(ivs, al));
        }
    }

    // 4. Grow with a free processor.
    for j in 0..p {
        for &f in &free {
            let mut al = alloc.clone();
            al[j].push(f);
            out.extend(rebuild(intervals.clone(), al));
        }
    }

    // 5. Shrink.
    for j in 0..p {
        if alloc[j].len() < 2 {
            continue;
        }
        for r in 0..alloc[j].len() {
            let mut al = alloc.clone();
            al[j].remove(r);
            out.extend(rebuild(intervals.clone(), al));
        }
    }

    // 6. Swap used ↔ free.
    for j in 0..p {
        for r in 0..alloc[j].len() {
            for &f in &free {
                let mut al = alloc.clone();
                al[j][r] = f;
                out.extend(rebuild(intervals.clone(), al));
            }
        }
    }

    // 7. Migrate a replica between intervals.
    for j in 0..p {
        if alloc[j].len() < 2 {
            continue;
        }
        for r in 0..alloc[j].len() {
            for j2 in 0..p {
                if j2 == j {
                    continue;
                }
                let mut al = alloc.clone();
                let moved = al[j].remove(r);
                al[j2].push(moved);
                out.extend(rebuild(intervals.clone(), al));
            }
        }
    }

    out
}

/// One uniformly chosen neighbor (for annealing); `None` when the mapping
/// has no neighbor (single stage, single processor platform).
#[must_use]
pub fn random_neighbor<R: Rng + ?Sized>(
    mapping: &IntervalMapping,
    n_procs: usize,
    rng: &mut R,
) -> Option<IntervalMapping> {
    let all = neighbors(mapping, n_procs);
    all.choose(rng).cloned()
}

/// A uniformly random valid interval mapping: random boundary mask (capped
/// at `m` parts), random processor subset and deal.
#[must_use]
pub fn random_mapping<R: Rng + ?Sized>(
    n_stages: usize,
    n_procs: usize,
    rng: &mut R,
) -> IntervalMapping {
    // Random partition.
    let mut intervals = Vec::new();
    let mut start = 0usize;
    for i in 0..n_stages - 1 {
        // Bias toward few intervals: boundary probability 1/3.
        if intervals.len() + 1 < n_procs && rng.gen_bool(1.0 / 3.0) {
            intervals.push(Interval::new(start, i).expect("ordered"));
            start = i + 1;
        }
    }
    intervals.push(Interval::new(start, n_stages - 1).expect("ordered"));
    let p = intervals.len();

    // Random processor deal: shuffle, take a random count ≥ p, round-robin.
    let mut procs: Vec<ProcId> = (0..n_procs).map(ProcId::new).collect();
    procs.shuffle(rng);
    let used = rng.gen_range(p..=n_procs);
    let mut alloc: Vec<Vec<ProcId>> = vec![Vec::new(); p];
    for (i, &pid) in procs[..used].iter().enumerate() {
        alloc[i % p].push(pid);
    }
    IntervalMapping::new(intervals, alloc, n_stages, n_procs)
        .expect("constructed to satisfy all constraints")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn p(i: u32) -> ProcId {
        ProcId(i)
    }

    fn sample_mapping() -> IntervalMapping {
        IntervalMapping::new(
            vec![Interval::new(0, 1).unwrap(), Interval::new(2, 3).unwrap()],
            vec![vec![p(0), p(1)], vec![p(2)]],
            4,
            5,
        )
        .unwrap()
    }

    #[test]
    fn all_neighbors_are_valid_and_distinct_from_origin() {
        let m = sample_mapping();
        let ns = neighbors(&m, 5);
        assert!(!ns.is_empty());
        for nb in &ns {
            assert_eq!(nb.n_stages(), 4);
            assert_ne!(nb, &m);
        }
    }

    #[test]
    fn move_types_are_represented() {
        let m = sample_mapping();
        let ns = neighbors(&m, 5);
        // merge present: 1 interval
        assert!(ns.iter().any(|nb| nb.n_intervals() == 1));
        // split present: 3 intervals (interval 0 has 2 stages + 2 replicas)
        assert!(ns.iter().any(|nb| nb.n_intervals() == 3));
        // grow: some neighbor uses 4 processors
        assert!(ns.iter().any(|nb| nb.total_replicas() == 4));
        // shrink: some neighbor uses 2 processors
        assert!(ns.iter().any(|nb| nb.total_replicas() == 2));
        // swap: P3 or P4 appear
        assert!(
            ns.iter()
                .any(|nb| nb.used_processors().contains(&p(3))
                    || nb.used_processors().contains(&p(4)))
        );
        // boundary shift: some 2-interval neighbor with different boundary
        assert!(ns
            .iter()
            .any(|nb| nb.n_intervals() == 2 && nb.interval(0).end() != 1));
    }

    #[test]
    fn single_stage_single_proc_has_no_neighbors() {
        let m = IntervalMapping::single_interval(1, vec![p(0)], 1).unwrap();
        assert!(neighbors(&m, 1).is_empty());
        let mut rng = StdRng::seed_from_u64(1);
        assert!(random_neighbor(&m, 1, &mut rng).is_none());
    }

    #[test]
    fn random_mappings_are_valid_and_diverse() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut interval_counts = std::collections::HashSet::new();
        for _ in 0..100 {
            let m = random_mapping(5, 6, &mut rng);
            assert_eq!(m.n_stages(), 5);
            interval_counts.insert(m.n_intervals());
        }
        assert!(interval_counts.len() > 1, "partitions should vary");
    }

    #[test]
    fn random_mapping_single_proc_platform() {
        let mut rng = StdRng::seed_from_u64(10);
        let m = random_mapping(4, 1, &mut rng);
        assert_eq!(m.n_intervals(), 1);
        assert_eq!(m.total_replicas(), 1);
    }

    #[test]
    fn stream_matches_materialized_neighbors() {
        let pipe = rpwf_core::stage::Pipeline::uniform(4, 1.0, 1.0).unwrap();
        let pf = rpwf_core::platform::Platform::fully_homogeneous(5, 1.0, 1.0, 0.3).unwrap();
        let ctx = rpwf_core::eval::EvalContext::new(&pipe, &pf);
        let m = sample_mapping();
        let mut de = rpwf_core::eval::DeltaEval::new(&ctx, &m);
        let materialized = neighbors(&m, 5);
        assert_eq!(move_count(&de), materialized.len());
        let mut stream = MoveStream::new();
        let mut i = 0usize;
        while let Some(mv) = stream.next(&de) {
            de.apply(mv);
            assert_eq!(
                de.mapping(),
                materialized[i],
                "move {i} ({mv:?}) must produce neighbors()[{i}]"
            );
            de.revert();
            assert_eq!(nth_move(&de, i), mv);
            i += 1;
        }
        assert_eq!(i, materialized.len());
    }

    #[test]
    fn random_move_matches_random_neighbor_stream() {
        let pipe = rpwf_core::stage::Pipeline::uniform(4, 1.0, 1.0).unwrap();
        let pf = rpwf_core::platform::Platform::fully_homogeneous(5, 1.0, 1.0, 0.3).unwrap();
        let ctx = rpwf_core::eval::EvalContext::new(&pipe, &pf);
        let m = sample_mapping();
        let mut de = rpwf_core::eval::DeltaEval::new(&ctx, &m);
        for seed in 0..20u64 {
            let mut rng_a = StdRng::seed_from_u64(seed);
            let mut rng_b = StdRng::seed_from_u64(seed);
            let nb = random_neighbor(&m, 5, &mut rng_a).expect("has neighbors");
            let mv = random_move(&de, &mut rng_b).expect("has moves");
            de.apply(mv);
            assert_eq!(de.mapping(), nb, "same seed must pick the same neighbor");
            de.revert();
        }
    }

    #[test]
    fn neighbor_closure_reaches_multi_interval_shapes() {
        // From the single-interval mapping, two moves suffice to reach a
        // split mapping — the search space is connected enough.
        let m = IntervalMapping::single_interval(3, vec![p(0), p(1)], 3).unwrap();
        let first = neighbors(&m, 3);
        assert!(first.iter().any(|nb| nb.n_intervals() == 2));
    }
}
