//! Single-interval heuristic: the best mapping that keeps the pipeline
//! whole and only chooses the replication set.
//!
//! On Fully Homogeneous and CH+Failure-Homogeneous platforms this *is* the
//! optimal family (Lemma 1). On CH+Failure-Heterogeneous it is a heuristic
//! (Figure 5 defeats it) — but an **exact** search within the family: for
//! every replica count `k`, the latency constraint reduces to a minimum
//! eligible speed, and among eligible processors the `k` most reliable are
//! FP-optimal. On Fully Heterogeneous platforms the family search itself is
//! non-trivial (input-bandwidth sums), so a portfolio of greedy orders is
//! used.

use crate::solution::{BiSolution, Objective};
use rpwf_core::mapping::IntervalMapping;
use rpwf_core::num::LogProb;
use rpwf_core::platform::{Platform, ProcId};
use rpwf_core::stage::Pipeline;

/// Best single-interval mapping for the objective; `None` when even the
/// family's best violates the threshold.
#[must_use]
pub fn best_single_interval(
    pipeline: &Pipeline,
    platform: &Platform,
    objective: Objective,
) -> Option<BiSolution> {
    let candidates = if platform.uniform_bandwidth().is_some() {
        comm_homog_candidates(pipeline, platform, objective)
    } else {
        greedy_het_candidates(pipeline, platform)
    };
    let mut best: Option<BiSolution> = None;
    for sol in candidates {
        if !objective.feasible(sol.latency, sol.failure_prob) {
            continue;
        }
        if best.as_ref().is_none_or(|b| objective.better(&sol, b)) {
            best = Some(sol);
        }
    }
    best
}

/// Exact family search on communication-homogeneous platforms.
///
/// For `MinFpUnderLatency(L)` and replica count `k`, feasibility is
/// `k·δ0/b + W/s_min + δn/b ≤ L`, i.e. a speed floor; the `k` most reliable
/// processors above the floor are the candidate. For `MinLatencyUnderFp`,
/// for each `(k, speed floor)` pair the FP-optimal set is again "k most
/// reliable among the t fastest" — all `O(m²)` combinations are emitted and
/// the caller's feasibility filter plus `better` ordering selects the
/// optimum within the family.
fn comm_homog_candidates(
    pipeline: &Pipeline,
    platform: &Platform,
    objective: Objective,
) -> Vec<BiSolution> {
    let m = platform.n_procs();
    let n = pipeline.n_stages();
    let by_speed = platform.procs_by_speed_desc();
    let mut out = Vec::new();

    match objective {
        Objective::MinFpUnderLatency(_) => {
            // For each k: eligible set grows as the speed floor loosens.
            // Emit, for each k, the most reliable k processors among each
            // speed-prefix; feasibility is filtered by the caller.
            for k in 1..=m {
                // Using the t fastest processors (t ≥ k) fixes the worst
                // admissible speed; the latency-tightest option per k is the
                // largest t still feasible, but emitting every prefix is
                // O(m²) and exact.
                for t in k..=m {
                    out.push(k_most_reliable_of(pipeline, platform, &by_speed[..t], k));
                }
            }
        }
        Objective::MinLatencyUnderFp(_) => {
            for k in 1..=m {
                for t in k..=m {
                    out.push(k_most_reliable_of(pipeline, platform, &by_speed[..t], k));
                }
            }
        }
    }
    let _ = n;
    out
}

/// Single-interval mapping on the `k` most reliable processors of `pool`.
fn k_most_reliable_of(
    pipeline: &Pipeline,
    platform: &Platform,
    pool: &[ProcId],
    k: usize,
) -> BiSolution {
    let mut pool: Vec<ProcId> = pool.to_vec();
    pool.sort_by(|a, b| {
        platform
            .failure_prob(*a)
            .total_cmp(&platform.failure_prob(*b))
            .then(a.0.cmp(&b.0))
    });
    pool.truncate(k);
    let mapping = IntervalMapping::single_interval(pipeline.n_stages(), pool, platform.n_procs())
        .expect("non-empty subset of processors");
    BiSolution::evaluate(mapping, pipeline, platform)
}

/// Greedy portfolio on fully heterogeneous platforms: grow the replica set
/// along several processor orders, emitting every prefix.
fn greedy_het_candidates(pipeline: &Pipeline, platform: &Platform) -> Vec<BiSolution> {
    let mut orders: Vec<Vec<ProcId>> = vec![
        platform.procs_by_speed_desc(),
        platform.procs_by_reliability_desc(),
    ];
    // Third order: fast input links first (the δ0 term dominates when the
    // first interval is replicated).
    let mut by_input: Vec<ProcId> = platform.procs().collect();
    by_input.sort_by(|a, b| {
        let ba = platform.bandwidth(
            rpwf_core::platform::Vertex::In,
            rpwf_core::platform::Vertex::Proc(*a),
        );
        let bb = platform.bandwidth(
            rpwf_core::platform::Vertex::In,
            rpwf_core::platform::Vertex::Proc(*b),
        );
        bb.total_cmp(&ba).then(a.0.cmp(&b.0))
    });
    orders.push(by_input);
    // Fourth: reliability per latency-cost score.
    let mut by_score: Vec<ProcId> = platform.procs().collect();
    by_score.sort_by(|a, b| {
        let score = |p: ProcId| {
            let rel = -LogProb::from_prob(platform.failure_prob(p)).ln(); // −ln fp: big = reliable
            rel * platform.speed(p)
        };
        score(*b).total_cmp(&score(*a)).then(a.0.cmp(&b.0))
    });
    orders.push(by_score);

    let mut out = Vec::new();
    for order in orders {
        for k in 1..=order.len() {
            let mapping = IntervalMapping::single_interval(
                pipeline.n_stages(),
                order[..k].to_vec(),
                platform.n_procs(),
            )
            .expect("prefix is non-empty");
            out.push(BiSolution::evaluate(mapping, pipeline, platform));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::Exhaustive;
    use rpwf_core::assert_approx_eq;

    #[test]
    fn figure5_single_interval_matches_paper_claim() {
        // The paper: best one-interval solution at L ≤ 22 uses two fast
        // processors, FP = 0.64.
        let pipe = rpwf_gen::figure5_pipeline();
        let pf = rpwf_gen::figure5_platform();
        let sol = best_single_interval(&pipe, &pf, Objective::MinFpUnderLatency(22.0)).unwrap();
        assert_approx_eq!(sol.failure_prob, 0.64);
        assert_eq!(sol.mapping.replication(0), 2);
    }

    #[test]
    fn exact_within_family_on_comm_homog() {
        // Cross-check against the oracle restricted to single-interval
        // mappings.
        let pipe = Pipeline::new(vec![4.0, 8.0], vec![3.0, 2.0, 1.0]).unwrap();
        let pf =
            Platform::comm_homogeneous(vec![1.0, 5.0, 3.0, 2.0], 2.0, vec![0.6, 0.7, 0.2, 0.4])
                .unwrap();
        for l in [4.0, 6.0, 8.0, 12.0, 20.0] {
            let fam = best_single_interval(&pipe, &pf, Objective::MinFpUnderLatency(l));
            // Oracle over the single-interval family only.
            let front = Exhaustive::new(&pipe, &pf).pareto_front();
            let oracle_best = front
                .iter()
                .filter(|pt| pt.payload.n_intervals() == 1 && pt.latency <= l + 1e-9)
                .map(|pt| pt.failure_prob)
                .fold(None::<f64>, |acc, v| Some(acc.map_or(v, |a| a.min(v))));
            match (fam, oracle_best) {
                (Some(f), Some(o)) => {
                    assert!(
                        f.failure_prob <= o + 1e-9,
                        "L={l}: family search {} worse than oracle {o}",
                        f.failure_prob
                    );
                }
                (None, None) => {}
                // The Pareto front keeps only non-dominated points, so a
                // feasible single-interval point may be dominated by a
                // multi-interval one — the family search may still find it.
                (Some(_), None) => {}
                (None, Some(o)) => panic!("L={l}: family search missed oracle point {o}"),
            }
        }
    }

    #[test]
    fn min_latency_under_fp_family() {
        let pipe = Pipeline::new(vec![4.0, 8.0], vec![3.0, 2.0, 1.0]).unwrap();
        let pf =
            Platform::comm_homogeneous(vec![1.0, 5.0, 3.0, 2.0], 2.0, vec![0.6, 0.7, 0.2, 0.4])
                .unwrap();
        let sol = best_single_interval(&pipe, &pf, Objective::MinLatencyUnderFp(0.3)).unwrap();
        assert!(sol.failure_prob <= 0.3 + 1e-9);
    }

    #[test]
    fn het_portfolio_finds_feasible_solutions() {
        let pipe = rpwf_gen::figure3_pipeline();
        let pf = rpwf_gen::figure4_platform();
        // Single interval on this platform: best latency is 105.
        let sol = best_single_interval(&pipe, &pf, Objective::MinFpUnderLatency(105.0)).unwrap();
        assert_approx_eq!(sol.latency, 105.0);
        assert!(best_single_interval(&pipe, &pf, Objective::MinFpUnderLatency(50.0)).is_none());
    }

    #[test]
    fn infeasible_returns_none() {
        let pipe = Pipeline::uniform(2, 10.0, 10.0).unwrap();
        let pf = Platform::fully_homogeneous(3, 1.0, 1.0, 0.9).unwrap();
        assert!(best_single_interval(&pipe, &pf, Objective::MinLatencyUnderFp(0.01)).is_none());
    }
}
