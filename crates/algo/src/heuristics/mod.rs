//! Heuristics for the NP-hard and open bi-criteria problem variants.
//!
//! | heuristic | platforms | idea |
//! |-----------|-----------|------|
//! | [`single_interval`] | all | best mapping within the single-interval family (exact family search on comm-homog) |
//! | [`split_dp`] | comm-homog | exact Pareto DP restricted to processor orders (portfolio of 3 orders) |
//! | [`local_search`] | all | steepest descent over the 7-move neighborhood, multi-start |
//! | [`annealing`] | all | penalty-based simulated annealing (tunnels through infeasible regions) |
//! | [`random_search`] | all | uniform random baseline |
//!
//! The uniform entry point is [`Portfolio`], which runs every heuristic
//! applicable to the platform class and returns the best result; experiment
//! E10 quantifies each against the exact fronts of [`crate::exact`].

pub mod annealing;
pub mod local_search;
pub mod neighborhood;
pub mod one_to_one;
pub mod random_search;
pub mod single_interval;
pub mod split_dp;

pub use annealing::Annealing;
pub use local_search::LocalSearch;
pub use random_search::RandomSearch;

use crate::solution::{BiSolution, Objective};
use rpwf_core::platform::Platform;
use rpwf_core::stage::Pipeline;

/// Runs every applicable heuristic and keeps the best solution.
#[derive(Clone, Copy, Debug, Default)]
pub struct Portfolio {
    /// Seed shared by the randomized members.
    pub seed: u64,
}

impl Portfolio {
    /// Creates a portfolio with the given seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Portfolio { seed }
    }

    /// Named results from each applicable heuristic (for comparison
    /// tables); `None` entries mean the heuristic found nothing feasible.
    #[must_use]
    pub fn run_all(
        &self,
        pipeline: &Pipeline,
        platform: &Platform,
        objective: Objective,
    ) -> Vec<(&'static str, Option<BiSolution>)> {
        let mut out: Vec<(&'static str, Option<BiSolution>)> = Vec::new();
        out.push((
            "single-interval",
            single_interval::best_single_interval(pipeline, platform, objective),
        ));
        if platform.uniform_bandwidth().is_some() {
            out.push((
                "split-dp",
                split_dp::solve(pipeline, platform, objective)
                    .expect("comm-homog checked above"),
            ));
        }
        out.push((
            "local-search",
            local_search::LocalSearch { seed: self.seed, ..Default::default() }
                .solve(pipeline, platform, objective),
        ));
        out.push((
            "annealing",
            annealing::Annealing { seed: self.seed, ..Default::default() }
                .solve(pipeline, platform, objective),
        ));
        out.push((
            "random-search",
            random_search::RandomSearch { seed: self.seed, ..Default::default() }
                .solve(pipeline, platform, objective),
        ));
        out
    }

    /// The best solution across the portfolio; `None` when every member
    /// failed.
    #[must_use]
    pub fn solve(
        &self,
        pipeline: &Pipeline,
        platform: &Platform,
        objective: Objective,
    ) -> Option<BiSolution> {
        self.run_all(pipeline, platform, objective)
            .into_iter()
            .filter_map(|(_, sol)| sol)
            .fold(None, |best, sol| match best {
                Some(b) if !objective.better(&sol, &b) => Some(b),
                _ => Some(sol),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpwf_core::assert_approx_eq;

    #[test]
    fn portfolio_reaches_figure5_optimum() {
        let pipe = rpwf_gen::figure5_pipeline();
        let pf = rpwf_gen::figure5_platform();
        let sol = Portfolio::new(1)
            .solve(&pipe, &pf, Objective::MinFpUnderLatency(22.0))
            .expect("feasible");
        assert_approx_eq!(sol.failure_prob, 1.0 - 0.9 * (1.0 - 0.8f64.powi(10)));
    }

    #[test]
    fn run_all_reports_each_member() {
        let pipe = rpwf_gen::figure5_pipeline();
        let pf = rpwf_gen::figure5_platform();
        let all = Portfolio::new(1).run_all(&pipe, &pf, Objective::MinFpUnderLatency(22.0));
        let names: Vec<&str> = all.iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            vec!["single-interval", "split-dp", "local-search", "annealing", "random-search"]
        );
        // split-dp present because Figure 5 is comm-homogeneous; on Figure 4
        // (het links) it must be absent.
        let het = rpwf_gen::figure4_platform();
        let pipe34 = rpwf_gen::figure3_pipeline();
        let all =
            Portfolio::new(1).run_all(&pipe34, &het, Objective::MinFpUnderLatency(200.0));
        assert!(all.iter().all(|(n, _)| *n != "split-dp"));
    }

    #[test]
    fn portfolio_none_when_infeasible() {
        let pipe = Pipeline::uniform(1, 100.0, 100.0).unwrap();
        let pf = Platform::fully_homogeneous(2, 1.0, 1.0, 0.9).unwrap();
        assert!(Portfolio::new(3)
            .solve(&pipe, &pf, Objective::MinFpUnderLatency(0.5))
            .is_none());
    }
}
