//! Heuristics for the NP-hard and open bi-criteria problem variants.
//!
//! | heuristic | platforms | idea |
//! |-----------|-----------|------|
//! | [`single_interval`] | all | best mapping within the single-interval family (exact family search on comm-homog) |
//! | [`split_dp`] | comm-homog | exact Pareto DP restricted to processor orders (portfolio of 3 orders) |
//! | [`local_search`] | all | steepest descent over the 7-move neighborhood, multi-start |
//! | [`annealing`] | all | penalty-based simulated annealing (tunnels through infeasible regions) |
//! | [`random_search`] | all | uniform random baseline |
//!
//! The uniform entry point is [`Portfolio`], which runs every heuristic
//! applicable to the platform class and returns the best result; experiment
//! E10 quantifies each against the exact fronts of [`crate::exact`].

pub mod annealing;
pub mod candidate;
pub mod local_search;
pub mod neighborhood;
pub mod one_to_one;
pub mod random_search;
pub mod single_interval;
pub mod split_dp;

pub use annealing::Annealing;
pub use local_search::LocalSearch;
pub use random_search::RandomSearch;

use crate::solution::{BiSolution, Budgeted, Objective};
use rpwf_core::budget::Budget;
use rpwf_core::platform::Platform;
use rpwf_core::stage::Pipeline;

/// Runs every applicable heuristic and keeps the best solution.
#[derive(Clone, Copy, Debug, Default)]
pub struct Portfolio {
    /// Seed shared by the randomized members.
    pub seed: u64,
}

impl Portfolio {
    /// Creates a portfolio with the given seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Portfolio { seed }
    }

    /// Named results from each applicable heuristic (for comparison
    /// tables); `None` entries mean the heuristic found nothing feasible.
    #[must_use]
    pub fn run_all(
        &self,
        pipeline: &Pipeline,
        platform: &Platform,
        objective: Objective,
    ) -> Vec<(&'static str, Option<BiSolution>)> {
        self.run_all_with_budget(pipeline, platform, objective, &Budget::unlimited())
            .into_inner()
    }

    /// [`run_all`](Self::run_all) under a shared budget: the randomized
    /// members (local search, annealing, random search) poll it in their
    /// step loops and contribute their best-so-far when it expires, so a
    /// tight server deadline cuts the whole portfolio off too. The cheap
    /// closed-form members (single-interval, split-DP) always run.
    /// [`Budgeted::Cutoff`] means at least one member was cut short, so
    /// the answers may be weaker than an unbudgeted rerun — callers that
    /// cache results must not cache a cutoff.
    #[must_use]
    pub fn run_all_with_budget(
        &self,
        pipeline: &Pipeline,
        platform: &Platform,
        objective: Objective,
        budget: &Budget,
    ) -> Budgeted<Vec<(&'static str, Option<BiSolution>)>> {
        let mut complete = true;
        let mut out: Vec<(&'static str, Option<BiSolution>)> = Vec::new();
        out.push((
            "single-interval",
            single_interval::best_single_interval(pipeline, platform, objective),
        ));
        if platform.uniform_bandwidth().is_some() {
            out.push((
                "split-dp",
                split_dp::solve(pipeline, platform, objective).expect("comm-homog checked above"),
            ));
        }
        out.push((
            "local-search",
            local_search::LocalSearch {
                seed: self.seed,
                ..Default::default()
            }
            .solve_with_budget(pipeline, platform, objective, budget)
            .map_complete(&mut complete),
        ));
        out.push((
            "annealing",
            annealing::Annealing {
                seed: self.seed,
                ..Default::default()
            }
            .solve_with_budget(pipeline, platform, objective, budget)
            .map_complete(&mut complete),
        ));
        out.push((
            "random-search",
            random_search::RandomSearch {
                seed: self.seed,
                ..Default::default()
            }
            .solve_with_budget(pipeline, platform, objective, budget)
            .map_complete(&mut complete),
        ));
        if complete {
            Budgeted::Complete(out)
        } else {
            Budgeted::Cutoff(out)
        }
    }

    /// The best solution across the portfolio; `None` when every member
    /// failed.
    #[must_use]
    pub fn solve(
        &self,
        pipeline: &Pipeline,
        platform: &Platform,
        objective: Objective,
    ) -> Option<BiSolution> {
        self.solve_with_budget(pipeline, platform, objective, &Budget::unlimited())
            .into_inner()
    }

    /// [`solve`](Self::solve) under a shared budget (see
    /// [`run_all_with_budget`](Self::run_all_with_budget)).
    /// [`Budgeted::Cutoff`] payloads may be weaker than an unbudgeted
    /// rerun and must not be cached.
    #[must_use]
    pub fn solve_with_budget(
        &self,
        pipeline: &Pipeline,
        platform: &Platform,
        objective: Objective,
        budget: &Budget,
    ) -> Budgeted<Option<BiSolution>> {
        let outcome = self.run_all_with_budget(pipeline, platform, objective, budget);
        let complete = outcome.is_complete();
        let best = outcome
            .into_inner()
            .into_iter()
            .filter_map(|(_, sol)| sol)
            .fold(None, |best, sol| match best {
                Some(b) if !objective.better(&sol, &b) => Some(b),
                _ => Some(sol),
            });
        if complete {
            Budgeted::Complete(best)
        } else {
            Budgeted::Cutoff(best)
        }
    }

    /// Races the heuristic portfolio against the strongest applicable
    /// exact solver under a shared budget.
    ///
    /// On comm-homogeneous platforms the bitmask DP (which takes no
    /// seeding) runs on a second thread truly in parallel with the
    /// heuristics. On fully heterogeneous platforms the heuristics run
    /// first and their answer seeds the branch-and-bound incumbent — the
    /// portfolio is computed exactly once and the exact search starts
    /// polling the budget from its first node, so tight deadlines abort
    /// promptly. The outcome:
    ///
    /// * exact finished → the answer is proven optimal (when it proves
    ///   infeasibility, no heuristic answer can exist either),
    /// * exact cut off or inapplicable → the best of the heuristic answer
    ///   and the exact solver's partial incumbent is returned.
    #[must_use]
    pub fn race(
        &self,
        pipeline: &Pipeline,
        platform: &Platform,
        objective: Objective,
        budget: &Budget,
    ) -> RaceReport {
        let m = platform.n_procs();
        let comm_homog = platform.uniform_bandwidth().is_some();

        if comm_homog && m <= 16 {
            // Parallel race: DP on a worker thread, heuristics here. Both
            // sides share the budget, so expiry stops the whole race.
            let (exact, heuristic) = crossbeam::thread::scope(|scope| {
                let exact_handle = scope.spawn(move |_| {
                    crate::exact::solve_comm_homog_with_budget(
                        pipeline, platform, objective, budget,
                    )
                    .expect("uniform bandwidth checked above")
                });
                let heuristic = self.solve_with_budget(pipeline, platform, objective, budget);
                let exact = exact_handle.join().expect("exact solver does not panic");
                (exact, heuristic)
            })
            .expect("race threads do not panic");
            return combine(objective, Some(exact), heuristic);
        }

        if m <= 12 {
            // Heuristics first (their answer doubles as the incumbent),
            // then budgeted branch-and-bound seeded with it.
            let heuristic = self.solve_with_budget(pipeline, platform, objective, budget);
            let exact = crate::exact::BranchBound::new(pipeline, platform)
                .solve_with_budget_seeded(objective, budget, heuristic.inner().clone());
            return combine(objective, Some(exact), heuristic);
        }

        combine(
            objective,
            None,
            self.solve_with_budget(pipeline, platform, objective, budget),
        )
    }
}

fn combine(
    objective: Objective,
    exact: Option<Budgeted<Option<BiSolution>>>,
    heuristic: Budgeted<Option<BiSolution>>,
) -> RaceReport {
    let heuristic_complete = heuristic.is_complete();
    let heuristic = heuristic.into_inner();
    match exact {
        Some(Budgeted::Complete(sol)) => RaceReport {
            best: sol,
            solver: SolverKind::Exact,
            exact_attempted: true,
            exact_complete: true,
            heuristic_complete,
        },
        Some(Budgeted::Cutoff(partial)) => {
            let (best, solver) = pick_better(objective, partial, heuristic);
            RaceReport {
                best,
                solver,
                exact_attempted: true,
                exact_complete: false,
                heuristic_complete,
            }
        }
        None => RaceReport {
            best: heuristic,
            solver: SolverKind::Heuristic,
            exact_attempted: false,
            exact_complete: false,
            heuristic_complete,
        },
    }
}

/// Which side of a [`Portfolio::race`] produced the winning answer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SolverKind {
    /// The exact solver (optimal when `exact_complete`).
    Exact,
    /// The heuristic portfolio.
    Heuristic,
}

impl SolverKind {
    /// Stable lowercase name for logs and wire responses.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SolverKind::Exact => "exact",
            SolverKind::Heuristic => "heuristic",
        }
    }
}

/// Outcome of [`Portfolio::race`].
#[derive(Clone, Debug)]
pub struct RaceReport {
    /// The winning solution; `None` when nothing feasible was found (a
    /// completed exact run proves infeasibility, otherwise the budget may
    /// simply have been too tight).
    pub best: Option<BiSolution>,
    /// Which solver produced `best` (meaningful when `best` is `Some`).
    pub solver: SolverKind,
    /// Whether an exact solver was applicable to the instance at all.
    pub exact_attempted: bool,
    /// Whether the exact solver ran to completion within the budget —
    /// i.e. whether `best` is proven optimal.
    pub exact_complete: bool,
    /// Whether every heuristic portfolio member ran to completion.
    /// `false` means the budget truncated the heuristics, so `best` may
    /// be weaker than an unbudgeted rerun — such answers must not be
    /// cached.
    pub heuristic_complete: bool,
}

fn pick_better(
    objective: Objective,
    exact_partial: Option<BiSolution>,
    heuristic: Option<BiSolution>,
) -> (Option<BiSolution>, SolverKind) {
    match (exact_partial, heuristic) {
        (Some(e), Some(h)) => {
            if objective.better(&e, &h) {
                (Some(e), SolverKind::Exact)
            } else {
                (Some(h), SolverKind::Heuristic)
            }
        }
        (Some(e), None) => (Some(e), SolverKind::Exact),
        (None, h) => (h, SolverKind::Heuristic),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpwf_core::assert_approx_eq;

    #[test]
    fn portfolio_reaches_figure5_optimum() {
        let pipe = rpwf_gen::figure5_pipeline();
        let pf = rpwf_gen::figure5_platform();
        let sol = Portfolio::new(1)
            .solve(&pipe, &pf, Objective::MinFpUnderLatency(22.0))
            .expect("feasible");
        assert_approx_eq!(sol.failure_prob, 1.0 - 0.9 * (1.0 - 0.8f64.powi(10)));
    }

    #[test]
    fn run_all_reports_each_member() {
        let pipe = rpwf_gen::figure5_pipeline();
        let pf = rpwf_gen::figure5_platform();
        let all = Portfolio::new(1).run_all(&pipe, &pf, Objective::MinFpUnderLatency(22.0));
        let names: Vec<&str> = all.iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            vec![
                "single-interval",
                "split-dp",
                "local-search",
                "annealing",
                "random-search"
            ]
        );
        // split-dp present because Figure 5 is comm-homogeneous; on Figure 4
        // (het links) it must be absent.
        let het = rpwf_gen::figure4_platform();
        let pipe34 = rpwf_gen::figure3_pipeline();
        let all = Portfolio::new(1).run_all(&pipe34, &het, Objective::MinFpUnderLatency(200.0));
        assert!(all.iter().all(|(n, _)| *n != "split-dp"));
    }

    #[test]
    fn race_with_unlimited_budget_is_exact_on_figure5() {
        let pipe = rpwf_gen::figure5_pipeline();
        let pf = rpwf_gen::figure5_platform();
        let report = Portfolio::new(1).race(
            &pipe,
            &pf,
            Objective::MinFpUnderLatency(22.0),
            &Budget::unlimited(),
        );
        assert!(report.exact_attempted);
        assert!(report.exact_complete, "bitmask DP must finish unbudgeted");
        assert_eq!(report.solver, SolverKind::Exact);
        let sol = report.best.expect("feasible");
        assert_approx_eq!(sol.failure_prob, 1.0 - 0.9 * (1.0 - 0.8f64.powi(10)));
    }

    #[test]
    fn race_with_expired_budget_falls_back_to_heuristics() {
        let pipe = rpwf_gen::figure5_pipeline();
        let pf = rpwf_gen::figure5_platform();
        let objective = Objective::MinFpUnderLatency(22.0);
        let budget = Budget::with_deadline(std::time::Duration::ZERO);
        let report = Portfolio::new(1).race(&pipe, &pf, objective, &budget);
        assert!(report.exact_attempted);
        assert!(
            !report.exact_complete,
            "expired budget must cut the exact solver off"
        );
        let sol = report.best.expect("heuristics find the Figure 5 optimum");
        assert!(objective.feasible(sol.latency, sol.failure_prob));
    }

    #[test]
    fn race_without_exact_backend_uses_heuristics() {
        // 18 processors with heterogeneous links: no exact backend applies.
        let mut speeds = vec![10.0; 18];
        speeds[0] = 1.0;
        let pipe = rpwf_gen::figure5_pipeline();
        let mut builder = rpwf_core::platform::PlatformBuilder::new(18)
            .speeds(speeds)
            .unwrap()
            .failure_probs(vec![0.3; 18])
            .unwrap();
        use rpwf_core::platform::{ProcId, Vertex};
        let verts: Vec<Vertex> = (0..18)
            .map(|i| Vertex::Proc(ProcId::new(i)))
            .chain([Vertex::In, Vertex::Out])
            .collect();
        for (i, &a) in verts.iter().enumerate() {
            for &b in verts.iter().skip(i + 1) {
                let bw = 1.0 + (i % 3) as f64;
                builder = builder.bandwidth(a, b, bw);
            }
        }
        let pf = builder.build().unwrap();
        let report = Portfolio::new(7).race(
            &pipe,
            &pf,
            Objective::MinFpUnderLatency(1e9),
            &Budget::unlimited(),
        );
        assert!(!report.exact_attempted);
        assert_eq!(report.solver, SolverKind::Heuristic);
        assert!(report.best.is_some());
    }

    #[test]
    fn expired_budget_marks_the_portfolio_cutoff() {
        let pipe = rpwf_gen::figure5_pipeline();
        let pf = rpwf_gen::figure5_platform();
        let objective = Objective::MinFpUnderLatency(22.0);
        let expired = Budget::with_deadline(std::time::Duration::ZERO);
        let outcome = Portfolio::new(1).solve_with_budget(&pipe, &pf, objective, &expired);
        assert!(
            !outcome.is_complete(),
            "truncated heuristics must be reported as a cutoff"
        );
        let complete =
            Portfolio::new(1).solve_with_budget(&pipe, &pf, objective, &Budget::unlimited());
        assert!(complete.is_complete());
        assert_eq!(
            complete.into_inner(),
            Portfolio::new(1).solve(&pipe, &pf, objective)
        );
    }

    #[test]
    fn race_reports_heuristic_cutoff_for_cache_decisions() {
        // 18 heterogeneous processors: no exact backend, so the report's
        // only quality signal is heuristic completeness.
        let pipe = rpwf_gen::figure5_pipeline();
        let pf = rpwf_gen::figure5_platform();
        let objective = Objective::MinFpUnderLatency(22.0);
        let complete = Portfolio::new(1).race(&pipe, &pf, objective, &Budget::unlimited());
        assert!(complete.heuristic_complete);
        let cut = Portfolio::new(1).race(
            &pipe,
            &pf,
            objective,
            &Budget::with_deadline(std::time::Duration::ZERO),
        );
        assert!(
            !cut.heuristic_complete,
            "an expired budget must mark the heuristic side cut off"
        );
    }

    #[test]
    fn portfolio_none_when_infeasible() {
        let pipe = Pipeline::uniform(1, 100.0, 100.0).unwrap();
        let pf = Platform::fully_homogeneous(2, 1.0, 1.0, 0.9).unwrap();
        assert!(Portfolio::new(3)
            .solve(&pipe, &pf, Objective::MinFpUnderLatency(0.5))
            .is_none());
    }
}
