//! Candidate-list scanning with don't-look bits — skip re-evaluating
//! moves on intervals untouched by the last committed move, with results
//! **bit-identical** to the full scan.
//!
//! Classic don't-look bits skip whole regions of the neighborhood and
//! accept slightly different descent trajectories. This repository's
//! heuristics carry a stronger contract (seeded runs are reproducible to
//! the bit across refactors — every E15-style check asserts it), so the
//! candidate list here skips the *work*, not the *comparison*: for every
//! scored move the [`ScanCache`] remembers the term-level
//! [`MoveEffect`] captured by [`DeltaEval::apply`], and per-interval
//! epochs track which intervals the last committed moves touched. A move
//! whose read window (its target intervals ±1, plus interval 0 when it
//! touches input communication) is **clean** is re-scored by
//! [`DeltaEval::replay`] — the exact summation sequence `apply` would
//! run, fed from the cached effect — without the snapshot, the structural
//! mutation, or the `interval_cost`/`ln_survival` recomputation that
//! dominate a full evaluation. A move whose window is dirty is evaluated
//! normally and re-cached.
//!
//! Soundness: a cached effect's rewritten terms are pure functions of the
//! intervals in its read window; unchanged window ⇒ identical rewritten
//! values ⇒ `replay` reproduces `apply`'s scores bit-for-bit (asserted in
//! `rpwf-core`'s unit tests and, end-to-end, by the seeded-equality
//! checks of the E15 experiment). Merge/split commits renumber intervals,
//! so they clear the cache wholesale rather than track index shifts.

use rpwf_core::eval::{DeltaEval, Move, MoveEffect, Scores};
use rpwf_core::hash::FnvBuildHasher;
use std::collections::HashMap;

/// Upper bound on read-window entries: two targets × (t−1, t, t+1) plus
/// interval 0 for input communication.
const MAX_READS: usize = 7;

#[derive(Clone, Copy, Debug)]
struct CachedEffect {
    effect: MoveEffect,
    /// Cache generation this entry belongs to (wholesale clears bump it).
    generation: u64,
    /// `(interval index, epoch at record time)` for the read window.
    reads: [(usize, u64); MAX_READS],
    n_reads: usize,
}

/// Don't-look-bit bookkeeping for one local-search descent.
#[derive(Debug, Default)]
pub struct ScanCache {
    epochs: Vec<u64>,
    generation: u64,
    // FNV keys: the map is probed once per enumerated move, so hashing
    // must not dominate the replay it pays for (SipHash would).
    map: HashMap<Move, CachedEffect, FnvBuildHasher>,
}

/// The intervals a move structurally writes (alloc or boundary content).
fn written(mv: Move) -> (usize, Option<usize>) {
    match mv {
        Move::ShiftRight { j } | Move::ShiftLeft { j } | Move::Merge { j } => (j, Some(j + 1)),
        Move::Split { j, .. }
        | Move::Grow { j, .. }
        | Move::Shrink { j, .. }
        | Move::Swap { j, .. } => (j, None),
        Move::Migrate { j, to, .. } => (j, Some(to)),
    }
}

impl ScanCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        ScanCache::default()
    }

    /// Repositions the cache on a fresh `p`-interval state (new restart):
    /// everything cached is forgotten.
    pub fn reset(&mut self, p: usize) {
        self.epochs.clear();
        self.epochs.resize(p, 0);
        self.generation += 1;
    }

    /// Scores `mv` against the evaluator's committed state: replayed from
    /// the cached effect when the move's read window is clean (no
    /// apply/revert, no term recomputation), evaluated and re-cached
    /// otherwise. Either way the returned scores are bit-identical to
    /// `de.apply(mv)` + `de.revert()`.
    pub fn score(&mut self, de: &mut DeltaEval, mv: Move) -> Scores {
        if let Some(cached) = self.map.get(&mv) {
            if cached.generation == self.generation
                && cached.reads[..cached.n_reads]
                    .iter()
                    .all(|&(idx, epoch)| self.epochs.get(idx).copied() == Some(epoch))
            {
                return de.replay(&cached.effect);
            }
        }
        let scores = de.apply(mv);
        let effect = de.last_effect();
        de.revert();

        let mut reads = [(0usize, 0u64); MAX_READS];
        let mut n_reads = 0usize;
        let p = self.epochs.len();
        let push = |idx: usize, reads: &mut [(usize, u64); MAX_READS], n: &mut usize| {
            if idx < p && !reads[..*n].iter().any(|&(i, _)| i == idx) {
                reads[*n] = (idx, self.epochs[idx]);
                *n += 1;
            }
        };
        let (a, b) = written(mv);
        for t in std::iter::once(a).chain(b) {
            for idx in t.saturating_sub(1)..=t + 1 {
                push(idx, &mut reads, &mut n_reads);
            }
        }
        if effect.input_comm.is_some() {
            push(0, &mut reads, &mut n_reads);
        }
        self.map.insert(
            mv,
            CachedEffect {
                effect,
                generation: self.generation,
                reads,
                n_reads,
            },
        );
        scores
    }

    /// Marks the intervals `mv` rewrote as dirty after it was committed
    /// (applied + accepted). Merge/split renumber the interval axis, so
    /// they clear the cache wholesale; every other move bumps the epochs
    /// of exactly the intervals it wrote.
    pub fn commit(&mut self, mv: Move, p_after: usize) {
        match mv {
            Move::Merge { .. } | Move::Split { .. } => {
                self.reset(p_after);
            }
            _ => {
                let (a, b) = written(mv);
                for t in std::iter::once(a).chain(b) {
                    if let Some(epoch) = self.epochs.get_mut(t) {
                        *epoch += 1;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristics::neighborhood::MoveStream;
    use rpwf_core::eval::EvalContext;
    use rpwf_core::mapping::{Interval, IntervalMapping};
    use rpwf_core::platform::{Platform, ProcId};
    use rpwf_core::stage::Pipeline;

    fn p(i: u32) -> ProcId {
        ProcId(i)
    }

    fn instance() -> (Pipeline, Platform) {
        let pipe = Pipeline::new(vec![3.0, 1.0, 4.0, 1.0], vec![5.0, 9.0, 2.0, 6.0, 5.0]).unwrap();
        let pf = Platform::comm_homogeneous(
            vec![2.0, 1.0, 3.0, 1.5, 2.5],
            1.0,
            vec![0.1, 0.3, 0.5, 0.2, 0.4],
        )
        .unwrap();
        (pipe, pf)
    }

    fn base() -> IntervalMapping {
        IntervalMapping::new(
            vec![Interval::new(0, 1).unwrap(), Interval::new(2, 3).unwrap()],
            vec![vec![p(0), p(3)], vec![p(1), p(4)]],
            4,
            5,
        )
        .unwrap()
    }

    /// Full scans interleaved with commits: every cached score must equal
    /// the freshly applied score bit-for-bit, across several descent
    /// steps (the second and later scans exercise the replay path).
    #[test]
    fn cached_scores_equal_fresh_scores_across_commits() {
        let (pipe, pf) = instance();
        let ctx = EvalContext::new(&pipe, &pf);
        let mut de = DeltaEval::new(&ctx, &base());
        let mut cache = ScanCache::new();
        cache.reset(de.n_intervals());
        for _step in 0..4 {
            let mut stream = MoveStream::new();
            let mut best: Option<(Move, Scores)> = None;
            while let Some(mv) = stream.next(&de) {
                let cached = cache.score(&mut de, mv);
                let fresh = de.apply(mv);
                de.revert();
                assert_eq!(
                    cached.latency.to_bits(),
                    fresh.latency.to_bits(),
                    "step {_step}: cached latency must match fresh for {mv:?}"
                );
                assert_eq!(
                    cached.ln_success.to_bits(),
                    fresh.ln_success.to_bits(),
                    "step {_step}: cached ln must match fresh for {mv:?}"
                );
                if best.is_none() || cached.latency < best.as_ref().unwrap().1.latency {
                    best = Some((mv, cached));
                }
            }
            let Some((mv, _)) = best else { break };
            de.apply(mv);
            de.accept();
            cache.commit(mv, de.n_intervals());
        }
    }
}
