//! Simulated annealing over interval mappings.
//!
//! Penalty formulation: infeasible states are admitted during the walk with
//! an energy surcharge proportional to the *relative* constraint violation,
//! so the chain can tunnel through infeasible regions that separate basins
//! — the structural weakness of pure descent on replication problems
//! (adding a replica often worsens latency before a later split pays off).
//! Geometric cooling; the best *feasible* state ever visited is returned.
//!
//! Moves are proposed and scored through the incremental engine: a
//! uniformly random [`Move`](rpwf_core::eval::Move) is applied in place on
//! a [`DeltaEval`], delta-scored (bit-identical to full evaluation), and
//! reverted on rejection — the chain never materializes a candidate
//! mapping. RNG consumption matches the old materializing implementation
//! draw-for-draw, so seeded runs produce the same walk. The move loop
//! polls the request [`Budget`] so server deadlines cut the chain off.

use crate::heuristics::neighborhood::{random_mapping, random_move};
use crate::solution::{BiSolution, Budgeted, Objective};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rpwf_core::budget::Budget;
use rpwf_core::eval::{DeltaEval, EvalContext};
use rpwf_core::platform::Platform;
use rpwf_core::stage::Pipeline;

/// Annealing schedule and penalty weights.
#[derive(Clone, Copy, Debug)]
pub struct Annealing {
    /// Initial temperature (energies are normalized to ~O(1)).
    pub t0: f64,
    /// Geometric cooling factor per epoch.
    pub cooling: f64,
    /// Moves attempted per epoch.
    pub moves_per_epoch: usize,
    /// Number of epochs.
    pub epochs: usize,
    /// Penalty weight on relative constraint violation.
    pub penalty: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Annealing {
    fn default() -> Self {
        Annealing {
            t0: 1.0,
            cooling: 0.92,
            moves_per_epoch: 60,
            epochs: 40,
            penalty: 10.0,
            seed: 0x5EED,
        }
    }
}

impl Annealing {
    /// Scalar energy of a state: the minimized criterion plus the penalty.
    /// Latency values are normalized by a reference latency so that
    /// temperatures are instance-independent.
    fn energy(objective: Objective, latency: f64, fp: f64, ref_latency: f64, penalty: f64) -> f64 {
        match objective {
            Objective::MinFpUnderLatency(l) => {
                let violation = ((latency - l) / l.max(1e-12)).max(0.0);
                fp + penalty * violation
            }
            Objective::MinLatencyUnderFp(f) => {
                let violation = ((fp - f) / f.max(1e-12)).max(0.0);
                latency / ref_latency.max(1e-12) + penalty * violation
            }
        }
    }

    /// Runs the annealing; `None` when no feasible state was ever visited.
    #[must_use]
    pub fn solve(
        &self,
        pipeline: &Pipeline,
        platform: &Platform,
        objective: Objective,
    ) -> Option<BiSolution> {
        self.solve_with_budget(pipeline, platform, objective, &Budget::unlimited())
            .into_inner()
    }

    /// Budgeted variant: the move loop polls `budget` at a coarse stride
    /// and returns the best feasible state visited so far as
    /// [`Budgeted::Cutoff`] when it expires. With an unlimited budget the
    /// result equals [`solve`](Self::solve) exactly.
    #[must_use]
    pub fn solve_with_budget(
        &self,
        pipeline: &Pipeline,
        platform: &Platform,
        objective: Objective,
        budget: &Budget,
    ) -> Budgeted<Option<BiSolution>> {
        let n = pipeline.n_stages();
        let m = platform.n_procs();
        let mut rng = StdRng::seed_from_u64(self.seed);

        let ctx = EvalContext::new(pipeline, platform);
        let start = random_mapping(n, m, &mut rng);
        let mut de = DeltaEval::new(&ctx, &start);
        let mut cur = de.scores();
        let ref_latency = cur.latency.max(1e-12);
        let mut current_energy = Self::energy(
            objective,
            cur.latency,
            cur.failure_prob(),
            ref_latency,
            self.penalty,
        );

        let mut best: Option<BiSolution> = None;
        let consider_best =
            |de: &DeltaEval, latency: f64, fp: f64, best: &mut Option<BiSolution>| {
                if objective.feasible(latency, fp)
                    && best.as_ref().is_none_or(|b| {
                        objective.better_values(latency, fp, b.latency, b.failure_prob)
                    })
                {
                    // Materialize a mapping only when the incumbent improves.
                    *best = Some(BiSolution {
                        mapping: de.mapping(),
                        latency,
                        failure_prob: fp,
                    });
                }
            };
        consider_best(&de, cur.latency, cur.failure_prob(), &mut best);

        let limited = budget.is_limited();
        let mut cut = false;
        let mut moves_done = 0u64;
        let mut temperature = self.t0;
        'outer: for _ in 0..self.epochs {
            for _ in 0..self.moves_per_epoch {
                moves_done += 1;
                if limited && moves_done & 0x3F == 0 && budget.is_exhausted() {
                    cut = true;
                    break 'outer;
                }
                let Some(mv) = random_move(&de, &mut rng) else {
                    break;
                };
                let s = de.apply(mv);
                let cand_energy = Self::energy(
                    objective,
                    s.latency,
                    s.failure_prob(),
                    ref_latency,
                    self.penalty,
                );
                let accept = cand_energy <= current_energy
                    || rng.gen::<f64>() < ((current_energy - cand_energy) / temperature).exp();
                if accept {
                    de.accept();
                    cur = s;
                    current_energy = cand_energy;
                    consider_best(&de, cur.latency, cur.failure_prob(), &mut best);
                } else {
                    de.revert();
                }
            }
            temperature *= self.cooling;
        }
        if cut {
            Budgeted::Cutoff(best)
        } else {
            Budgeted::Complete(best)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpwf_core::platform::{FailureClass, PlatformClass};
    use rpwf_gen::{PipelineGen, PlatformGen};

    #[test]
    fn beats_single_interval_on_figure5() {
        let pipe = rpwf_gen::figure5_pipeline();
        let pf = rpwf_gen::figure5_platform();
        let sol = Annealing::default()
            .solve(&pipe, &pf, Objective::MinFpUnderLatency(22.0))
            .expect("feasible");
        assert!(sol.latency <= 22.0 + 1e-6);
        // Must escape the one-interval basin (FP 0.64).
        assert!(sol.failure_prob < 0.64, "fp = {}", sol.failure_prob);
    }

    #[test]
    fn deterministic_given_seed() {
        let pipe = rpwf_gen::figure5_pipeline();
        let pf = rpwf_gen::figure5_platform();
        let sa = Annealing {
            seed: 123,
            ..Annealing::default()
        };
        let a = sa.solve(&pipe, &pf, Objective::MinFpUnderLatency(25.0));
        let b = sa.solve(&pipe, &pf, Objective::MinFpUnderLatency(25.0));
        assert_eq!(a, b);
    }

    #[test]
    fn feasible_results_respect_threshold() {
        let mut rng = StdRng::seed_from_u64(17);
        for seed in 0..4u64 {
            let pipe = PipelineGen::balanced(4).sample(&mut rng);
            let pf = PlatformGen::new(
                5,
                PlatformClass::FullyHeterogeneous,
                FailureClass::Heterogeneous,
            )
            .sample(&mut rng);
            let sa = Annealing {
                seed,
                ..Annealing::default()
            };
            if let Some(sol) = sa.solve(&pipe, &pf, Objective::MinLatencyUnderFp(0.4)) {
                assert!(sol.failure_prob <= 0.4 + 1e-6);
            }
        }
    }

    #[test]
    fn infeasible_returns_none() {
        let pipe = Pipeline::uniform(2, 100.0, 100.0).unwrap();
        let pf = Platform::fully_homogeneous(2, 1.0, 1.0, 0.99).unwrap();
        assert!(Annealing::default()
            .solve(&pipe, &pf, Objective::MinLatencyUnderFp(0.001))
            .is_none());
    }

    #[test]
    fn unlimited_budget_matches_solve_exactly() {
        let pipe = rpwf_gen::figure5_pipeline();
        let pf = rpwf_gen::figure5_platform();
        let objective = Objective::MinFpUnderLatency(25.0);
        let plain = Annealing::default().solve(&pipe, &pf, objective);
        let budgeted = Annealing::default().solve_with_budget(
            &pipe,
            &pf,
            objective,
            &rpwf_core::budget::Budget::unlimited(),
        );
        assert!(budgeted.is_complete());
        assert_eq!(budgeted.into_inner(), plain);
    }

    #[test]
    fn cancellation_cuts_the_chain_off() {
        let pipe = rpwf_gen::figure5_pipeline();
        let pf = rpwf_gen::figure5_platform();
        let (budget, handle) = rpwf_core::budget::Budget::unlimited().cancellable();
        handle.cancel();
        let start = std::time::Instant::now();
        let outcome = Annealing::default().solve_with_budget(
            &pipe,
            &pf,
            Objective::MinFpUnderLatency(22.0),
            &budget,
        );
        assert!(!outcome.is_complete());
        assert!(start.elapsed() < std::time::Duration::from_secs(5));
    }
}
