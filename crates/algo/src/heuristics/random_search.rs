//! Uniform random search — the honesty baseline for experiment E10.
//!
//! Samples valid interval mappings uniformly-ish (random boundary mask,
//! random processor deal) and keeps the best feasible one. Any heuristic
//! that cannot beat this on a given budget is not earning its complexity.
//! Samples are scored through [`EvalContext::evaluate`] (one traversal,
//! cached per-processor terms, bit-identical to the full formulas); a
//! `BiSolution` is materialized only when the incumbent improves.

use crate::heuristics::neighborhood::random_mapping;
use crate::solution::{BiSolution, Budgeted, Objective};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rpwf_core::budget::Budget;
use rpwf_core::eval::EvalContext;
use rpwf_core::platform::Platform;
use rpwf_core::stage::Pipeline;

/// Budgeted random search.
#[derive(Clone, Copy, Debug)]
pub struct RandomSearch {
    /// Number of sampled mappings.
    pub samples: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomSearch {
    fn default() -> Self {
        RandomSearch {
            samples: 2000,
            seed: 0xBA5E,
        }
    }
}

impl RandomSearch {
    /// Runs the search; `None` when no sample satisfies the threshold.
    #[must_use]
    pub fn solve(
        &self,
        pipeline: &Pipeline,
        platform: &Platform,
        objective: Objective,
    ) -> Option<BiSolution> {
        self.solve_with_budget(pipeline, platform, objective, &Budget::unlimited())
            .into_inner()
    }

    /// Budgeted variant: polls `budget` every few samples and returns the
    /// best-so-far as [`Budgeted::Cutoff`] on expiry. With an unlimited
    /// budget the result equals [`solve`](Self::solve) exactly.
    #[must_use]
    pub fn solve_with_budget(
        &self,
        pipeline: &Pipeline,
        platform: &Platform,
        objective: Objective,
        budget: &Budget,
    ) -> Budgeted<Option<BiSolution>> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let ctx = EvalContext::new(pipeline, platform);
        let limited = budget.is_limited();
        let mut best: Option<BiSolution> = None;
        for i in 0..self.samples {
            if limited && i & 0x3F == 0 && budget.is_exhausted() {
                return Budgeted::Cutoff(best);
            }
            let mapping = random_mapping(pipeline.n_stages(), platform.n_procs(), &mut rng);
            let s = ctx.evaluate(&mapping);
            let fp = s.failure_prob();
            if objective.feasible(s.latency, fp)
                && best.as_ref().is_none_or(|b| {
                    objective.better_values(s.latency, fp, b.latency, b.failure_prob)
                })
            {
                best = Some(BiSolution {
                    mapping,
                    latency: s.latency,
                    failure_prob: fp,
                });
            }
        }
        Budgeted::Complete(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_feasible_solutions_with_budget() {
        let pipe = rpwf_gen::figure5_pipeline();
        let pf = rpwf_gen::figure5_platform();
        let sol = RandomSearch::default()
            .solve(&pipe, &pf, Objective::MinFpUnderLatency(30.0))
            .expect("threshold 30 is easily feasible");
        assert!(sol.latency <= 30.0 + 1e-6);
    }

    #[test]
    fn deterministic_given_seed() {
        let pipe = rpwf_gen::figure5_pipeline();
        let pf = rpwf_gen::figure5_platform();
        let rs = RandomSearch {
            samples: 500,
            seed: 5,
        };
        assert_eq!(
            rs.solve(&pipe, &pf, Objective::MinLatencyUnderFp(0.5)),
            rs.solve(&pipe, &pf, Objective::MinLatencyUnderFp(0.5))
        );
    }

    #[test]
    fn more_samples_never_worse() {
        let pipe = rpwf_gen::figure5_pipeline();
        let pf = rpwf_gen::figure5_platform();
        let obj = Objective::MinFpUnderLatency(25.0);
        let small = RandomSearch {
            samples: 100,
            seed: 7,
        }
        .solve(&pipe, &pf, obj);
        let large = RandomSearch {
            samples: 2000,
            seed: 7,
        }
        .solve(&pipe, &pf, obj);
        match (small, large) {
            (Some(s), Some(l)) => assert!(l.failure_prob <= s.failure_prob + 1e-12),
            (None, _) => {} // small budget may find nothing
            (Some(_), None) => panic!("larger budget lost a solution"),
        }
    }

    #[test]
    fn infeasible_returns_none() {
        let pipe = Pipeline::uniform(2, 100.0, 100.0).unwrap();
        let pf = Platform::fully_homogeneous(2, 1.0, 1.0, 0.9).unwrap();
        assert!(RandomSearch::default()
            .solve(&pipe, &pf, Objective::MinFpUnderLatency(1.0))
            .is_none());
    }
}
