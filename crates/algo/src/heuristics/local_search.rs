//! Steepest-descent local search over interval mappings with restarts.
//!
//! Start points cover the structurally distinct corners of the space (all
//! processors pooled, fastest alone, most-reliable half, plus seeded random
//! mappings); each descent repeatedly moves to the best neighbor under the
//! objective ordering of [`Objective::better`] (feasibility first, then the
//! minimized criterion). Works on every platform class — the go-to
//! heuristic for Fully Heterogeneous bi-criteria instances (NP-hard,
//! Theorem 7).
//!
//! Neighbors are scored through the incremental engine
//! ([`DeltaEval`] + [`MoveStream`]): each candidate is applied in place,
//! delta-scored, and reverted — no mapping clones, no full re-evaluation —
//! with scores bit-identical to the full formulas, so the descent
//! trajectory (and final answer) is exactly what the materializing
//! implementation produced. The step loop polls the request [`Budget`] so
//! tight server deadlines cut the search off with its best-so-far.

use crate::heuristics::candidate::ScanCache;
use crate::heuristics::neighborhood::{random_mapping, MoveStream};
use crate::solution::{BiSolution, Budgeted, Objective};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rpwf_core::budget::Budget;
use rpwf_core::eval::{DeltaEval, EvalContext};
use rpwf_core::mapping::IntervalMapping;
use rpwf_core::platform::Platform;
use rpwf_core::stage::Pipeline;

/// Configuration of the local search.
#[derive(Clone, Copy, Debug)]
pub struct LocalSearch {
    /// Number of additional random restarts (beyond the deterministic
    /// start points).
    pub random_restarts: usize,
    /// Cap on descent steps per start point.
    pub max_steps: usize,
    /// RNG seed for the random restarts.
    pub seed: u64,
    /// Candidate-list scanning (don't-look bits): moves on intervals
    /// untouched by the last committed move are re-scored by replaying
    /// their cached term effects instead of a full apply/revert. Seeded
    /// results are bit-identical either way (see [`ScanCache`]; E15
    /// asserts it), so this is purely a performance knob. Off by
    /// default: interval mappings keep `p` small, so one committed
    /// move's dirty window covers much of the neighborhood and the map
    /// bookkeeping often costs as much as the (already incremental)
    /// scoring it skips — opt in for workloads with many intervals,
    /// and let E15's scan-vs-dlb columns arbitrate.
    pub candidate_list: bool,
}

impl Default for LocalSearch {
    fn default() -> Self {
        LocalSearch {
            random_restarts: 8,
            max_steps: 200,
            seed: 0xC0FFEE,
            candidate_list: false,
        }
    }
}

impl LocalSearch {
    /// Runs the search; `None` when no visited mapping satisfies the
    /// threshold.
    #[must_use]
    pub fn solve(
        &self,
        pipeline: &Pipeline,
        platform: &Platform,
        objective: Objective,
    ) -> Option<BiSolution> {
        self.solve_with_budget(pipeline, platform, objective, &Budget::unlimited())
            .into_inner()
    }

    /// Budgeted variant: the descent polls `budget` between steps (and at
    /// a coarse stride inside each neighborhood scan) and returns the
    /// best feasible solution found so far as [`Budgeted::Cutoff`] when
    /// it expires. With an unlimited budget the result equals
    /// [`solve`](Self::solve) exactly.
    #[must_use]
    pub fn solve_with_budget(
        &self,
        pipeline: &Pipeline,
        platform: &Platform,
        objective: Objective,
        budget: &Budget,
    ) -> Budgeted<Option<BiSolution>> {
        let n = pipeline.n_stages();
        let m = platform.n_procs();
        let mut rng = StdRng::seed_from_u64(self.seed);

        let mut starts: Vec<IntervalMapping> = Vec::new();
        // All processors, one interval (Theorem 1 corner).
        starts.push(
            IntervalMapping::single_interval(n, platform.procs().collect(), m)
                .expect("valid start"),
        );
        // Fastest processor alone (Theorem 2 corner).
        starts.push(
            IntervalMapping::single_interval(n, vec![platform.fastest_proc()], m)
                .expect("valid start"),
        );
        // Most reliable half.
        let half = m.div_ceil(2);
        starts.push(
            IntervalMapping::single_interval(
                n,
                platform.procs_by_reliability_desc()[..half].to_vec(),
                m,
            )
            .expect("valid start"),
        );
        for _ in 0..self.random_restarts {
            starts.push(random_mapping(n, m, &mut rng));
        }

        let ctx = EvalContext::new(pipeline, platform);
        let limited = budget.is_limited();
        let mut cut = false;
        let mut de: Option<DeltaEval> = None;
        let mut cache = ScanCache::new();
        let mut best: Option<BiSolution> = None;
        let mut scanned = 0u32;
        for start in starts {
            if limited && budget.is_exhausted() {
                cut = true;
                break;
            }
            // One evaluator reused across restarts (buffers stay warm).
            let de = match &mut de {
                Some(de) => {
                    de.reset(&start);
                    de
                }
                none => none.insert(DeltaEval::new(&ctx, &start)),
            };
            cache.reset(de.n_intervals());
            let mut cur = de.scores();
            'descent: for _ in 0..self.max_steps {
                if limited && budget.is_exhausted() {
                    cut = true;
                    break;
                }
                // Scan the neighborhood in place, tracking the running
                // best exactly like the materializing scan did: each
                // improving candidate becomes the comparison point for
                // the rest of the scan. With the candidate list on,
                // moves on intervals untouched since their last scoring
                // replay their cached effects (bit-identical scores,
                // none of the work).
                let mut stream = MoveStream::new();
                let mut best_mv = None;
                let mut scan = cur;
                while let Some(mv) = stream.next(de) {
                    scanned += 1;
                    if limited && scanned & 0x1FF == 0 && budget.is_exhausted() {
                        // `cur` still describes the committed state; the
                        // partial scan's winner is simply discarded.
                        cut = true;
                        break 'descent;
                    }
                    let s = if self.candidate_list {
                        cache.score(de, mv)
                    } else {
                        let s = de.apply(mv);
                        de.revert();
                        s
                    };
                    if objective.better_values(
                        s.latency,
                        s.failure_prob(),
                        scan.latency,
                        scan.failure_prob(),
                    ) {
                        scan = s;
                        best_mv = Some(mv);
                    }
                }
                let Some(mv) = best_mv else { break };
                cur = de.apply(mv);
                de.accept();
                if self.candidate_list {
                    cache.commit(mv, de.n_intervals());
                }
            }
            if objective.feasible(cur.latency, cur.failure_prob())
                && best.as_ref().is_none_or(|b| {
                    objective.better_values(
                        cur.latency,
                        cur.failure_prob(),
                        b.latency,
                        b.failure_prob,
                    )
                })
            {
                best = Some(BiSolution {
                    mapping: de.mapping(),
                    latency: cur.latency,
                    failure_prob: cur.failure_prob(),
                });
            }
            if cut {
                break;
            }
        }
        if cut {
            Budgeted::Cutoff(best)
        } else {
            Budgeted::Complete(best)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::Exhaustive;
    use rand::Rng;
    use rpwf_core::assert_approx_eq;
    use rpwf_core::platform::{FailureClass, PlatformClass};
    use rpwf_gen::{PipelineGen, PlatformGen};

    #[test]
    fn finds_figure5_optimum() {
        let pipe = rpwf_gen::figure5_pipeline();
        let pf = rpwf_gen::figure5_platform();
        let sol = LocalSearch::default()
            .solve(&pipe, &pf, Objective::MinFpUnderLatency(22.0))
            .expect("feasible");
        // The descent must at least beat the best single interval (0.64)
        // and in practice reaches the paper optimum.
        assert!(sol.failure_prob < 0.64);
        assert_approx_eq!(sol.failure_prob, 1.0 - 0.9 * (1.0 - 0.8f64.powi(10)), 1e-6);
    }

    #[test]
    fn respects_feasibility() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..5 {
            let pipe = PipelineGen::balanced(3).sample(&mut rng);
            let pf = PlatformGen::new(
                4,
                PlatformClass::FullyHeterogeneous,
                FailureClass::Heterogeneous,
            )
            .sample(&mut rng);
            let l = rng.gen_range(10.0..200.0);
            if let Some(sol) =
                LocalSearch::default().solve(&pipe, &pf, Objective::MinFpUnderLatency(l))
            {
                assert!(sol.latency <= l + 1e-6, "latency {} > {l}", sol.latency);
            }
        }
    }

    #[test]
    fn near_oracle_on_small_het_instances() {
        // On tiny instances the descent should land within a small factor of
        // the oracle (and often exactly on it).
        let mut rng = StdRng::seed_from_u64(7);
        let mut hits = 0usize;
        let trials = 6;
        for _ in 0..trials {
            let pipe = PipelineGen::balanced(3).sample(&mut rng);
            let pf = PlatformGen::new(
                4,
                PlatformClass::FullyHeterogeneous,
                FailureClass::Heterogeneous,
            )
            .sample(&mut rng);
            let oracle = Exhaustive::new(&pipe, &pf).min_failure();
            let l = oracle.latency * 1.2;
            let opt = Exhaustive::new(&pipe, &pf)
                .solve(Objective::MinFpUnderLatency(l))
                .expect("oracle feasible");
            let heur = LocalSearch::default()
                .solve(&pipe, &pf, Objective::MinFpUnderLatency(l))
                .expect("heuristic feasible when oracle is");
            assert!(heur.failure_prob >= opt.failure_prob - 1e-12);
            if (heur.failure_prob - opt.failure_prob).abs() < 1e-9 {
                hits += 1;
            }
        }
        assert!(
            hits >= trials / 2,
            "local search matched oracle only {hits}/{trials} times"
        );
    }

    #[test]
    fn candidate_list_matches_full_scan_exactly() {
        // Don't-look bits are a pure speedup: seeded answers must be
        // identical (mapping and bit-level objectives) to the full scan,
        // across platform classes and both objectives.
        let mut rng = StdRng::seed_from_u64(17);
        for trial in 0..6 {
            let pipe = PipelineGen::balanced(4 + trial % 3).sample(&mut rng);
            let pf = PlatformGen::new(
                5 + trial % 4,
                if trial % 2 == 0 {
                    PlatformClass::FullyHeterogeneous
                } else {
                    PlatformClass::CommHomogeneous
                },
                FailureClass::Heterogeneous,
            )
            .sample(&mut rng);
            let objective = if trial % 2 == 0 {
                Objective::MinLatencyUnderFp(0.6)
            } else {
                Objective::MinFpUnderLatency(
                    crate::mono::minimize_failure(&pipe, &pf).latency * 1.3,
                )
            };
            let with = LocalSearch {
                candidate_list: true,
                seed: 3 + trial as u64,
                ..Default::default()
            };
            let without = LocalSearch {
                candidate_list: false,
                ..with
            };
            assert_eq!(
                with.solve(&pipe, &pf, objective),
                without.solve(&pipe, &pf, objective),
                "trial {trial}: candidate-list scan must not change the answer"
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let pipe = rpwf_gen::figure5_pipeline();
        let pf = rpwf_gen::figure5_platform();
        let ls = LocalSearch {
            random_restarts: 4,
            max_steps: 50,
            seed: 99,
            ..Default::default()
        };
        let a = ls.solve(&pipe, &pf, Objective::MinLatencyUnderFp(0.3));
        let b = ls.solve(&pipe, &pf, Objective::MinLatencyUnderFp(0.3));
        assert_eq!(a, b);
    }

    #[test]
    fn infeasible_returns_none() {
        let pipe = Pipeline::uniform(2, 100.0, 100.0).unwrap();
        let pf = Platform::fully_homogeneous(2, 1.0, 1.0, 0.9).unwrap();
        assert!(LocalSearch::default()
            .solve(&pipe, &pf, Objective::MinFpUnderLatency(1.0))
            .is_none());
    }

    #[test]
    fn unlimited_budget_matches_solve_exactly() {
        let pipe = rpwf_gen::figure5_pipeline();
        let pf = rpwf_gen::figure5_platform();
        let objective = Objective::MinFpUnderLatency(22.0);
        let plain = LocalSearch::default().solve(&pipe, &pf, objective);
        let budgeted = LocalSearch::default().solve_with_budget(
            &pipe,
            &pf,
            objective,
            &rpwf_core::budget::Budget::unlimited(),
        );
        assert!(budgeted.is_complete());
        assert_eq!(budgeted.into_inner(), plain);
    }

    #[test]
    fn expired_budget_reports_cutoff_promptly() {
        let mut rng = StdRng::seed_from_u64(3);
        let pipe = PipelineGen::balanced(10).sample(&mut rng);
        let pf = PlatformGen::new(
            12,
            PlatformClass::FullyHeterogeneous,
            FailureClass::Heterogeneous,
        )
        .sample(&mut rng);
        let budget = rpwf_core::budget::Budget::with_deadline(std::time::Duration::ZERO);
        let start = std::time::Instant::now();
        let outcome = LocalSearch::default().solve_with_budget(
            &pipe,
            &pf,
            Objective::MinLatencyUnderFp(0.9),
            &budget,
        );
        assert!(!outcome.is_complete(), "expired budget must cut off");
        assert!(
            start.elapsed() < std::time::Duration::from_secs(5),
            "cutoff must be prompt, took {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn cancellation_cuts_the_search_off() {
        let pipe = rpwf_gen::figure5_pipeline();
        let pf = rpwf_gen::figure5_platform();
        let (budget, handle) = rpwf_core::budget::Budget::unlimited().cancellable();
        handle.cancel();
        let outcome = LocalSearch::default().solve_with_budget(
            &pipe,
            &pf,
            Objective::MinFpUnderLatency(22.0),
            &budget,
        );
        assert!(!outcome.is_complete());
    }
}
