//! Steepest-descent local search over interval mappings with restarts.
//!
//! Start points cover the structurally distinct corners of the space (all
//! processors pooled, fastest alone, most-reliable half, plus seeded random
//! mappings); each descent repeatedly moves to the best neighbor under the
//! objective ordering of [`Objective::better`] (feasibility first, then the
//! minimized criterion). Works on every platform class — the go-to
//! heuristic for Fully Heterogeneous bi-criteria instances (NP-hard,
//! Theorem 7).

use crate::heuristics::neighborhood::{neighbors, random_mapping};
use crate::solution::{BiSolution, Objective};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rpwf_core::mapping::IntervalMapping;
use rpwf_core::platform::Platform;
use rpwf_core::stage::Pipeline;

/// Configuration of the local search.
#[derive(Clone, Copy, Debug)]
pub struct LocalSearch {
    /// Number of additional random restarts (beyond the deterministic
    /// start points).
    pub random_restarts: usize,
    /// Cap on descent steps per start point.
    pub max_steps: usize,
    /// RNG seed for the random restarts.
    pub seed: u64,
}

impl Default for LocalSearch {
    fn default() -> Self {
        LocalSearch {
            random_restarts: 8,
            max_steps: 200,
            seed: 0xC0FFEE,
        }
    }
}

impl LocalSearch {
    /// Runs the search; `None` when no visited mapping satisfies the
    /// threshold.
    #[must_use]
    pub fn solve(
        &self,
        pipeline: &Pipeline,
        platform: &Platform,
        objective: Objective,
    ) -> Option<BiSolution> {
        let n = pipeline.n_stages();
        let m = platform.n_procs();
        let mut rng = StdRng::seed_from_u64(self.seed);

        let mut starts: Vec<IntervalMapping> = Vec::new();
        // All processors, one interval (Theorem 1 corner).
        starts.push(
            IntervalMapping::single_interval(n, platform.procs().collect(), m)
                .expect("valid start"),
        );
        // Fastest processor alone (Theorem 2 corner).
        starts.push(
            IntervalMapping::single_interval(n, vec![platform.fastest_proc()], m)
                .expect("valid start"),
        );
        // Most reliable half.
        let half = m.div_ceil(2);
        starts.push(
            IntervalMapping::single_interval(
                n,
                platform.procs_by_reliability_desc()[..half].to_vec(),
                m,
            )
            .expect("valid start"),
        );
        for _ in 0..self.random_restarts {
            starts.push(random_mapping(n, m, &mut rng));
        }

        let mut best: Option<BiSolution> = None;
        for start in starts {
            let mut current = BiSolution::evaluate(start, pipeline, platform);
            for _ in 0..self.max_steps {
                let mut improved = false;
                for nb in neighbors(&current.mapping, m) {
                    let cand = BiSolution::evaluate(nb, pipeline, platform);
                    if objective.better(&cand, &current) {
                        current = cand;
                        improved = true;
                    }
                }
                if !improved {
                    break;
                }
            }
            if objective.feasible(current.latency, current.failure_prob)
                && best.as_ref().is_none_or(|b| objective.better(&current, b))
            {
                best = Some(current);
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::Exhaustive;
    use rand::Rng;
    use rpwf_core::assert_approx_eq;
    use rpwf_core::platform::{FailureClass, PlatformClass};
    use rpwf_gen::{PipelineGen, PlatformGen};

    #[test]
    fn finds_figure5_optimum() {
        let pipe = rpwf_gen::figure5_pipeline();
        let pf = rpwf_gen::figure5_platform();
        let sol = LocalSearch::default()
            .solve(&pipe, &pf, Objective::MinFpUnderLatency(22.0))
            .expect("feasible");
        // The descent must at least beat the best single interval (0.64)
        // and in practice reaches the paper optimum.
        assert!(sol.failure_prob < 0.64);
        assert_approx_eq!(sol.failure_prob, 1.0 - 0.9 * (1.0 - 0.8f64.powi(10)), 1e-6);
    }

    #[test]
    fn respects_feasibility() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..5 {
            let pipe = PipelineGen::balanced(3).sample(&mut rng);
            let pf = PlatformGen::new(
                4,
                PlatformClass::FullyHeterogeneous,
                FailureClass::Heterogeneous,
            )
            .sample(&mut rng);
            let l = rng.gen_range(10.0..200.0);
            if let Some(sol) =
                LocalSearch::default().solve(&pipe, &pf, Objective::MinFpUnderLatency(l))
            {
                assert!(sol.latency <= l + 1e-6, "latency {} > {l}", sol.latency);
            }
        }
    }

    #[test]
    fn near_oracle_on_small_het_instances() {
        // On tiny instances the descent should land within a small factor of
        // the oracle (and often exactly on it).
        let mut rng = StdRng::seed_from_u64(7);
        let mut hits = 0usize;
        let trials = 6;
        for _ in 0..trials {
            let pipe = PipelineGen::balanced(3).sample(&mut rng);
            let pf = PlatformGen::new(
                4,
                PlatformClass::FullyHeterogeneous,
                FailureClass::Heterogeneous,
            )
            .sample(&mut rng);
            let oracle = Exhaustive::new(&pipe, &pf).min_failure();
            let l = oracle.latency * 1.2;
            let opt = Exhaustive::new(&pipe, &pf)
                .solve(Objective::MinFpUnderLatency(l))
                .expect("oracle feasible");
            let heur = LocalSearch::default()
                .solve(&pipe, &pf, Objective::MinFpUnderLatency(l))
                .expect("heuristic feasible when oracle is");
            assert!(heur.failure_prob >= opt.failure_prob - 1e-12);
            if (heur.failure_prob - opt.failure_prob).abs() < 1e-9 {
                hits += 1;
            }
        }
        assert!(
            hits >= trials / 2,
            "local search matched oracle only {hits}/{trials} times"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let pipe = rpwf_gen::figure5_pipeline();
        let pf = rpwf_gen::figure5_platform();
        let ls = LocalSearch {
            random_restarts: 4,
            max_steps: 50,
            seed: 99,
        };
        let a = ls.solve(&pipe, &pf, Objective::MinLatencyUnderFp(0.3));
        let b = ls.solve(&pipe, &pf, Objective::MinLatencyUnderFp(0.3));
        assert_eq!(a, b);
    }

    #[test]
    fn infeasible_returns_none() {
        let pipe = Pipeline::uniform(2, 100.0, 100.0).unwrap();
        let pf = Platform::fully_homogeneous(2, 1.0, 1.0, 0.9).unwrap();
        assert!(LocalSearch::default()
            .solve(&pipe, &pf, Objective::MinFpUnderLatency(1.0))
            .is_none());
    }
}
