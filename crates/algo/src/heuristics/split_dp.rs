//! Contiguous-order DP heuristic for Communication Homogeneous platforms
//! with heterogeneous failures (the paper's open problem, §4.4).
//!
//! Fix a total order π of the processors; restrict attention to mappings
//! whose replica sets are **contiguous blocks of π**, consumed left to
//! right. Under equation (1), interval costs are local, so the restricted
//! problem is an exact Pareto DP over states `(next stage, next processor
//! index)` — `O(n²·m²)` instead of the unrestricted `O(n²·3^m)`.
//! The restriction is the heuristic: an optimal mapping may interleave
//! processors arbitrarily. Running several orders (speed, reliability, and
//! a reliability-per-cost score) and merging their fronts recovers most of
//! the gap in practice — quantified against the exact bitmask DP in
//! experiment E10.

use crate::solution::{BiSolution, Objective};
use rpwf_core::error::{CoreError, Result};
use rpwf_core::mapping::{Interval, IntervalMapping};
use rpwf_core::num::LogProb;
use rpwf_core::pareto::ParetoFront;
use rpwf_core::platform::{Platform, ProcId};
use rpwf_core::stage::Pipeline;

/// Per-interval block in the compact DP payload: `(end stage, block len)`.
type Blocks = Vec<(u8, u8)>;

/// The Pareto front reachable with replica sets contiguous in `order`.
///
/// # Errors
/// [`CoreError::NotCommHomogeneous`] on heterogeneous links.
pub fn pareto_front_for_order(
    pipeline: &Pipeline,
    platform: &Platform,
    order: &[ProcId],
) -> Result<ParetoFront<IntervalMapping>> {
    let b = platform
        .uniform_bandwidth()
        .ok_or(CoreError::NotCommHomogeneous)?;
    let n = pipeline.n_stages();
    let m = order.len();

    // Prefix tables over the order: min speed and fp-cost of each block
    // order[t..t+k] are computed on the fly from per-position values.
    let speeds: Vec<f64> = order.iter().map(|&p| platform.speed(p)).collect();
    let fps: Vec<f64> = order.iter().map(|&p| platform.failure_prob(p)).collect();

    // states[(i, t)] = Pareto front of (latency, fp_cost) with payload the
    // block list so far.
    let idx = |i: usize, t: usize| i * (m + 1) + t;
    let mut states: Vec<ParetoFront<Blocks>> =
        (0..(n + 1) * (m + 1)).map(|_| ParetoFront::new()).collect();
    states[idx(0, 0)].insert(0.0, 0.0, Vec::new());

    for i in 0..n {
        for t in 0..m {
            if states[idx(i, t)].is_empty() {
                continue;
            }
            let source = std::mem::take(&mut states[idx(i, t)]);
            for e in i..n {
                let work = pipeline.work_sum(i, e);
                let input = pipeline.delta(i);
                let mut min_speed = f64::INFINITY;
                let mut all_fail = LogProb::ONE;
                for k in 1..=(m - t) {
                    min_speed = min_speed.min(speeds[t + k - 1]);
                    all_fail = all_fail * LogProb::from_prob(fps[t + k - 1]);
                    let lat_step = k as f64 * input / b + work / min_speed;
                    let fp_step = -all_fail.one_minus().ln();
                    let target = idx(e + 1, t + k);
                    for pt in source.iter() {
                        let mut blocks = pt.payload.clone();
                        blocks.push((e as u8, k as u8));
                        states[target].insert(
                            pt.latency + lat_step,
                            pt.failure_prob + fp_step,
                            blocks,
                        );
                    }
                }
            }
            states[idx(i, t)] = source;
        }
    }

    let out_comm = pipeline.output_size() / b;
    let mut front = ParetoFront::new();
    for t in 1..=m {
        for pt in states[idx(n, t)].iter() {
            let mapping = decode(&pt.payload, order, n, platform.n_procs());
            front.insert(pt.latency + out_comm, -(-pt.failure_prob).exp_m1(), mapping);
        }
    }
    Ok(front)
}

/// Merged front over the default order portfolio: speed-descending,
/// reliability-descending, and `−ln(fp)·s` score-descending.
///
/// # Errors
/// [`CoreError::NotCommHomogeneous`] on heterogeneous links.
pub fn pareto_front(
    pipeline: &Pipeline,
    platform: &Platform,
) -> Result<ParetoFront<IntervalMapping>> {
    let mut front = ParetoFront::new();
    for order in default_orders(platform) {
        front.merge(pareto_front_for_order(pipeline, platform, &order)?);
    }
    Ok(front)
}

/// Threshold query on the merged portfolio front.
///
/// # Errors
/// [`CoreError::NotCommHomogeneous`] on heterogeneous links.
pub fn solve(
    pipeline: &Pipeline,
    platform: &Platform,
    objective: Objective,
) -> Result<Option<BiSolution>> {
    let front = pareto_front(pipeline, platform)?;
    let cutoff = objective.threshold_with_slack();
    let pt = match objective {
        Objective::MinFpUnderLatency(_) => front.min_fp_under_latency(cutoff),
        Objective::MinLatencyUnderFp(_) => front.min_latency_under_fp(cutoff),
    };
    Ok(pt.map(|pt| BiSolution {
        mapping: pt.payload.clone(),
        latency: pt.latency,
        failure_prob: pt.failure_prob,
    }))
}

/// The order portfolio used by [`pareto_front`].
#[must_use]
pub fn default_orders(platform: &Platform) -> Vec<Vec<ProcId>> {
    let mut by_score: Vec<ProcId> = platform.procs().collect();
    by_score.sort_by(|a, b| {
        let score =
            |p: ProcId| -LogProb::from_prob(platform.failure_prob(p)).ln() * platform.speed(p);
        score(*b).total_cmp(&score(*a)).then(a.0.cmp(&b.0))
    });
    vec![
        platform.procs_by_speed_desc(),
        platform.procs_by_reliability_desc(),
        by_score,
    ]
}

fn decode(blocks: &Blocks, order: &[ProcId], n: usize, n_procs: usize) -> IntervalMapping {
    let mut intervals = Vec::with_capacity(blocks.len());
    let mut alloc = Vec::with_capacity(blocks.len());
    let mut start = 0usize;
    let mut t = 0usize;
    for &(end, k) in blocks {
        intervals.push(Interval::new(start, end as usize).expect("ordered"));
        alloc.push(order[t..t + k as usize].to_vec());
        start = end as usize + 1;
        t += k as usize;
    }
    IntervalMapping::new(intervals, alloc, n, n_procs).expect("DP blocks are valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::bitmask_dp;
    use rpwf_core::assert_approx_eq;

    #[test]
    fn figure5_split_dp_finds_paper_optimum() {
        // In Figure 5 the optimal mapping is contiguous in the reliability
        // order (slow reliable processor first, then the fast ones), so the
        // heuristic is exact there.
        let pipe = rpwf_gen::figure5_pipeline();
        let pf = rpwf_gen::figure5_platform();
        let sol = solve(&pipe, &pf, Objective::MinFpUnderLatency(22.0))
            .unwrap()
            .expect("feasible");
        assert_approx_eq!(sol.latency, 22.0);
        assert_approx_eq!(sol.failure_prob, 1.0 - 0.9 * (1.0 - 0.8f64.powi(10)));
    }

    #[test]
    fn front_is_subset_of_exact_region() {
        // Heuristic points are real mappings: every point must be weakly
        // dominated by the exact front, and all values must re-evaluate.
        let pipe = Pipeline::new(vec![3.0, 7.0, 2.0], vec![4.0, 2.0, 5.0, 1.0]).unwrap();
        let pf =
            Platform::comm_homogeneous(vec![1.0, 2.5, 4.0, 2.0], 2.0, vec![0.5, 0.3, 0.7, 0.2])
                .unwrap();
        let heur = pareto_front(&pipe, &pf).unwrap();
        let exact = bitmask_dp::pareto_front_comm_homog(&pipe, &pf).unwrap();
        for pt in heur.iter() {
            assert!(
                exact
                    .iter()
                    .any(|e| e.latency <= pt.latency + 1e-9
                        && e.failure_prob <= pt.failure_prob + 1e-9),
                "heuristic point ({}, {}) outside exact region",
                pt.latency,
                pt.failure_prob
            );
            let again = BiSolution::evaluate(pt.payload.clone(), &pipe, &pf);
            assert_approx_eq!(again.latency, pt.latency);
            assert_approx_eq!(again.failure_prob, pt.failure_prob);
        }
    }

    #[test]
    fn single_order_front_is_contained_in_portfolio_front() {
        let pipe = Pipeline::new(vec![1.0, 9.0], vec![3.0, 3.0, 3.0]).unwrap();
        let pf = Platform::comm_homogeneous(vec![4.0, 2.0, 1.0], 1.5, vec![0.2, 0.5, 0.6]).unwrap();
        let order = pf.procs_by_speed_desc();
        let single = pareto_front_for_order(&pipe, &pf, &order).unwrap();
        let portfolio = pareto_front(&pipe, &pf).unwrap();
        for pt in single.iter() {
            assert!(portfolio
                .iter()
                .any(|q| q.latency <= pt.latency + 1e-12
                    && q.failure_prob <= pt.failure_prob + 1e-12));
        }
    }

    #[test]
    fn rejects_het_links() {
        let pipe = rpwf_gen::figure3_pipeline();
        let pf = rpwf_gen::figure4_platform();
        assert!(pareto_front(&pipe, &pf).is_err());
    }

    #[test]
    fn infeasible_threshold_is_none() {
        let pipe = Pipeline::uniform(2, 100.0, 100.0).unwrap();
        let pf = Platform::fully_homogeneous(3, 1.0, 1.0, 0.5).unwrap();
        assert!(solve(&pipe, &pf, Objective::MinFpUnderLatency(1.0))
            .unwrap()
            .is_none());
    }
}
