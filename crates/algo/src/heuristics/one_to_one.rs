//! Heuristics for Theorem 3's NP-hard problem: minimum-latency one-to-one
//! mapping on Fully Heterogeneous platforms.
//!
//! The problem is TSP-shaped (the reduction of Theorem 3 is literal), so
//! the classic TSP toolbox applies:
//!
//! * [`greedy_one_to_one`] — nearest-neighbor construction: start from the
//!   processor with the cheapest input link (+ first stage compute), then
//!   repeatedly append the processor minimizing the marginal hop cost;
//! * [`two_opt_one_to_one`] — 2-opt-style improvement: segment reversals
//!   and single-position swaps (including swaps with unused processors)
//!   until a local optimum.
//!
//! Validated against the exact Held–Karp DP on small instances; used as the
//! scalable answer beyond `m ≈ 18`.

use rpwf_core::mapping::OneToOneMapping;
use rpwf_core::metrics::one_to_one_latency;
use rpwf_core::platform::{Platform, ProcId, Vertex};
use rpwf_core::stage::Pipeline;

/// Nearest-neighbor construction. `None` when `n > m`.
#[must_use]
pub fn greedy_one_to_one(
    pipeline: &Pipeline,
    platform: &Platform,
) -> Option<(OneToOneMapping, f64)> {
    let n = pipeline.n_stages();
    let m = platform.n_procs();
    if n > m {
        return None;
    }
    let mut used = vec![false; m];
    let mut order: Vec<ProcId> = Vec::with_capacity(n);

    // Stage 0: cheapest input + compute.
    let first = platform
        .procs()
        .min_by(|&a, &b| {
            let ca = platform.comm_time(Vertex::In, Vertex::Proc(a), pipeline.input_size())
                + pipeline.work(0) / platform.speed(a);
            let cb = platform.comm_time(Vertex::In, Vertex::Proc(b), pipeline.input_size())
                + pipeline.work(0) / platform.speed(b);
            ca.total_cmp(&cb).then(a.0.cmp(&b.0))
        })
        .expect("platform non-empty");
    used[first.index()] = true;
    order.push(first);

    for k in 1..n {
        let prev = order[k - 1];
        // Marginal cost of putting stage k on v: inter-stage comm + compute
        // (+ the output link for the final stage, which otherwise would be
        // invisible to the greedy choice).
        let next = platform
            .procs()
            .filter(|v| !used[v.index()])
            .min_by(|&a, &b| {
                let cost = |v: ProcId| {
                    let mut c =
                        platform.comm_time(Vertex::Proc(prev), Vertex::Proc(v), pipeline.delta(k))
                            + pipeline.work(k) / platform.speed(v);
                    if k == n - 1 {
                        c += platform.comm_time(
                            Vertex::Proc(v),
                            Vertex::Out,
                            pipeline.output_size(),
                        );
                    }
                    c
                };
                cost(a).total_cmp(&cost(b)).then(a.0.cmp(&b.0))
            })
            .expect("n ≤ m leaves a free processor");
        used[next.index()] = true;
        order.push(next);
    }

    let mapping = OneToOneMapping::new(order, m).expect("greedy picks distinct processors");
    let latency = one_to_one_latency(&mapping, pipeline, platform);
    Some((mapping, latency))
}

/// Local improvement over a one-to-one mapping: segment reversals (2-opt)
/// and swaps with both used and unused processors, to a local optimum.
/// Returns the improved mapping and its latency.
#[must_use]
pub fn two_opt_one_to_one(
    pipeline: &Pipeline,
    platform: &Platform,
    start: &OneToOneMapping,
) -> (OneToOneMapping, f64) {
    let n = pipeline.n_stages();
    let m = platform.n_procs();
    let mut order: Vec<ProcId> = start.procs().to_vec();
    let mut best_lat = one_to_one_latency(start, pipeline, platform);

    let eval = |order: &[ProcId]| -> f64 {
        let mapping = OneToOneMapping::new(order.to_vec(), m).expect("distinct by construction");
        one_to_one_latency(&mapping, pipeline, platform)
    };

    let mut improved = true;
    while improved {
        improved = false;
        // 2-opt: reverse order[i..=j].
        for i in 0..n {
            for j in i + 1..n {
                let mut cand = order.clone();
                cand[i..=j].reverse();
                let lat = eval(&cand);
                if lat + 1e-12 < best_lat {
                    order = cand;
                    best_lat = lat;
                    improved = true;
                }
            }
        }
        // Swap a used position with an unused processor.
        let used: std::collections::HashSet<ProcId> = order.iter().copied().collect();
        let free: Vec<ProcId> = platform.procs().filter(|p| !used.contains(p)).collect();
        for i in 0..n {
            for &f in &free {
                let mut cand = order.clone();
                cand[i] = f;
                let lat = eval(&cand);
                if lat + 1e-12 < best_lat {
                    order = cand;
                    best_lat = lat;
                    improved = true;
                }
            }
            if improved {
                break; // the free list is stale; recompute on next sweep
            }
        }
    }
    let mapping = OneToOneMapping::new(order, m).expect("moves preserve distinctness");
    (mapping, best_lat)
}

/// Greedy construction followed by 2-opt improvement. `None` when `n > m`.
#[must_use]
pub fn solve_one_to_one(
    pipeline: &Pipeline,
    platform: &Platform,
) -> Option<(OneToOneMapping, f64)> {
    let (greedy, _) = greedy_one_to_one(pipeline, platform)?;
    Some(two_opt_one_to_one(pipeline, platform, &greedy))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::min_latency_one_to_one;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rpwf_core::assert_approx_eq;
    use rpwf_core::platform::{FailureClass, PlatformClass};
    use rpwf_gen::{PipelineGen, PlatformGen};

    #[test]
    fn greedy_produces_valid_mappings() {
        let mut rng = StdRng::seed_from_u64(71);
        for _ in 0..10 {
            let pipe = PipelineGen::balanced(4).sample(&mut rng);
            let pf = PlatformGen::new(
                6,
                PlatformClass::FullyHeterogeneous,
                FailureClass::Heterogeneous,
            )
            .sample(&mut rng);
            let (mapping, lat) = greedy_one_to_one(&pipe, &pf).unwrap();
            assert_eq!(mapping.n_stages(), 4);
            assert_approx_eq!(lat, one_to_one_latency(&mapping, &pipe, &pf));
        }
    }

    #[test]
    fn two_opt_never_worsens() {
        let mut rng = StdRng::seed_from_u64(72);
        for _ in 0..10 {
            let pipe = PipelineGen::comm_heavy(4).sample(&mut rng);
            let pf = PlatformGen::new(
                6,
                PlatformClass::FullyHeterogeneous,
                FailureClass::Heterogeneous,
            )
            .sample(&mut rng);
            let (greedy, greedy_lat) = greedy_one_to_one(&pipe, &pf).unwrap();
            let (_, improved_lat) = two_opt_one_to_one(&pipe, &pf, &greedy);
            assert!(improved_lat <= greedy_lat + 1e-9);
        }
    }

    #[test]
    fn close_to_held_karp_on_small_instances() {
        let mut rng = StdRng::seed_from_u64(73);
        let mut ratios = Vec::new();
        for _ in 0..12 {
            let pipe = PipelineGen::balanced(4).sample(&mut rng);
            let pf = PlatformGen::new(
                6,
                PlatformClass::FullyHeterogeneous,
                FailureClass::Heterogeneous,
            )
            .sample(&mut rng);
            let (_, heur) = solve_one_to_one(&pipe, &pf).unwrap();
            let (_, exact) = min_latency_one_to_one(&pipe, &pf).unwrap();
            assert!(heur >= exact - 1e-9, "heuristic cannot beat the exact DP");
            ratios.push(heur / exact);
        }
        let mean: f64 = ratios.iter().sum::<f64>() / ratios.len() as f64;
        assert!(mean <= 1.15, "mean optimality ratio too poor: {mean}");
        let max = ratios.iter().copied().fold(0.0f64, f64::max);
        assert!(max <= 1.6, "worst-case ratio too poor: {max}");
    }

    #[test]
    fn figure34_is_solved_exactly() {
        let pipe = rpwf_gen::figure3_pipeline();
        let pf = rpwf_gen::figure4_platform();
        let (mapping, lat) = solve_one_to_one(&pipe, &pf).unwrap();
        assert_approx_eq!(lat, 7.0);
        assert_eq!(mapping.procs(), &[ProcId(0), ProcId(1)]);
    }

    #[test]
    fn too_few_processors_is_none() {
        let pipe = Pipeline::uniform(4, 1.0, 1.0).unwrap();
        let pf = Platform::fully_homogeneous(2, 1.0, 1.0, 0.0).unwrap();
        assert!(greedy_one_to_one(&pipe, &pf).is_none());
        assert!(solve_one_to_one(&pipe, &pf).is_none());
    }

    #[test]
    fn scales_beyond_held_karp_reach() {
        // m = 40 is far beyond the exact DP; the heuristic must return a
        // valid mapping quickly.
        let mut rng = StdRng::seed_from_u64(74);
        let pipe = PipelineGen::balanced(12).sample(&mut rng);
        let pf = PlatformGen::new(
            40,
            PlatformClass::FullyHeterogeneous,
            FailureClass::Heterogeneous,
        )
        .sample(&mut rng);
        let (mapping, lat) = solve_one_to_one(&pipe, &pf).unwrap();
        assert_eq!(mapping.n_stages(), 12);
        assert!(lat.is_finite());
    }
}
