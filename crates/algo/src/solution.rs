//! Solution and objective types shared by every solver.

use rpwf_core::mapping::IntervalMapping;
use rpwf_core::metrics::{failure_probability, latency};
use rpwf_core::platform::Platform;
use rpwf_core::stage::Pipeline;
use serde::{Deserialize, Serialize};

/// An evaluated interval mapping: the mapping plus both objective values.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BiSolution {
    /// The mapping.
    pub mapping: IntervalMapping,
    /// Worst-case latency (equation (2), total on every platform class).
    pub latency: f64,
    /// Global failure probability.
    pub failure_prob: f64,
}

impl BiSolution {
    /// Evaluates a mapping against both objectives.
    #[must_use]
    pub fn evaluate(mapping: IntervalMapping, pipeline: &Pipeline, platform: &Platform) -> Self {
        let latency = latency(&mapping, pipeline, platform);
        let failure_prob = failure_probability(&mapping, platform);
        BiSolution {
            mapping,
            latency,
            failure_prob,
        }
    }
}

/// Outcome of a budgeted (deadline- or cancellation-bounded) solve.
///
/// Exponential solvers poll a [`rpwf_core::budget::Budget`] in their hot
/// loops; when it exhausts they unwind with their best partial answer
/// wrapped in [`Budgeted::Cutoff`] instead of running to completion.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Budgeted<T> {
    /// The solver ran to completion; the payload is exact.
    Complete(T),
    /// The budget expired first; the payload is the best answer found
    /// before the cutoff (feasible when present, but not proven optimal).
    Cutoff(T),
}

impl<T> Budgeted<T> {
    /// `true` for [`Budgeted::Complete`].
    #[must_use]
    pub fn is_complete(&self) -> bool {
        matches!(self, Budgeted::Complete(_))
    }

    /// The payload, discarding completeness.
    pub fn into_inner(self) -> T {
        match self {
            Budgeted::Complete(inner) | Budgeted::Cutoff(inner) => inner,
        }
    }

    /// Borrows the payload.
    #[must_use]
    pub fn inner(&self) -> &T {
        match self {
            Budgeted::Complete(inner) | Budgeted::Cutoff(inner) => inner,
        }
    }

    /// Unwraps the payload while folding completeness into `complete`
    /// (a [`Budgeted::Cutoff`] clears the flag; a
    /// [`Budgeted::Complete`] leaves it untouched) — for aggregating
    /// several budgeted runs into one overall outcome.
    pub fn map_complete(self, complete: &mut bool) -> T {
        if !self.is_complete() {
            *complete = false;
        }
        self.into_inner()
    }
}

/// The two threshold problems of the paper (§2.2).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Objective {
    /// Minimize failure probability subject to `latency ≤ L`.
    MinFpUnderLatency(f64),
    /// Minimize latency subject to `failure probability ≤ F`.
    MinLatencyUnderFp(f64),
}

impl Objective {
    /// Whether a `(latency, fp)` pair satisfies the threshold constraint.
    /// Thresholds are compared with a tiny absolute slack so that solutions
    /// constructed to sit exactly on the bound (like the paper's Figure 5
    /// mapping at `L = 22`) are not rejected for one ulp.
    #[must_use]
    pub fn feasible(&self, latency: f64, failure_prob: f64) -> bool {
        const SLACK: f64 = 1e-9;
        match *self {
            Objective::MinFpUnderLatency(l) => latency <= l * (1.0 + SLACK) + SLACK,
            Objective::MinLatencyUnderFp(f) => failure_prob <= f * (1.0 + SLACK) + SLACK,
        }
    }

    /// The threshold with the same slack that [`Objective::feasible`]
    /// grants. Front queries (`min_fp_under_latency` etc.) must use this
    /// value so that threshold solvers and feasibility checks agree on
    /// boundary instances (thresholds computed to sit exactly on a
    /// mapping's latency are a common experiment pattern).
    #[must_use]
    pub fn threshold_with_slack(&self) -> f64 {
        const SLACK: f64 = 1e-9;
        match *self {
            Objective::MinFpUnderLatency(l) => l * (1.0 + SLACK) + SLACK,
            Objective::MinLatencyUnderFp(f) => f * (1.0 + SLACK) + SLACK,
        }
    }

    /// The value being minimized.
    #[must_use]
    pub fn value(&self, latency: f64, failure_prob: f64) -> f64 {
        match *self {
            Objective::MinFpUnderLatency(_) => failure_prob,
            Objective::MinLatencyUnderFp(_) => latency,
        }
    }

    /// The constrained quantity (for reporting violations).
    #[must_use]
    pub fn constraint_excess(&self, latency: f64, failure_prob: f64) -> f64 {
        match *self {
            Objective::MinFpUnderLatency(l) => (latency - l).max(0.0),
            Objective::MinLatencyUnderFp(f) => (failure_prob - f).max(0.0),
        }
    }

    /// `true` when `a` strictly improves on `b` under this objective:
    /// feasibility first, then the minimized value, then the other
    /// criterion as a tie-breaker.
    #[must_use]
    pub fn better(&self, a: &BiSolution, b: &BiSolution) -> bool {
        self.better_values(a.latency, a.failure_prob, b.latency, b.failure_prob)
    }

    /// [`Objective::better`] on raw objective values — lets incremental
    /// evaluators compare candidates without materializing a
    /// [`BiSolution`] per neighbor.
    #[must_use]
    pub fn better_values(&self, a_latency: f64, a_fp: f64, b_latency: f64, b_fp: f64) -> bool {
        let fa = self.feasible(a_latency, a_fp);
        let fb = self.feasible(b_latency, b_fp);
        match (fa, fb) {
            (true, false) => true,
            (false, true) => false,
            (false, false) => {
                self.constraint_excess(a_latency, a_fp) < self.constraint_excess(b_latency, b_fp)
            }
            (true, true) => {
                let va = self.value(a_latency, a_fp);
                let vb = self.value(b_latency, b_fp);
                if va != vb {
                    return va < vb;
                }
                // Tie-break on the unconstrained criterion.
                let (sa, sb) = match *self {
                    Objective::MinFpUnderLatency(_) => (a_latency, b_latency),
                    Objective::MinLatencyUnderFp(_) => (a_fp, b_fp),
                };
                sa < sb
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpwf_core::platform::ProcId;

    fn sol(latency: f64, failure_prob: f64) -> BiSolution {
        let mapping = IntervalMapping::single_interval(1, vec![ProcId(0)], 1).unwrap();
        BiSolution {
            mapping,
            latency,
            failure_prob,
        }
    }

    #[test]
    fn evaluate_matches_metrics() {
        let pipe = Pipeline::uniform(2, 3.0, 4.0).unwrap();
        let pf = Platform::fully_homogeneous(2, 1.0, 2.0, 0.25).unwrap();
        let m = IntervalMapping::single_interval(2, vec![ProcId(0)], 2).unwrap();
        let s = BiSolution::evaluate(m.clone(), &pipe, &pf);
        assert_eq!(s.latency, latency(&m, &pipe, &pf));
        assert_eq!(s.failure_prob, failure_probability(&m, &pf));
    }

    #[test]
    fn feasibility_with_slack() {
        let obj = Objective::MinFpUnderLatency(22.0);
        assert!(obj.feasible(22.0, 0.9));
        assert!(obj.feasible(22.0 + 1e-12, 0.9));
        assert!(!obj.feasible(22.1, 0.0));
        let obj = Objective::MinLatencyUnderFp(0.5);
        assert!(obj.feasible(1e9, 0.5));
        assert!(!obj.feasible(0.0, 0.6));
    }

    #[test]
    fn better_prefers_feasible() {
        let obj = Objective::MinFpUnderLatency(10.0);
        assert!(obj.better(&sol(9.0, 0.9), &sol(11.0, 0.1)));
        assert!(!obj.better(&sol(11.0, 0.1), &sol(9.0, 0.9)));
    }

    #[test]
    fn better_minimizes_objective_then_tiebreaks() {
        let obj = Objective::MinFpUnderLatency(10.0);
        assert!(obj.better(&sol(9.0, 0.1), &sol(9.0, 0.2)));
        assert!(obj.better(&sol(8.0, 0.1), &sol(9.0, 0.1))); // tie-break on latency
        assert!(!obj.better(&sol(9.0, 0.1), &sol(9.0, 0.1))); // not strictly better
    }

    #[test]
    fn better_among_infeasible_prefers_smaller_violation() {
        let obj = Objective::MinLatencyUnderFp(0.1);
        assert!(obj.better(&sol(5.0, 0.2), &sol(1.0, 0.9)));
    }
}
