//! Minimal data-parallel helpers on crossbeam scoped threads.
//!
//! The exhaustive solvers sweep huge index ranges (allocation counters,
//! subset masks). Rather than pulling in a full work-stealing runtime, this
//! module splits a range into contiguous chunks, runs one worker per chunk
//! on a scoped thread, and reduces the per-chunk results. Work per item is
//! uniform enough here that static chunking is within noise of dynamic
//! scheduling, and determinism of the reduction order keeps results
//! reproducible.

/// Resolves a requested thread-count knob: `0` means one worker per
/// available core, any other value is taken literally.
#[must_use]
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        requested
    }
}

/// Number of worker threads to use: the available parallelism, capped so
/// tiny sweeps do not pay spawn overhead.
#[must_use]
pub fn default_threads(items: u64) -> usize {
    let hw = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let by_items = (items / 1024).max(1);
    hw.min(by_items as usize).max(1)
}

/// Maps `f` over `0..items` in parallel chunks and folds the per-chunk
/// accumulators with `reduce`, in chunk order (deterministic).
///
/// * `init` builds a fresh per-chunk accumulator,
/// * `f(acc, i)` folds item `i` into the chunk accumulator,
/// * `reduce(a, b)` merges two accumulators (left fold over chunk index).
pub fn par_fold<A, I, F, R>(items: u64, threads: usize, init: I, f: F, reduce: R) -> A
where
    A: Send,
    I: Fn() -> A + Sync,
    F: Fn(A, u64) -> A + Sync,
    R: Fn(A, A) -> A,
{
    let stop = std::sync::atomic::AtomicBool::new(false);
    par_fold_cancellable(items, threads, &stop, init, f, reduce)
}

/// Like [`par_fold`], but workers bail out (mid-chunk, at a 1024-item
/// stride) once `stop` becomes `true`. The caller's fold closure is
/// expected to set `stop` when its budget expires; the partial
/// accumulators folded so far are still merged and returned, so the
/// result is a valid under-approximation of the full sweep.
pub fn par_fold_cancellable<A, I, F, R>(
    items: u64,
    threads: usize,
    stop: &std::sync::atomic::AtomicBool,
    init: I,
    f: F,
    reduce: R,
) -> A
where
    A: Send,
    I: Fn() -> A + Sync,
    F: Fn(A, u64) -> A + Sync,
    R: Fn(A, A) -> A,
{
    use std::sync::atomic::Ordering;
    let threads = threads.max(1);
    if threads == 1 || items < 2 {
        let mut acc = init();
        for i in 0..items {
            if i & 1023 == 0 && stop.load(Ordering::Relaxed) {
                break;
            }
            acc = f(acc, i);
        }
        return acc;
    }

    let chunk = items.div_ceil(threads as u64);
    let mut partials: Vec<Option<A>> = (0..threads).map(|_| None).collect();
    crossbeam::thread::scope(|scope| {
        for (t, slot) in partials.iter_mut().enumerate() {
            let lo = (t as u64) * chunk;
            let hi = (lo + chunk).min(items);
            let f = &f;
            let init = &init;
            scope.spawn(move |_| {
                let mut acc = init();
                for i in lo..hi {
                    if i & 1023 == 0 && stop.load(Ordering::Relaxed) {
                        break;
                    }
                    acc = f(acc, i);
                }
                *slot = Some(acc);
            });
        }
    })
    .expect("worker threads do not panic");

    let mut merged: Option<A> = None;
    for p in partials.into_iter().flatten() {
        merged = Some(match merged {
            None => p,
            Some(acc) => reduce(acc, p),
        });
    }
    merged.expect("at least one chunk ran")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};

    #[test]
    fn folds_match_sequential() {
        for &items in &[0u64, 1, 5, 1000, 10_001] {
            for threads in [1usize, 2, 4, 7] {
                let got = par_fold(items, threads, || 0u64, |acc, i| acc + i, |a, b| a + b);
                let want: u64 = (0..items).sum();
                assert_eq!(got, want, "items={items} threads={threads}");
            }
        }
    }

    #[test]
    fn reduction_order_is_deterministic() {
        // Collect chunk minima of a keyed value; with deterministic chunk
        // order the final argmin tie-break is stable across runs.
        let pick = |items: u64, threads: usize| -> (u64, u64) {
            par_fold(
                items,
                threads,
                || (u64::MAX, 0u64),
                |acc, i| {
                    let key = (i * 2654435761) % 97;
                    if key < acc.0 {
                        (key, i)
                    } else {
                        acc
                    }
                },
                |a, b| if b.0 < a.0 { b } else { a },
            )
        };
        let a = pick(50_000, 4);
        let b = pick(50_000, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn default_threads_bounds() {
        assert_eq!(default_threads(0), 1);
        assert!(default_threads(1 << 30) >= 1);
    }

    #[test]
    fn cancellable_matches_plain_fold_when_not_stopped() {
        let stop = AtomicBool::new(false);
        for threads in [1usize, 4] {
            let got = par_fold_cancellable(
                10_001,
                threads,
                &stop,
                || 0u64,
                |acc, i| acc + i,
                |a, b| a + b,
            );
            assert_eq!(got, (0..10_001u64).sum::<u64>());
        }
    }

    #[test]
    fn cancellable_stops_early() {
        let stop = AtomicBool::new(false);
        let count = par_fold_cancellable(
            1 << 22,
            4,
            &stop,
            || 0u64,
            |acc, _| {
                if acc == 100 {
                    stop.store(true, Ordering::Relaxed);
                }
                acc + 1
            },
            |a, b| a + b,
        );
        assert!(
            count < 1 << 22,
            "stop flag must cut the sweep short, saw {count}"
        );
    }

    #[test]
    fn pre_set_stop_yields_empty_fold() {
        let stop = AtomicBool::new(true);
        let count =
            par_fold_cancellable(1 << 20, 4, &stop, || 0u64, |acc, _| acc + 1, |a, b| a + b);
        assert_eq!(count, 0);
    }
}
