//! Theorem 6 — bi-criteria mapping on Communication Homogeneous platforms
//! with **Failure Homogeneous** processors (Algorithms 3 and 4 of the
//! paper).
//!
//! With one shared failure probability `fp`, Lemma 1 still forces a
//! single-interval optimum; the FP of `k` replicas is `fp^k` regardless of
//! *which* processors are picked, so the set choice is free to optimize
//! latency — the `k` **fastest** processors. Algorithm 3 grows `k` while
//! the latency threshold holds; Algorithm 4 picks the smallest `k` meeting
//! the FP threshold.
//!
//! With heterogeneous failure probabilities the single-interval property
//! breaks (Figure 5; the problem is open, conjectured NP-hard §4.4) — use
//! [`crate::exact::bitmask_dp`] or [`crate::heuristics`] there.

use crate::solution::BiSolution;
use rpwf_core::error::{CoreError, Result};
use rpwf_core::mapping::IntervalMapping;
use rpwf_core::platform::{FailureClass, Platform};
use rpwf_core::stage::Pipeline;

fn require_classes(platform: &Platform) -> Result<()> {
    if platform.uniform_bandwidth().is_none() {
        return Err(CoreError::NotCommHomogeneous);
    }
    if platform.failure_class() != FailureClass::Homogeneous {
        return Err(CoreError::NotFailureHomogeneous);
    }
    Ok(())
}

/// Single interval on the `k` fastest processors, evaluated.
fn replicate_on_k_fastest(pipeline: &Pipeline, platform: &Platform, k: usize) -> BiSolution {
    let procs = platform.procs_by_speed_desc()[..k].to_vec();
    let mapping = IntervalMapping::single_interval(pipeline.n_stages(), procs, platform.n_procs())
        .expect("k ≥ 1 fastest processors form a valid allocation");
    BiSolution::evaluate(mapping, pipeline, platform)
}

/// **Algorithm 3**: minimize FP subject to `latency ≤ l`.
///
/// Processors are ordered by decreasing speed; the latency of the `k`
/// fastest, `k·δ_0/b + Σw/s_(k) + δ_n/b` (with `s_(k)` the `k`-th fastest
/// speed), is non-decreasing in `k`, so the maximal feasible `k` is found
/// by a forward scan and is FP-optimal (`fp^k` decreases in `k`).
///
/// # Errors
/// * [`CoreError::NotCommHomogeneous`] / [`CoreError::NotFailureHomogeneous`]
///   on the wrong platform classes,
/// * [`CoreError::Infeasible`] when even `k = 1` exceeds `l`.
pub fn min_fp_under_latency(
    pipeline: &Pipeline,
    platform: &Platform,
    l: f64,
) -> Result<BiSolution> {
    require_classes(platform)?;
    const SLACK: f64 = 1e-9;
    let mut best: Option<BiSolution> = None;
    for k in 1..=platform.n_procs() {
        let sol = replicate_on_k_fastest(pipeline, platform, k);
        if sol.latency <= l * (1.0 + SLACK) + SLACK {
            best = Some(sol);
        } else {
            break; // non-decreasing in k
        }
    }
    best.ok_or_else(|| CoreError::Infeasible {
        reason: format!("no replica count achieves latency ≤ {l}"),
    })
}

/// **Algorithm 4**: minimize latency subject to `failure probability ≤ fp`.
///
/// The smallest `k` with `fp_shared^k ≤ fp` wins; the `k` fastest
/// processors then minimize the latency for that `k`.
///
/// # Errors
/// * class errors as in [`min_fp_under_latency`],
/// * [`CoreError::Infeasible`] when all `m` replicas are still above `fp`.
pub fn min_latency_under_fp(
    pipeline: &Pipeline,
    platform: &Platform,
    fp: f64,
) -> Result<BiSolution> {
    require_classes(platform)?;
    const SLACK: f64 = 1e-9;
    for k in 1..=platform.n_procs() {
        let sol = replicate_on_k_fastest(pipeline, platform, k);
        if sol.failure_prob <= fp * (1.0 + SLACK) + SLACK {
            return Ok(sol);
        }
    }
    Err(CoreError::Infeasible {
        reason: format!(
            "even {} replicas cannot achieve FP ≤ {fp}",
            platform.n_procs()
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::Exhaustive;
    use crate::solution::Objective;
    use rpwf_core::assert_approx_eq;
    use rpwf_core::platform::ProcId;

    fn platform() -> Platform {
        Platform::comm_homogeneous(vec![4.0, 1.0, 3.0, 2.0], 2.0, vec![0.5; 4]).unwrap()
    }

    #[test]
    fn algorithm3_uses_fastest_prefix() {
        // W = 12, δ0 = 4, δn = 2, b = 2 → latency(k) = 2k + 12/s_(k) + 1.
        // speeds sorted: 4,3,2,1 → lat(1)=6, lat(2)=9, lat(3)=13, lat(4)=21.
        let pipe = Pipeline::new(vec![12.0], vec![4.0, 2.0]).unwrap();
        let pf = platform();
        let sol = min_fp_under_latency(&pipe, &pf, 13.0).unwrap();
        assert_eq!(sol.mapping.replication(0), 3);
        assert_eq!(sol.mapping.alloc(0), &[ProcId(0), ProcId(2), ProcId(3)]);
        assert_approx_eq!(sol.latency, 13.0);
        assert_approx_eq!(sol.failure_prob, 0.125);
    }

    #[test]
    fn algorithm4_smallest_k_then_fastest() {
        let pipe = Pipeline::new(vec![12.0], vec![4.0, 2.0]).unwrap();
        let pf = platform();
        let sol = min_latency_under_fp(&pipe, &pf, 0.3).unwrap(); // 0.5^2 = 0.25
        assert_eq!(sol.mapping.replication(0), 2);
        assert_eq!(sol.mapping.alloc(0), &[ProcId(0), ProcId(2)]);
        assert_approx_eq!(sol.latency, 9.0);
    }

    #[test]
    fn rejects_wrong_classes() {
        let pipe = Pipeline::uniform(1, 1.0, 1.0).unwrap();
        let het_links = rpwf_gen::figure4_platform();
        assert_eq!(
            min_fp_under_latency(&pipe, &het_links, 100.0).unwrap_err(),
            CoreError::NotCommHomogeneous
        );
        let het_fail = Platform::comm_homogeneous(vec![1.0, 1.0], 1.0, vec![0.1, 0.2]).unwrap();
        assert_eq!(
            min_latency_under_fp(&pipe, &het_fail, 1.0).unwrap_err(),
            CoreError::NotFailureHomogeneous
        );
    }

    #[test]
    fn infeasible_cases_error() {
        let pipe = Pipeline::new(vec![100.0], vec![1.0, 1.0]).unwrap();
        let pf = platform();
        assert!(matches!(
            min_fp_under_latency(&pipe, &pf, 5.0).unwrap_err(),
            CoreError::Infeasible { .. }
        ));
        assert!(matches!(
            min_latency_under_fp(&pipe, &pf, 0.001).unwrap_err(),
            CoreError::Infeasible { .. }
        ));
    }

    #[test]
    fn algorithm3_matches_exhaustive_oracle() {
        let pipe = Pipeline::new(vec![2.0, 10.0], vec![3.0, 1.0, 2.0]).unwrap();
        let pf = platform();
        for l in [5.0, 7.0, 9.0, 12.0, 16.0, 25.0] {
            let alg = min_fp_under_latency(&pipe, &pf, l).ok();
            let oracle = Exhaustive::new(&pipe, &pf).solve(Objective::MinFpUnderLatency(l));
            match (alg, oracle) {
                (Some(a), Some(o)) => assert_approx_eq!(a.failure_prob, o.failure_prob),
                (None, None) => {}
                (a, o) => panic!("L={l}: algorithm {a:?} vs oracle {o:?}"),
            }
        }
    }

    #[test]
    fn algorithm4_matches_exhaustive_oracle() {
        let pipe = Pipeline::new(vec![2.0, 10.0], vec![3.0, 1.0, 2.0]).unwrap();
        let pf = platform();
        for fp in [0.6, 0.5, 0.3, 0.15, 0.07, 0.04] {
            let alg = min_latency_under_fp(&pipe, &pf, fp).ok();
            let oracle = Exhaustive::new(&pipe, &pf).solve(Objective::MinLatencyUnderFp(fp));
            match (alg, oracle) {
                (Some(a), Some(o)) => assert_approx_eq!(a.latency, o.latency),
                (None, None) => {}
                (a, o) => panic!("FP={fp}: algorithm {a:?} vs oracle {o:?}"),
            }
        }
    }
}
