//! The paper's polynomial bi-criteria algorithms (Theorems 5 and 6).
//!
//! * [`fully_homog`] — Algorithms 1 & 2 on Fully Homogeneous platforms,
//! * [`comm_homog`] — Algorithms 3 & 4 on Communication Homogeneous +
//!   Failure Homogeneous platforms.
//!
//! The remaining class combinations are NP-hard (Fully Heterogeneous,
//! Theorem 7) or open (Comm Homogeneous + Failure Heterogeneous, §4.4);
//! see [`crate::exact`] and [`crate::heuristics`].

pub mod comm_homog;
pub mod fully_homog;

/// Dispatches the threshold problem to the paper's polynomial algorithm for
/// the platform's classes, when one exists.
///
/// Returns `Ok(None)` when no polynomial algorithm covers the class
/// combination (the caller should fall back to exact or heuristic solvers);
/// `Err` only for infeasible thresholds.
pub fn solve_polynomial(
    pipeline: &rpwf_core::stage::Pipeline,
    platform: &rpwf_core::platform::Platform,
    objective: crate::solution::Objective,
) -> rpwf_core::error::Result<Option<crate::solution::BiSolution>> {
    use crate::solution::Objective;
    use rpwf_core::platform::{FailureClass, PlatformClass};

    match (platform.class(), platform.failure_class()) {
        (PlatformClass::FullyHomogeneous, _) => match objective {
            Objective::MinFpUnderLatency(l) => {
                fully_homog::min_fp_under_latency(pipeline, platform, l).map(Some)
            }
            Objective::MinLatencyUnderFp(f) => {
                fully_homog::min_latency_under_fp(pipeline, platform, f).map(Some)
            }
        },
        (PlatformClass::CommHomogeneous, FailureClass::Homogeneous) => match objective {
            Objective::MinFpUnderLatency(l) => {
                comm_homog::min_fp_under_latency(pipeline, platform, l).map(Some)
            }
            Objective::MinLatencyUnderFp(f) => {
                comm_homog::min_latency_under_fp(pipeline, platform, f).map(Some)
            }
        },
        _ => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solution::Objective;
    use rpwf_core::platform::Platform;
    use rpwf_core::stage::Pipeline;

    #[test]
    fn dispatch_covers_polynomial_classes() {
        let pipe = Pipeline::uniform(2, 1.0, 1.0).unwrap();

        let fh = Platform::fully_homogeneous(3, 1.0, 1.0, 0.5).unwrap();
        assert!(
            solve_polynomial(&pipe, &fh, Objective::MinFpUnderLatency(100.0))
                .unwrap()
                .is_some()
        );

        let ch = Platform::comm_homogeneous(vec![1.0, 2.0], 1.0, vec![0.5, 0.5]).unwrap();
        assert!(
            solve_polynomial(&pipe, &ch, Objective::MinLatencyUnderFp(0.9))
                .unwrap()
                .is_some()
        );

        // Open problem class: no polynomial algorithm.
        let ch_fhet = Platform::comm_homogeneous(vec![1.0, 2.0], 1.0, vec![0.1, 0.5]).unwrap();
        assert!(
            solve_polynomial(&pipe, &ch_fhet, Objective::MinFpUnderLatency(100.0))
                .unwrap()
                .is_none()
        );

        // NP-hard class.
        let het = rpwf_gen::figure4_platform();
        assert!(
            solve_polynomial(&pipe, &het, Objective::MinFpUnderLatency(1e9))
                .unwrap()
                .is_none()
        );
    }

    #[test]
    fn dispatch_propagates_infeasibility() {
        let pipe = Pipeline::new(vec![100.0], vec![1.0, 1.0]).unwrap();
        let fh = Platform::fully_homogeneous(2, 1.0, 1.0, 0.5).unwrap();
        assert!(solve_polynomial(&pipe, &fh, Objective::MinFpUnderLatency(1.0)).is_err());
    }
}
