//! Theorem 5 — bi-criteria mapping on Fully Homogeneous platforms
//! (Algorithms 1 and 2 of the paper).
//!
//! By Lemma 1, some optimal solution maps the whole pipeline as a single
//! interval; the only question is how many (and which) processors join the
//! replication set. Latency grows with the replica count `k`
//! (`k·δ_0/b + Σw/s + δ_n/b`), failure probability shrinks, and for a fixed
//! `k` the best set is always the `k` **most reliable** processors (the
//! paper's remark: the algorithms stay optimal under heterogeneous failure
//! probabilities, which is how they are implemented here — homogeneous
//! failures are just the special case where the sort is a no-op).

use crate::solution::BiSolution;
use rpwf_core::error::{CoreError, Result};
use rpwf_core::mapping::IntervalMapping;
use rpwf_core::platform::{Platform, PlatformClass};
use rpwf_core::stage::Pipeline;

fn require_fully_homogeneous(platform: &Platform) -> Result<()> {
    if platform.class() != PlatformClass::FullyHomogeneous {
        return Err(CoreError::NotCommHomogeneous);
    }
    Ok(())
}

/// Builds the single-interval mapping on the `k` most reliable processors
/// and evaluates it.
fn replicate_on_k_most_reliable(pipeline: &Pipeline, platform: &Platform, k: usize) -> BiSolution {
    let procs = platform.procs_by_reliability_desc()[..k].to_vec();
    let mapping = IntervalMapping::single_interval(pipeline.n_stages(), procs, platform.n_procs())
        .expect("k ≥ 1 most reliable processors form a valid allocation");
    BiSolution::evaluate(mapping, pipeline, platform)
}

/// **Algorithm 1**: minimize the failure probability subject to
/// `latency ≤ l`.
///
/// Finds the maximum replica count `k` whose single-interval latency fits
/// under `l` (latency is non-decreasing in `k` on these platforms) and
/// replicates on the `k` most reliable processors.
///
/// # Errors
/// * [`CoreError::NotCommHomogeneous`] when the platform is not Fully
///   Homogeneous,
/// * [`CoreError::Infeasible`] when even `k = 1` exceeds `l`.
pub fn min_fp_under_latency(
    pipeline: &Pipeline,
    platform: &Platform,
    l: f64,
) -> Result<BiSolution> {
    require_fully_homogeneous(platform)?;
    const SLACK: f64 = 1e-9;
    let mut best: Option<BiSolution> = None;
    for k in 1..=platform.n_procs() {
        let sol = replicate_on_k_most_reliable(pipeline, platform, k);
        if sol.latency <= l * (1.0 + SLACK) + SLACK {
            best = Some(sol);
        } else {
            break; // latency is non-decreasing in k
        }
    }
    best.ok_or_else(|| CoreError::Infeasible {
        reason: format!("no replica count achieves latency ≤ {l}"),
    })
}

/// **Algorithm 2**: minimize latency subject to `failure probability ≤ fp`.
///
/// Finds the minimum replica count `k` whose FP (using the `k` most
/// reliable processors, the FP-optimal choice for each `k`) meets the
/// bound; latency is non-decreasing in `k`, so the smallest feasible `k`
/// is latency-optimal.
///
/// # Errors
/// * [`CoreError::NotCommHomogeneous`] when the platform is not Fully
///   Homogeneous,
/// * [`CoreError::Infeasible`] when even all `m` processors cannot reach
///   `fp`.
pub fn min_latency_under_fp(
    pipeline: &Pipeline,
    platform: &Platform,
    fp: f64,
) -> Result<BiSolution> {
    require_fully_homogeneous(platform)?;
    const SLACK: f64 = 1e-9;
    for k in 1..=platform.n_procs() {
        let sol = replicate_on_k_most_reliable(pipeline, platform, k);
        if sol.failure_prob <= fp * (1.0 + SLACK) + SLACK {
            return Ok(sol);
        }
    }
    Err(CoreError::Infeasible {
        reason: format!(
            "even {} replicas cannot achieve FP ≤ {fp}",
            platform.n_procs()
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::Exhaustive;
    use crate::solution::Objective;
    use rpwf_core::assert_approx_eq;
    use rpwf_core::platform::PlatformBuilder;
    use rpwf_core::platform::ProcId;

    #[test]
    fn algorithm1_closed_form() {
        // m=5, s=2, b=4, fp=0.5; pipeline W=8, δ0=8, δn=4.
        // latency(k) = 2k + 4 + 1; L = 12 → k ≤ 3.5 → k = 3, FP = 0.125.
        let pipe = Pipeline::new(vec![8.0], vec![8.0, 4.0]).unwrap();
        let pf = Platform::fully_homogeneous(5, 2.0, 4.0, 0.5).unwrap();
        let sol = min_fp_under_latency(&pipe, &pf, 12.0).unwrap();
        assert_eq!(sol.mapping.replication(0), 3);
        assert_approx_eq!(sol.latency, 11.0);
        assert_approx_eq!(sol.failure_prob, 0.125);
    }

    #[test]
    fn algorithm2_closed_form() {
        let pipe = Pipeline::new(vec![8.0], vec![8.0, 4.0]).unwrap();
        let pf = Platform::fully_homogeneous(5, 2.0, 4.0, 0.5).unwrap();
        // FP ≤ 0.2 → need 0.5^k ≤ 0.2 → k = 3.
        let sol = min_latency_under_fp(&pipe, &pf, 0.2).unwrap();
        assert_eq!(sol.mapping.replication(0), 3);
        assert_approx_eq!(sol.latency, 11.0);
    }

    #[test]
    fn heterogeneous_failures_pick_most_reliable() {
        // Same speeds/links, different fps: the paper's remark case.
        let pf = PlatformBuilder::new(4)
            .speeds_uniform(2.0)
            .bandwidth_uniform(4.0)
            .failure_probs(vec![0.9, 0.1, 0.5, 0.2])
            .unwrap()
            .build()
            .unwrap();
        let pipe = Pipeline::new(vec![8.0], vec![8.0, 4.0]).unwrap();
        let sol = min_fp_under_latency(&pipe, &pf, 10.0).unwrap(); // k ≤ 2
        assert_eq!(sol.mapping.replication(0), 2);
        // Most reliable two: P1 (0.1) and P3 (0.2).
        assert_eq!(sol.mapping.alloc(0), &[ProcId(1), ProcId(3)]);
        assert_approx_eq!(sol.failure_prob, 0.02);
    }

    #[test]
    fn infeasible_latency_errors() {
        let pipe = Pipeline::new(vec![100.0], vec![1.0, 1.0]).unwrap();
        let pf = Platform::fully_homogeneous(2, 1.0, 1.0, 0.5).unwrap();
        assert!(matches!(
            min_fp_under_latency(&pipe, &pf, 10.0).unwrap_err(),
            CoreError::Infeasible { .. }
        ));
    }

    #[test]
    fn infeasible_fp_errors() {
        let pipe = Pipeline::uniform(1, 1.0, 1.0).unwrap();
        let pf = Platform::fully_homogeneous(2, 1.0, 1.0, 0.9).unwrap();
        assert!(matches!(
            min_latency_under_fp(&pipe, &pf, 0.1).unwrap_err(),
            CoreError::Infeasible { .. }
        ));
    }

    #[test]
    fn rejects_non_fully_homogeneous() {
        let pipe = Pipeline::uniform(1, 1.0, 1.0).unwrap();
        let pf = Platform::comm_homogeneous(vec![1.0, 2.0], 1.0, vec![0.1, 0.1]).unwrap();
        assert!(min_fp_under_latency(&pipe, &pf, 100.0).is_err());
        assert!(min_latency_under_fp(&pipe, &pf, 1.0).is_err());
    }

    #[test]
    fn algorithm1_matches_exhaustive_oracle() {
        let pipe = Pipeline::new(vec![3.0, 5.0], vec![2.0, 4.0, 1.0]).unwrap();
        let pf = Platform::fully_homogeneous(4, 2.0, 2.0, 0.4).unwrap();
        for l in [4.0, 6.0, 7.0, 8.0, 10.0, 20.0] {
            let alg = min_fp_under_latency(&pipe, &pf, l).ok();
            let oracle = Exhaustive::new(&pipe, &pf).solve(Objective::MinFpUnderLatency(l));
            match (alg, oracle) {
                (Some(a), Some(o)) => {
                    assert_approx_eq!(a.failure_prob, o.failure_prob);
                }
                (None, None) => {}
                (a, o) => panic!("L={l}: algorithm {a:?} vs oracle {o:?}"),
            }
        }
    }

    #[test]
    fn algorithm2_matches_exhaustive_oracle() {
        let pipe = Pipeline::new(vec![3.0, 5.0], vec![2.0, 4.0, 1.0]).unwrap();
        let pf = Platform::fully_homogeneous(4, 2.0, 2.0, 0.4).unwrap();
        for fp in [0.5, 0.4, 0.2, 0.1, 0.05, 0.02] {
            let alg = min_latency_under_fp(&pipe, &pf, fp).ok();
            let oracle = Exhaustive::new(&pipe, &pf).solve(Objective::MinLatencyUnderFp(fp));
            match (alg, oracle) {
                (Some(a), Some(o)) => {
                    assert_approx_eq!(a.latency, o.latency);
                }
                (None, None) => {}
                (a, o) => panic!("FP={fp}: algorithm {a:?} vs oracle {o:?}"),
            }
        }
    }
}
