//! Anytime Pareto-front producers — the front-first solver abstraction.
//!
//! Both threshold problems of the paper are reads off the same object: the
//! bi-objective Pareto front. [`FrontSource`] unifies every solver that can
//! produce one — the exhaustive oracle, the bitmask DP, the interval DP,
//! a branch-and-bound ε-constraint sweep, and the budgeted heuristic
//! portfolio — behind a single *anytime* contract:
//!
//! * every returned front contains only genuinely achievable points (a
//!   sound under-approximation of the true front),
//! * [`Budgeted::Complete`] certifies the front is the **exact** Pareto
//!   front; [`Budgeted::Cutoff`] means the budget (or the solver's own
//!   approximate nature) truncated it,
//! * running longer can only improve the front (monotone in the budget).
//!
//! Threshold objectives then become front reads ([`threshold_read`]), and
//! the serving layer can cache, share and stream fronts as the unit of
//! work instead of per-query point answers.
//!
//! Backend *selection* (which producer answers which instance) lives in
//! the unified [`engine`](crate::engine): each producer here is
//! re-registered there as an [`engine::Solver`](crate::engine::Solver)
//! and [`Engine::solve`](crate::engine::Engine::solve) plans every
//! request.

use crate::exact::{pareto_front_comm_homog_with_budget, BranchBound, Exhaustive, SearchStats};
use crate::heuristics::Portfolio;
use crate::mono;
use crate::solution::{BiSolution, Budgeted, Objective};
use rpwf_core::budget::Budget;
use rpwf_core::mapping::IntervalMapping;
use rpwf_core::pareto::ParetoFront;
use rpwf_core::platform::Platform;
use rpwf_core::stage::Pipeline;

/// The slack shared with [`Objective::feasible`]; the ε-constraint sweep
/// uses it to pick the next bound that strictly excludes the point just
/// found.
const SLACK: f64 = 1e-9;

/// A solver viewed as an anytime producer of Pareto fronts.
pub trait FrontSource: Sync {
    /// Stable name for logs, metadata and experiment tables.
    fn name(&self) -> &'static str;

    /// Whether this source can run on the instance at all.
    fn applicable(&self, pipeline: &Pipeline, platform: &Platform) -> bool;

    /// `true` when a [`Budgeted::Complete`] outcome certifies the exact
    /// front (the heuristic producer never does, whatever the budget).
    fn exact_capable(&self) -> bool {
        true
    }

    /// Produces the best front achievable within `budget`. The budget is
    /// polled cooperatively; on exhaustion the points found so far are
    /// returned as a [`Budgeted::Cutoff`].
    fn front_with_budget(
        &self,
        pipeline: &Pipeline,
        platform: &Platform,
        budget: &Budget,
    ) -> Budgeted<ParetoFront<IntervalMapping>>;

    /// [`front_with_budget`](Self::front_with_budget) with no budget.
    fn front(&self, pipeline: &Pipeline, platform: &Platform) -> ParetoFront<IntervalMapping> {
        self.front_with_budget(pipeline, platform, &Budget::unlimited())
            .into_inner()
    }
}

/// Answers a threshold objective by reading the front, with the same
/// boundary slack as [`Objective::feasible`]. On a *complete* front a
/// `None` proves infeasibility; on a cutoff front it only means no point
/// found so far satisfies the bound.
#[must_use]
pub fn threshold_read(
    front: &ParetoFront<IntervalMapping>,
    objective: Objective,
) -> Option<BiSolution> {
    let cutoff = objective.threshold_with_slack();
    let point = match objective {
        Objective::MinFpUnderLatency(_) => front.min_fp_under_latency(cutoff),
        Objective::MinLatencyUnderFp(_) => front.min_latency_under_fp(cutoff),
    };
    point.map(|pt| BiSolution {
        mapping: pt.payload.clone(),
        latency: pt.latency,
        failure_prob: pt.failure_prob,
    })
}

/// Vectorized [`threshold_read`]: answers `k` threshold objectives over
/// one front in two sorted sweeps, one per objective kind —
/// `O(k log k + k + front)` instead of `k` independent searches. Answers
/// are **identical** to `k` independent [`threshold_read`]s, in input
/// order — the batch is a pure amortization, property-tested in this
/// crate's proptest suite. The serving layer uses it when a batch lands
/// several queries on the same cached front.
#[must_use]
pub fn threshold_read_batch(
    front: &ParetoFront<IntervalMapping>,
    objectives: &[Objective],
) -> Vec<Option<BiSolution>> {
    // Split by kind, remembering input slots; each kind sweeps the front
    // once over its sorted cutoffs.
    let mut lat: Vec<(usize, f64)> = Vec::new(); // MinFpUnderLatency
    let mut fp: Vec<(usize, f64)> = Vec::new(); // MinLatencyUnderFp
    for (i, objective) in objectives.iter().enumerate() {
        let cutoff = objective.threshold_with_slack();
        match objective {
            Objective::MinFpUnderLatency(_) => lat.push((i, cutoff)),
            Objective::MinLatencyUnderFp(_) => fp.push((i, cutoff)),
        }
    }
    lat.sort_by(|a, b| a.1.total_cmp(&b.1));
    fp.sort_by(|a, b| b.1.total_cmp(&a.1));

    let mut out: Vec<Option<BiSolution>> = vec![None; objectives.len()];
    let to_solution = |pt: &rpwf_core::pareto::ParetoPoint<IntervalMapping>| BiSolution {
        mapping: pt.payload.clone(),
        latency: pt.latency,
        failure_prob: pt.failure_prob,
    };
    if !lat.is_empty() {
        let bounds: Vec<f64> = lat.iter().map(|&(_, b)| b).collect();
        for (&(slot, _), pt) in lat.iter().zip(front.min_fp_under_latency_batch(&bounds)) {
            out[slot] = pt.map(to_solution);
        }
    }
    if !fp.is_empty() {
        let bounds: Vec<f64> = fp.iter().map(|&(_, b)| b).collect();
        for (&(slot, _), pt) in fp.iter().zip(front.min_latency_under_fp_batch(&bounds)) {
            out[slot] = pt.map(to_solution);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Exact producers
// ---------------------------------------------------------------------------

/// The bitmask DP on Communication Homogeneous platforms (`m ≤ 16`): the
/// whole front in one `O(n²·3^m)` pass.
#[derive(Clone, Copy, Debug, Default)]
pub struct BitmaskDpFront;

impl FrontSource for BitmaskDpFront {
    fn name(&self) -> &'static str {
        "bitmask-dp"
    }

    fn applicable(&self, _pipeline: &Pipeline, platform: &Platform) -> bool {
        platform.uniform_bandwidth().is_some() && platform.n_procs() <= 16
    }

    fn front_with_budget(
        &self,
        pipeline: &Pipeline,
        platform: &Platform,
        budget: &Budget,
    ) -> Budgeted<ParetoFront<IntervalMapping>> {
        pareto_front_comm_homog_with_budget(pipeline, platform, budget)
            .expect("applicability checked: uniform bandwidth")
    }
}

/// The exhaustive oracle (`m ≤ 6`): full enumeration of interval mappings
/// with replication, parallelized, with yield-ordered partitions so cutoff
/// fronts cover the extremes first.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExhaustiveFront;

impl FrontSource for ExhaustiveFront {
    fn name(&self) -> &'static str {
        "exhaustive"
    }

    fn applicable(&self, _pipeline: &Pipeline, platform: &Platform) -> bool {
        platform.n_procs() <= 6
    }

    fn front_with_budget(
        &self,
        pipeline: &Pipeline,
        platform: &Platform,
        budget: &Budget,
    ) -> Budgeted<ParetoFront<IntervalMapping>> {
        Exhaustive::new(pipeline, platform).pareto_front_with_budget(budget)
    }
}

/// ε-constraint sweep of the branch-and-bound threshold solver (Fully
/// Heterogeneous; `m ≤ 12` sequential, `m ≤ 14` with a parallel pool):
/// enumerates the front left to right, one exact `MinLatencyUnderFp` solve
/// per point, tightening the FP bound past the point just found. Anytime
/// by construction — every completed solve adds one proven front point,
/// and a budget cutoff keeps the prefix.
///
/// Each step runs on the cooperative parallel search
/// ([`BranchBound::with_threads`]), and adjacent ε-steps overlap through
/// incumbent **carry**: while solving one step, the search also records the
/// best-latency leaf already reliable enough for the next (tighter) bound,
/// which seeds the next step's incumbent — heuristics run on the first
/// step only. Seeds never change answers (they only tighten the shared
/// pruning bound), so the front is byte-identical at every thread count.
///
/// Granularity caveat: true front points whose failure probabilities differ
/// by less than the [`Objective::feasible`] slack collapse into one.
#[derive(Clone, Copy, Debug)]
pub struct BranchBoundSweep {
    /// Worker threads per sweep step (0 = one per core, 1 = sequential).
    pub threads: usize,
    /// Seed for the first step's heuristic portfolio.
    pub seed: u64,
}

impl Default for BranchBoundSweep {
    fn default() -> Self {
        BranchBoundSweep {
            threads: 1,
            seed: 0xB0B,
        }
    }
}

impl BranchBoundSweep {
    /// The next sweep bound after a point with failure probability `fp`:
    /// strictly excludes `fp` under the feasibility slack.
    fn next_bound(fp: f64) -> f64 {
        (fp - SLACK) / (1.0 + SLACK) - SLACK
    }

    /// The lower-latency of two feasible seed candidates.
    fn better_seed(a: Option<BiSolution>, b: Option<BiSolution>) -> Option<BiSolution> {
        match (a, b) {
            (Some(x), Some(y)) => {
                if (y.latency, y.failure_prob) < (x.latency, x.failure_prob) {
                    Some(y)
                } else {
                    Some(x)
                }
            }
            (x, y) => x.or(y),
        }
    }

    /// [`FrontSource::front_with_budget`] plus the aggregated per-worker
    /// search telemetry of every sweep step.
    pub fn front_with_budget_stats(
        &self,
        pipeline: &Pipeline,
        platform: &Platform,
        budget: &Budget,
    ) -> (Budgeted<ParetoFront<IntervalMapping>>, SearchStats) {
        // Theorem 1 gives the reliability extreme in polynomial time; it
        // seeds every sweep step (a feasible incumbent whenever one exists)
        // and tells the sweep when to stop.
        let safest = mono::minimize_failure(pipeline, platform);
        let solver = BranchBound::new(pipeline, platform).with_threads(self.threads);
        let mut stats = SearchStats::default();
        let mut front = ParetoFront::new();
        let mut bound = 1.0f64;
        let mut carry: Option<BiSolution> = None;
        let mut first = true;
        loop {
            if budget.is_exhausted() {
                return (Budgeted::Cutoff(front), stats);
            }
            let objective = Objective::MinLatencyUnderFp(bound);
            let mut incumbent = objective
                .feasible(safest.latency, safest.failure_prob)
                .then(|| safest.clone());
            if first {
                // Heuristics only pay off before any carry exists.
                first = false;
                let heuristic = Portfolio::new(self.seed)
                    .solve_with_budget(pipeline, platform, objective, budget)
                    .into_inner()
                    .filter(|h| objective.feasible(h.latency, h.failure_prob));
                incumbent = Self::better_seed(incumbent, heuristic);
            } else if let Some(c) = carry.take() {
                // The previous step's carry: its best-latency leaf already
                // reliable enough for this bound (validated here — the
                // collection gate is only a heuristic filter).
                let valid = objective.feasible(c.latency, c.failure_prob).then_some(c);
                incumbent = Self::better_seed(incumbent, valid);
            }
            let out = solver.solve_sweep_step(
                objective,
                budget,
                incumbent,
                Some(Self::next_bound(bound)),
            );
            stats.absorb(&out.stats);
            let finished = out.outcome.is_complete();
            carry = out.carry;
            match out.outcome.into_inner() {
                Some(sol) => {
                    let fp = sol.failure_prob;
                    front.insert(sol.latency, fp, sol.mapping);
                    if !finished {
                        return (Budgeted::Cutoff(front), stats);
                    }
                    if fp <= safest.failure_prob {
                        // Reliability extreme reached.
                        return (Budgeted::Complete(front), stats);
                    }
                    let next = Self::next_bound(fp);
                    if next <= 0.0 {
                        return (Budgeted::Complete(front), stats);
                    }
                    bound = next;
                }
                None if finished => return (Budgeted::Complete(front), stats),
                None => return (Budgeted::Cutoff(front), stats),
            }
        }
    }
}

impl FrontSource for BranchBoundSweep {
    fn name(&self) -> &'static str {
        "bnb-sweep"
    }

    fn applicable(&self, _pipeline: &Pipeline, platform: &Platform) -> bool {
        let cap = if crate::par::resolve_threads(self.threads) > 1 {
            14
        } else {
            12
        };
        platform.n_procs() <= cap
    }

    fn front_with_budget(
        &self,
        pipeline: &Pipeline,
        platform: &Platform,
        budget: &Budget,
    ) -> Budgeted<ParetoFront<IntervalMapping>> {
        self.front_with_budget_stats(pipeline, platform, budget).0
    }
}

/// The exact interval DP (`m ≤ 16`, no replication): contributes the
/// latency extreme of the front as a one-point partial front. Never
/// complete on its own — replication-heavy points are out of its family —
/// but its point is exact (replication never reduces latency), which makes
/// it a cheap anchor for the heuristic producer on instances no full exact
/// sweep can handle.
#[derive(Clone, Copy, Debug, Default)]
pub struct IntervalDpFront;

impl FrontSource for IntervalDpFront {
    fn name(&self) -> &'static str {
        "interval-dp"
    }

    fn applicable(&self, _pipeline: &Pipeline, platform: &Platform) -> bool {
        platform.n_procs() <= 16
    }

    fn exact_capable(&self) -> bool {
        false // a single point is never the whole front
    }

    fn front_with_budget(
        &self,
        pipeline: &Pipeline,
        platform: &Platform,
        budget: &Budget,
    ) -> Budgeted<ParetoFront<IntervalMapping>> {
        let mut front = ParetoFront::new();
        if let Some((mapping, _)) =
            crate::exact::min_latency_interval_with_budget(pipeline, platform, budget).into_inner()
        {
            let sol = BiSolution::evaluate(mapping, pipeline, platform);
            front.insert(sol.latency, sol.failure_prob, sol.mapping);
        }
        Budgeted::Cutoff(front)
    }
}

/// The budgeted heuristic portfolio as a front producer: a grid of
/// `MinLatencyUnderFp` thresholds between the Theorem 1 reliability
/// extreme and the least reliable useful point, each answered by the
/// portfolio, plus the exact latency anchor from [`IntervalDpFront`]
/// where it applies. Applicable to every instance; never claims
/// completeness.
#[derive(Clone, Copy, Debug)]
pub struct PortfolioFront {
    /// Seed shared by the randomized portfolio members.
    pub seed: u64,
    /// Number of threshold grid steps (≥ 2).
    pub steps: usize,
}

impl Default for PortfolioFront {
    fn default() -> Self {
        PortfolioFront {
            seed: 0xCAFE,
            steps: 9,
        }
    }
}

impl FrontSource for PortfolioFront {
    fn name(&self) -> &'static str {
        "portfolio"
    }

    fn applicable(&self, _pipeline: &Pipeline, _platform: &Platform) -> bool {
        true
    }

    fn exact_capable(&self) -> bool {
        false
    }

    fn front_with_budget(
        &self,
        pipeline: &Pipeline,
        platform: &Platform,
        budget: &Budget,
    ) -> Budgeted<ParetoFront<IntervalMapping>> {
        let mut front = ParetoFront::new();

        // Anchors: the exact reliability extreme (Theorem 1, polynomial)
        // and, where the interval DP applies, the exact latency extreme.
        let safest = mono::minimize_failure(pipeline, platform);
        front.insert(safest.latency, safest.failure_prob, safest.mapping.clone());
        let anchor = IntervalDpFront;
        if anchor.applicable(pipeline, platform) && !budget.is_exhausted() {
            front.merge(
                anchor
                    .front_with_budget(pipeline, platform, budget)
                    .into_inner(),
            );
        }

        // FP threshold grid from "anything goes" down to just above the
        // reliability floor, denser near the floor (linear in the bound).
        let portfolio = Portfolio::new(self.seed);
        let lo = safest.failure_prob;
        let steps = self.steps.max(2);
        for k in 0..steps {
            if budget.is_exhausted() {
                break;
            }
            let t = k as f64 / (steps - 1) as f64;
            let bound = 1.0 * (1.0 - t) + lo * t;
            if bound <= lo {
                break; // the Theorem 1 anchor already covers the floor
            }
            let objective = Objective::MinLatencyUnderFp(bound);
            if let Some(sol) = portfolio
                .solve_with_budget(pipeline, platform, objective, budget)
                .into_inner()
            {
                front.insert(sol.latency, sol.failure_prob, sol.mapping);
            }
        }
        // Heuristic fronts are never proven exact, whatever the budget.
        Budgeted::Cutoff(front)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpwf_core::assert_approx_eq;
    use rpwf_core::platform::{FailureClass, PlatformClass};

    fn small_het(n: usize, m: usize, seed: u64) -> (Pipeline, Platform) {
        let inst = rpwf_gen::make_instance(
            PlatformClass::FullyHeterogeneous,
            FailureClass::Heterogeneous,
            n,
            m,
            seed,
        );
        (inst.pipeline, inst.platform)
    }

    #[test]
    fn sweep_matches_exhaustive_front_on_small_het() {
        for seed in [1u64, 7, 21] {
            let (pipe, pf) = small_het(3, 4, seed);
            let oracle = Exhaustive::new(&pipe, &pf).pareto_front();
            let swept = BranchBoundSweep::default().front(&pipe, &pf);
            assert_eq!(
                swept.len(),
                oracle.len(),
                "seed {seed}: sweep must enumerate every front point"
            );
            for (a, b) in swept.iter().zip(oracle.iter()) {
                assert_approx_eq!(a.latency, b.latency);
                assert_approx_eq!(a.failure_prob, b.failure_prob);
            }
        }
    }

    #[test]
    fn sweep_is_anytime_under_an_expired_budget() {
        let (pipe, pf) = small_het(4, 5, 3);
        let outcome = BranchBoundSweep::default().front_with_budget(
            &pipe,
            &pf,
            &Budget::with_deadline(std::time::Duration::ZERO),
        );
        assert!(!outcome.is_complete());
        // Whatever made it on is genuinely achievable.
        for pt in outcome.inner().iter() {
            let re = BiSolution::evaluate(pt.payload.clone(), &pipe, &pf);
            assert_approx_eq!(re.latency, pt.latency);
            assert_approx_eq!(re.failure_prob, pt.failure_prob);
        }
    }

    #[test]
    fn parallel_sweep_front_is_byte_identical_to_sequential() {
        for seed in [1u64, 7] {
            let (pipe, pf) = small_het(3, 5, seed);
            let seq = BranchBoundSweep::default().front(&pipe, &pf);
            for threads in [2, 4] {
                let sweep = BranchBoundSweep {
                    threads,
                    ..BranchBoundSweep::default()
                };
                let par = sweep.front(&pipe, &pf);
                assert_eq!(
                    serde_json::to_string(&par).unwrap(),
                    serde_json::to_string(&seq).unwrap(),
                    "seed {seed} threads {threads}"
                );
            }
        }
    }

    #[test]
    fn sweep_stats_cover_every_step() {
        let (pipe, pf) = small_het(3, 4, 5);
        let sweep = BranchBoundSweep {
            threads: 2,
            ..BranchBoundSweep::default()
        };
        let (outcome, stats) = sweep.front_with_budget_stats(&pipe, &pf, &Budget::unlimited());
        assert!(outcome.is_complete());
        assert_eq!(stats.threads, 2);
        assert!(stats.nodes() > 0);
        assert!(
            stats.units_executed() as usize >= outcome.inner().len(),
            "at least one unit per front point"
        );
    }

    #[test]
    fn threshold_reads_agree_with_threshold_solvers() {
        let pipe = rpwf_gen::figure5_pipeline();
        let pf = rpwf_gen::figure5_platform();
        let front = BitmaskDpFront.front(&pipe, &pf);
        let objective = Objective::MinFpUnderLatency(22.0);
        let read = threshold_read(&front, objective).expect("feasible at L = 22");
        let direct = crate::exact::solve_comm_homog(&pipe, &pf, objective)
            .unwrap()
            .expect("feasible");
        assert_eq!(read, direct);
        assert!(threshold_read(&front, Objective::MinFpUnderLatency(0.0)).is_none());
    }

    #[test]
    fn batch_threshold_reads_equal_independent_reads() {
        let pipe = rpwf_gen::figure5_pipeline();
        let pf = rpwf_gen::figure5_platform();
        let front = BitmaskDpFront.front(&pipe, &pf);
        let objectives: Vec<Objective> = vec![
            Objective::MinFpUnderLatency(30.0),
            Objective::MinLatencyUnderFp(0.2),
            Objective::MinFpUnderLatency(0.0), // infeasible
            Objective::MinFpUnderLatency(22.0),
            Objective::MinLatencyUnderFp(0.9),
            Objective::MinLatencyUnderFp(1e-12), // infeasible
        ];
        let batch = threshold_read_batch(&front, &objectives);
        assert_eq!(batch.len(), objectives.len());
        for (objective, got) in objectives.iter().zip(&batch) {
            assert_eq!(
                got,
                &threshold_read(&front, *objective),
                "batch answer must equal the independent read for {objective:?}"
            );
        }
        assert!(threshold_read_batch(&front, &[]).is_empty());
    }

    #[test]
    fn interval_dp_front_is_the_latency_extreme() {
        let (pipe, pf) = small_het(3, 4, 9);
        let outcome = IntervalDpFront.front_with_budget(&pipe, &pf, &Budget::unlimited());
        assert!(
            !outcome.is_complete(),
            "a one-point front is never complete"
        );
        let anchor = outcome.into_inner();
        assert_eq!(anchor.len(), 1);
        let oracle = Exhaustive::new(&pipe, &pf).pareto_front();
        assert_approx_eq!(
            anchor.points()[0].latency,
            oracle.points().first().expect("non-empty").latency
        );
    }

    #[test]
    fn portfolio_front_covers_the_extremes() {
        let (pipe, pf) = small_het(4, 14, 2); // beyond every exact backend
        let outcome = PortfolioFront::default().front_with_budget(&pipe, &pf, &Budget::unlimited());
        assert!(
            !outcome.is_complete(),
            "heuristic fronts never claim exactness"
        );
        let front = outcome.into_inner();
        assert!(!front.is_empty());
        assert!(front.invariant_holds());
        let safest = mono::minimize_failure(&pipe, &pf);
        let best_fp = front.points().last().expect("non-empty").failure_prob;
        assert!(
            best_fp <= safest.failure_prob + 1e-12,
            "Theorem 1 anchor present"
        );
    }
}
