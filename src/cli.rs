//! The `rpwf` command-line tool: generate instances, solve them, print
//! Pareto fronts, and validate mappings by simulation — all over JSON
//! instance files.
//!
//! ```text
//! rpwf gen   --class ch --failure het -n 4 -m 6 --seed 7   # instance JSON to stdout
//! rpwf solve inst.json --min-fp-under-latency 22
//! rpwf solve inst.json --min-latency-under-fp 0.2
//! rpwf pareto inst.json
//! rpwf simulate inst.json --trials 20000
//! rpwf serve --addr 127.0.0.1:7077 --workers 8             # JSON-lines server
//! rpwf serve --stdin                                       # serve stdin/stdout
//! rpwf batch requests.jsonl --workers 8                    # one response per line
//! ```
//!
//! Parsing and execution are plain functions so the logic is unit-tested;
//! `src/bin/rpwf.rs` is a thin wrapper.

use rpwf_algo::engine::{Engine, SolveRequest, Want};
use rpwf_algo::{Objective, Provenance};
use rpwf_core::budget::Budget;
use rpwf_core::prelude::*;
use serde::{Deserialize, Serialize};

/// Seed shared with the server's default [`Engine`] so CLI answers match
/// served answers on identical instances.
const ENGINE_SEED: u64 = 0xCAFE;

/// A problem instance on disk.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct InstanceFile {
    /// The application.
    pub pipeline: Pipeline,
    /// The platform.
    pub platform: Platform,
}

impl InstanceFile {
    /// Parses the JSON representation (rebuilding derived caches).
    ///
    /// # Errors
    /// A human-readable message for malformed JSON or invalid instances.
    pub fn from_json(text: &str) -> std::result::Result<Self, String> {
        let parsed: InstanceFile =
            serde_json::from_str(text).map_err(|e| format!("invalid instance JSON: {e}"))?;
        Ok(InstanceFile {
            pipeline: parsed.pipeline.with_rebuilt_cache(),
            platform: parsed.platform,
        })
    }

    /// Serializes to pretty JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("model types always serialize")
    }
}

/// A parsed CLI invocation.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// Generate a random instance to stdout.
    Gen {
        /// Platform class tag (`fh`, `ch`, `het`).
        class: PlatformClass,
        /// Failure class tag (`hom`, `het`).
        failure: FailureClass,
        /// Stages.
        n: usize,
        /// Processors.
        m: usize,
        /// Seed.
        seed: u64,
    },
    /// Solve a threshold problem for an instance file.
    Solve {
        /// Path to the instance JSON.
        path: String,
        /// The threshold objective.
        objective: Objective,
        /// Worker threads for the exact search (1 = sequential,
        /// 0 = available parallelism). Answers are byte-identical at
        /// every thread count.
        solver_threads: usize,
    },
    /// Explain why a threshold problem is infeasible (MUS/MCS
    /// enumeration plus the nearest-feasible what-if).
    Explain {
        /// Path to the instance JSON.
        path: String,
        /// The threshold objective to explain.
        objective: Objective,
        /// Worker threads for the exact search (1 = sequential,
        /// 0 = available parallelism). Explanations are byte-identical
        /// at every thread count.
        solver_threads: usize,
    },
    /// Print the Pareto front of an instance file.
    Pareto {
        /// Path to the instance JSON.
        path: String,
        /// Worker threads for the exact search (1 = sequential,
        /// 0 = available parallelism). Fronts are byte-identical at
        /// every thread count.
        solver_threads: usize,
    },
    /// Monte Carlo validation of the min-FP mapping of an instance file.
    Simulate {
        /// Path to the instance JSON.
        path: String,
        /// Monte Carlo trials.
        trials: usize,
    },
    /// Run the JSON-lines solver service.
    Serve {
        /// Listen address (`host:port`; port 0 picks a free port).
        /// `None` serves stdin/stdout instead of TCP.
        addr: Option<String>,
        /// Worker threads (0 = available parallelism).
        workers: usize,
        /// Worker threads per exact branch-and-bound search
        /// (1 = sequential, 0 = available parallelism; the service caps
        /// the product `solver threads × pool workers` at the core
        /// count).
        solver_threads: usize,
        /// Solution-cache entries (0 disables).
        cache_capacity: usize,
        /// Fleet identity of this node — the `host:port` its peers dial.
        /// Required when `peers` is non-empty.
        node_id: Option<String>,
        /// Fleet peers (`host:port`). Non-empty switches the server into
        /// ring-sharded fleet mode.
        peers: Vec<String>,
        /// Virtual nodes per ring member (`None` = library default).
        vnodes: Option<usize>,
        /// Distinct owners per key (`None` = library default, 2). `1`
        /// disables front replication.
        replicas: Option<usize>,
        /// Peer connect timeout in milliseconds (`None` = library
        /// default, 500 ms).
        peer_connect_ms: Option<u64>,
        /// Read timeout for deadline-less forwarded requests in
        /// milliseconds (`None` = library default, 600 s watchdog).
        peer_read_ms: Option<u64>,
        /// Reactor event threads (0 = library default, 2).
        event_threads: usize,
        /// Solve-queue bound before requests are shed with `overloaded`
        /// (0 = library default, 1024).
        max_queue: usize,
        /// Default deadline the admission controller assumes for
        /// deadline-less requests, in milliseconds (`None` = shed only
        /// on the queue bound).
        admission_deadline_ms: Option<u64>,
    },
    /// Dump a running server's slow-query trace ring.
    Trace {
        /// Server address (`host:port`).
        addr: String,
        /// Maximum entries to list (server default when `None`).
        limit: Option<usize>,
    },
    /// Answer a file of JSON-lines requests concurrently, in input order.
    Batch {
        /// Path to the requests file (one JSON request per line).
        path: String,
        /// Worker threads (0 = available parallelism).
        workers: usize,
        /// Group requests by canonical instance hash and solve one Pareto
        /// front per distinct `(pipeline, platform)` (default). `false`
        /// solves every request independently.
        group: bool,
    },
    /// Print usage.
    Help,
}

/// Usage text.
pub const USAGE: &str = "\
rpwf — bi-criteria latency/reliability pipeline mapping (Benoit et al. 2008)

USAGE:
  rpwf gen --class <fh|ch|het> --failure <hom|het> -n <stages> -m <procs> [--seed <u64>]
  rpwf solve <instance.json> --min-fp-under-latency <L> [--solver-threads <n>]
  rpwf solve <instance.json> --min-latency-under-fp <F> [--solver-threads <n>]
  rpwf explain <instance.json> --min-fp-under-latency <L> [--solver-threads <n>]
  rpwf explain <instance.json> --min-latency-under-fp <F> [--solver-threads <n>]
  rpwf pareto <instance.json> [--solver-threads <n>]
  rpwf simulate <instance.json> [--trials <count>]
  rpwf serve [--addr <host:port>] [--stdin] [--workers <n>] [--solver-threads <n>]
             [--cache-capacity <n>] [--event-threads <n>] [--max-queue <n>]
             [--admission-deadline-ms <ms>]
  rpwf serve --addr <host:port> --node-id <host:port> --peers <host:port,...>
             [--vnodes <n>] [--replicas <r>] [--peer-connect-ms <ms>] [--peer-read-ms <ms>]
  rpwf batch <requests.jsonl> [--workers <n>] [--no-group]
  rpwf trace [--addr <host:port>] [--limit <n>]
  rpwf help

`explain` answers *why* a threshold query is infeasible: it enumerates
every minimal conflict (MUS) and minimal fix set (MCS) over the query's
constraint universe {bound, speed-limit, link-limit, platform-size} and
reports the nearest feasible bound as a what-if. On feasible queries it
simply says so. Explanations built from budget-cutoff fronts are
flagged best-effort, never minimal-proven.

The serve/batch protocol is JSON lines; see README.md for the schema.
`trace` dials a running server and prints its slow-query ring — the
span trees of the slowest recent requests that opted into tracing
(request flag \"trace\": true), slowest first.
`batch` groups requests by instance and solves one Pareto front per
distinct (pipeline, platform), answering every threshold query from it;
--no-group solves each request independently.

Fleet mode: with --peers, each instance is owned by --replicas nodes
(primary + ring successors) of the consistent-hash ring over
{--node-id} ∪ {--peers}; non-owned requests are forwarded to the
primary and fail over down the owner list, and complete fronts are
replicated to the successors so one node death loses no cached work.
--node-id must be the address the peers dial for this node.
--peer-connect-ms / --peer-read-ms bound how long a dead or wedged
peer is waited on (a per-peer circuit breaker skips known-dead peers).

Serving plane: --event-threads sizes the reactor's poll loops (0 = the
library default, 2); --max-queue bounds the solve queue (0 = default,
1024); both overload and (with --admission-deadline-ms as the assumed
deadline for deadline-less requests) unmeetable waits are shed fast
with a structured \"overloaded\" error carrying retry_after_ms.

--solver-threads runs each exact branch-and-bound search on a shared
worker pool (1 = sequential, 0 = one per core). Answers and fronts are
byte-identical at every thread count; threads only buy wall-clock time
and a larger exactly-solvable instance size. The server additionally
caps solver threads so that solver threads x pool workers never
exceeds the machine's cores.
";

/// Parses command-line arguments (without the program name).
///
/// # Errors
/// A usage message describing the problem.
pub fn parse_args(args: &[String]) -> std::result::Result<Command, String> {
    let mut it = args.iter();
    let Some(cmd) = it.next() else {
        return Ok(Command::Help);
    };
    let mut opts: std::collections::HashMap<String, String> = std::collections::HashMap::new();
    let mut positional: Vec<String> = Vec::new();
    let rest: Vec<&String> = it.collect();
    let mut i = 0;
    while i < rest.len() {
        let a = rest[i];
        if let Some(key) = a.strip_prefix("--") {
            // Boolean flags take no value.
            if key == "stdin" || key == "no-group" {
                opts.insert(key.to_string(), "true".to_string());
                i += 1;
                continue;
            }
            let value = rest
                .get(i + 1)
                .ok_or_else(|| format!("missing value for --{key}"))?;
            opts.insert(key.to_string(), (*value).clone());
            i += 2;
        } else if let Some(key) = a.strip_prefix('-') {
            let value = rest
                .get(i + 1)
                .ok_or_else(|| format!("missing value for -{key}"))?;
            opts.insert(key.to_string(), (*value).clone());
            i += 2;
        } else {
            positional.push(a.clone());
            i += 1;
        }
    }
    let get_num = |opts: &std::collections::HashMap<String, String>,
                   key: &str|
     -> std::result::Result<f64, String> {
        opts.get(key)
            .ok_or_else(|| format!("missing --{key}"))?
            .parse::<f64>()
            .map_err(|e| format!("--{key}: {e}"))
    };
    // `--solver-threads` defaults to 1 (sequential) everywhere; parallel
    // search is an explicit opt-in.
    let get_solver_threads =
        |opts: &std::collections::HashMap<String, String>| -> std::result::Result<usize, String> {
            opts.get("solver-threads").map_or(Ok(1), |s| {
                s.parse::<usize>()
                    .map_err(|e| format!("--solver-threads: {e}"))
            })
        };

    match cmd.as_str() {
        "gen" => {
            let class = match opts.get("class").map(String::as_str) {
                Some("fh") => PlatformClass::FullyHomogeneous,
                Some("ch") => PlatformClass::CommHomogeneous,
                Some("het") => PlatformClass::FullyHeterogeneous,
                other => return Err(format!("--class must be fh|ch|het, got {other:?}")),
            };
            let failure = match opts.get("failure").map(String::as_str) {
                Some("hom") => FailureClass::Homogeneous,
                Some("het") => FailureClass::Heterogeneous,
                other => return Err(format!("--failure must be hom|het, got {other:?}")),
            };
            let n = get_num(&opts, "n")? as usize;
            let m = get_num(&opts, "m")? as usize;
            let seed = opts.get("seed").map_or(Ok(42), |s| {
                s.parse::<u64>().map_err(|e| format!("--seed: {e}"))
            })?;
            if n == 0 || m == 0 {
                return Err("-n and -m must be positive".into());
            }
            Ok(Command::Gen {
                class,
                failure,
                n,
                m,
                seed,
            })
        }
        "solve" => {
            let path = positional
                .first()
                .ok_or_else(|| "solve needs an instance file".to_string())?
                .clone();
            let objective = if opts.contains_key("min-fp-under-latency") {
                Objective::MinFpUnderLatency(get_num(&opts, "min-fp-under-latency")?)
            } else if opts.contains_key("min-latency-under-fp") {
                Objective::MinLatencyUnderFp(get_num(&opts, "min-latency-under-fp")?)
            } else {
                return Err("solve needs --min-fp-under-latency or --min-latency-under-fp".into());
            };
            let solver_threads = get_solver_threads(&opts)?;
            Ok(Command::Solve {
                path,
                objective,
                solver_threads,
            })
        }
        "explain" => {
            let path = positional
                .first()
                .ok_or_else(|| "explain needs an instance file".to_string())?
                .clone();
            let objective = if opts.contains_key("min-fp-under-latency") {
                Objective::MinFpUnderLatency(get_num(&opts, "min-fp-under-latency")?)
            } else if opts.contains_key("min-latency-under-fp") {
                Objective::MinLatencyUnderFp(get_num(&opts, "min-latency-under-fp")?)
            } else {
                return Err(
                    "explain needs --min-fp-under-latency or --min-latency-under-fp".into(),
                );
            };
            let solver_threads = get_solver_threads(&opts)?;
            Ok(Command::Explain {
                path,
                objective,
                solver_threads,
            })
        }
        "pareto" => {
            let path = positional
                .first()
                .ok_or_else(|| "pareto needs an instance file".to_string())?
                .clone();
            let solver_threads = get_solver_threads(&opts)?;
            Ok(Command::Pareto {
                path,
                solver_threads,
            })
        }
        "simulate" => {
            let path = positional
                .first()
                .ok_or_else(|| "simulate needs an instance file".to_string())?
                .clone();
            let trials = opts.get("trials").map_or(Ok(10_000), |s| {
                s.parse::<usize>().map_err(|e| format!("--trials: {e}"))
            })?;
            Ok(Command::Simulate { path, trials })
        }
        "serve" => {
            let stdin = opts.contains_key("stdin");
            let addr = opts.get("addr").cloned();
            if stdin && addr.is_some() {
                return Err("serve takes either --addr or --stdin, not both".into());
            }
            let addr = if stdin {
                None
            } else {
                Some(addr.unwrap_or_else(|| "127.0.0.1:7077".into()))
            };
            let workers = opts.get("workers").map_or(Ok(0), |s| {
                s.parse::<usize>().map_err(|e| format!("--workers: {e}"))
            })?;
            let solver_threads = get_solver_threads(&opts)?;
            let cache_capacity = opts.get("cache-capacity").map_or(Ok(4096), |s| {
                s.parse::<usize>()
                    .map_err(|e| format!("--cache-capacity: {e}"))
            })?;
            let node_id = opts.get("node-id").cloned();
            let peers: Vec<String> = opts
                .get("peers")
                .map(|list| {
                    list.split(',')
                        .map(str::trim)
                        .filter(|p| !p.is_empty())
                        .map(ToString::to_string)
                        .collect()
                })
                .unwrap_or_default();
            let vnodes = opts
                .get("vnodes")
                .map(|s| s.parse::<usize>().map_err(|e| format!("--vnodes: {e}")))
                .transpose()?;
            let replicas = opts
                .get("replicas")
                .map(|s| s.parse::<usize>().map_err(|e| format!("--replicas: {e}")))
                .transpose()?;
            if replicas == Some(0) {
                return Err("--replicas must be at least 1".into());
            }
            let peer_connect_ms = opts
                .get("peer-connect-ms")
                .map(|s| {
                    s.parse::<u64>()
                        .map_err(|e| format!("--peer-connect-ms: {e}"))
                })
                .transpose()?;
            let peer_read_ms = opts
                .get("peer-read-ms")
                .map(|s| s.parse::<u64>().map_err(|e| format!("--peer-read-ms: {e}")))
                .transpose()?;
            let event_threads = opts.get("event-threads").map_or(Ok(0), |s| {
                s.parse::<usize>()
                    .map_err(|e| format!("--event-threads: {e}"))
            })?;
            let max_queue = opts.get("max-queue").map_or(Ok(0), |s| {
                s.parse::<usize>().map_err(|e| format!("--max-queue: {e}"))
            })?;
            let admission_deadline_ms = opts
                .get("admission-deadline-ms")
                .map(|s| {
                    s.parse::<u64>()
                        .map_err(|e| format!("--admission-deadline-ms: {e}"))
                })
                .transpose()?;
            if !peers.is_empty() {
                if stdin {
                    return Err("fleet mode (--peers) needs a TCP address, not --stdin".into());
                }
                if node_id.is_none() {
                    return Err(
                        "fleet mode needs --node-id (the host:port peers dial for this node)"
                            .into(),
                    );
                }
            }
            Ok(Command::Serve {
                addr,
                workers,
                solver_threads,
                cache_capacity,
                node_id,
                peers,
                vnodes,
                replicas,
                peer_connect_ms,
                peer_read_ms,
                event_threads,
                max_queue,
                admission_deadline_ms,
            })
        }
        "trace" => {
            let addr = opts
                .get("addr")
                .cloned()
                .unwrap_or_else(|| "127.0.0.1:7077".into());
            let limit = opts
                .get("limit")
                .map(|s| s.parse::<usize>().map_err(|e| format!("--limit: {e}")))
                .transpose()?;
            Ok(Command::Trace { addr, limit })
        }
        "batch" => {
            let path = positional
                .first()
                .ok_or_else(|| "batch needs a requests file".to_string())?
                .clone();
            let workers = opts.get("workers").map_or(Ok(0), |s| {
                s.parse::<usize>().map_err(|e| format!("--workers: {e}"))
            })?;
            Ok(Command::Batch {
                path,
                workers,
                group: !opts.contains_key("no-group"),
            })
        }
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(format!("unknown command: {other}\n{USAGE}")),
    }
}

/// Renders a solve provenance for terminal output.
fn provenance_label(provenance: Option<Provenance>) -> &'static str {
    match provenance {
        Some(Provenance::Exact) => "exact",
        Some(Provenance::Heuristic) => "heuristic",
        None => "none",
    }
}

/// Executes a parsed command against the filesystem, returning stdout text.
///
/// `Serve` with a TCP address never returns here — the binary handles it
/// (it must block on the listener); `Serve { addr: None }` runs the
/// stdin/stdout loop to completion.
///
/// # Errors
/// A human-readable message (bad file, infeasible instance, …).
pub fn run(command: &Command) -> std::result::Result<String, String> {
    use std::fmt::Write as _;
    match command {
        Command::Help => Ok(USAGE.to_string()),
        Command::Serve {
            addr: Some(addr), ..
        } => Err(format!(
            "serve --addr {addr} must be launched from the rpwf binary"
        )),
        Command::Serve {
            addr: None,
            workers,
            solver_threads,
            cache_capacity,
            ..
        } => {
            rpwf_server::serve_stdin(rpwf_server::ServiceConfig {
                workers: *workers,
                solver_threads: *solver_threads,
                cache_capacity: *cache_capacity,
                ..Default::default()
            });
            Ok(String::new())
        }
        Command::Trace { addr, limit } => {
            use rpwf_server::protocol::{
                Command as WireCommand, Request as WireRequest, Response as WireResponse,
                TraceResult,
            };
            use serde::Deserialize as _;
            let request = WireRequest {
                id: Some(1),
                deadline_ms: None,
                no_cache: None,
                hop: None,
                trace: None,
                trace_ctx: None,
                explain: None,
                cmd: WireCommand::Trace { limit: *limit },
            };
            let line = serde_json::to_string(&request).expect("requests always serialize");
            let peer = rpwf_server::peer::Peer::new(addr.clone());
            let lines = peer
                .call(&line, std::time::Duration::from_secs(10))
                .map_err(|e| format!("{addr}: {e}"))?;
            let last = lines
                .last()
                .ok_or_else(|| format!("{addr}: empty response"))?;
            let response: WireResponse =
                serde_json::from_str(last).map_err(|e| format!("{addr}: bad response: {e}"))?;
            if response.status != "ok" {
                let detail = response
                    .error
                    .map_or_else(|| "unknown error".to_string(), |e| e.message);
                return Err(format!("{addr}: {detail}"));
            }
            let result = response
                .result
                .as_ref()
                .ok_or_else(|| format!("{addr}: response without result"))
                .and_then(|value| {
                    TraceResult::from_value(value)
                        .map_err(|e| format!("{addr}: bad trace payload: {e:?}"))
                })?;
            let mut out = String::new();
            writeln!(
                out,
                "slow-query ring at {addr}: {} of {} slots",
                result.entries.len(),
                result.capacity
            )
            .expect("write to string");
            for entry in &result.entries {
                let node = entry
                    .node
                    .as_deref()
                    .map_or_else(String::new, |n| format!("  node={n}"));
                writeln!(
                    out,
                    "\ntrace {:016x}  cmd={}  status={}  {}us{node}",
                    entry.id, entry.command, entry.status, entry.elapsed_us
                )
                .expect("write to string");
                let mut tree = String::new();
                entry.spans.render(&mut tree);
                for line in tree.lines() {
                    writeln!(out, "  {line}").expect("write to string");
                }
            }
            Ok(out)
        }
        Command::Batch {
            path,
            workers,
            group,
        } => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let lines: Vec<String> = text
                .lines()
                .filter(|l| !l.trim().is_empty())
                .map(ToString::to_string)
                .collect();
            let service = std::sync::Arc::new(rpwf_server::SolverService::new(
                rpwf_server::ServiceConfig {
                    workers: *workers,
                    ..Default::default()
                },
            ));
            let pool = rpwf_server::WorkerPool::new(service);
            let responses = if *group {
                pool.submit_batch(lines)
            } else {
                pool.submit_batch_ungrouped(lines)
            };
            let mut out = String::new();
            for response in responses {
                writeln!(out, "{response}").expect("write to string");
            }
            Ok(out)
        }
        Command::Gen {
            class,
            failure,
            n,
            m,
            seed,
        } => {
            let inst = rpwf_gen::make_instance(*class, *failure, *n, *m, *seed);
            Ok(InstanceFile {
                pipeline: inst.pipeline,
                platform: inst.platform,
            }
            .to_json())
        }
        Command::Solve {
            path,
            objective,
            solver_threads,
        } => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let inst = InstanceFile::from_json(&text)?;
            // One engine call: capability-driven backend selection,
            // exact-first with portfolio racing — the same plan the
            // server runs.
            let engine = Engine::with_parallel_backends(ENGINE_SEED, *solver_threads);
            let report = engine.solve(&SolveRequest {
                pipeline: &inst.pipeline,
                platform: &inst.platform,
                want: Want::Point {
                    objective: *objective,
                    keep_front: false,
                },
                budget: &Budget::unlimited(),
            });
            let Some(sol) = report.point() else {
                return Err(if report.completeness.exact_complete {
                    format!(
                        "infeasible: no mapping satisfies {objective:?} \
                         (run `rpwf explain` to see why)"
                    )
                } else {
                    format!(
                        "infeasible: no feasible solution found for {objective:?} \
                         (heuristic search; not a proof of infeasibility — \
                         run `rpwf explain` to see why)"
                    )
                });
            };
            let mut out = String::new();
            writeln!(
                out,
                "solver   : {} ({})",
                provenance_label(report.provenance),
                if report.completeness.exact_complete {
                    "proven optimal"
                } else {
                    "best effort"
                }
            )
            .expect("write to string");
            writeln!(out, "mapping  : {}", sol.mapping).expect("write to string");
            writeln!(out, "latency  : {:.6}", sol.latency).expect("write to string");
            writeln!(out, "FP       : {:.6}", sol.failure_prob).expect("write to string");
            Ok(out)
        }
        Command::Explain {
            path,
            objective,
            solver_threads,
        } => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let inst = InstanceFile::from_json(&text)?;
            // The same MARCO enumeration the server runs, against the
            // same engine plan, so CLI and served explanations match.
            let engine = Engine::with_parallel_backends(ENGINE_SEED, *solver_threads);
            let report = engine.solve(&SolveRequest {
                pipeline: &inst.pipeline,
                platform: &inst.platform,
                want: Want::Explain {
                    objective: *objective,
                },
                budget: &Budget::unlimited(),
            });
            let explanation = report
                .explanation()
                .expect("explain request yields an explanation");
            let mut out = String::new();
            if explanation.feasible {
                writeln!(
                    out,
                    "feasible : yes — {objective:?} is satisfiable; nothing to explain"
                )
                .expect("write to string");
                return Ok(out);
            }
            writeln!(
                out,
                "feasible : no ({})",
                if explanation.proven {
                    "proven — conflicts are minimal"
                } else {
                    "best effort — cutoff fronts; conflicts are candidates, not proven minimal"
                }
            )
            .expect("write to string");
            writeln!(out, "universe :").expect("write to string");
            for (i, constraint) in explanation.universe.iter().enumerate() {
                writeln!(
                    out,
                    "  [{i}] {:<13} {}",
                    constraint.label, constraint.detail
                )
                .expect("write to string");
            }
            let members = |indices: &[usize]| {
                indices
                    .iter()
                    .map(|&i| explanation.universe[i].label)
                    .collect::<Vec<_>>()
                    .join(" + ")
            };
            for mus in &explanation.muses {
                writeln!(out, "conflict : {{{}}} cannot hold together", members(mus))
                    .expect("write to string");
            }
            for mcs in &explanation.mcses {
                writeln!(out, "fix      : relax {{{}}}", members(mcs)).expect("write to string");
            }
            if let Some(relaxation) = explanation.relaxation {
                match relaxation.nearest {
                    Some(pt) => writeln!(
                        out,
                        "what-if  : nearest feasible {} — latency {:.6}, FP {:.6}{}",
                        relaxation.axis,
                        pt.latency,
                        pt.failure_prob,
                        if relaxation.proven {
                            ""
                        } else {
                            " (best effort)"
                        }
                    ),
                    None => writeln!(
                        out,
                        "what-if  : no feasible point at any {} bound",
                        relaxation.axis
                    ),
                }
                .expect("write to string");
            }
            writeln!(
                out,
                "oracle   : {} front solves ({} cached)",
                explanation.oracle_calls, explanation.oracle_cached
            )
            .expect("write to string");
            Ok(out)
        }
        Command::Pareto {
            path,
            solver_threads,
        } => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let inst = InstanceFile::from_json(&text)?;
            // Front-first through the engine: the strongest exact front
            // backend where one applies, the heuristic portfolio front
            // beyond — every instance gets an answer, flagged by
            // completeness.
            let engine = Engine::with_parallel_backends(ENGINE_SEED, *solver_threads);
            let report = engine.solve(&SolveRequest {
                pipeline: &inst.pipeline,
                platform: &inst.platform,
                want: Want::Front,
                budget: &Budget::unlimited(),
            });
            let complete = report.completeness.exact_complete;
            let front = report
                .front_answer()
                .expect("front request yields a front")
                .clone();
            let mut out = String::new();
            writeln!(
                out,
                "solver   : {} ({})",
                provenance_label(report.provenance),
                if complete {
                    "exact front"
                } else {
                    "sound under-approximation"
                }
            )
            .expect("write to string");
            writeln!(out, "{:>12}  {:>12}  mapping", "latency", "FP").expect("write to string");
            for pt in front.iter() {
                writeln!(
                    out,
                    "{:>12.4}  {:>12.6}  {}",
                    pt.latency, pt.failure_prob, pt.payload
                )
                .expect("write to string");
            }
            Ok(out)
        }
        Command::Simulate { path, trials } => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let inst = InstanceFile::from_json(&text)?;
            let safest = rpwf_algo::mono::minimize_failure(&inst.pipeline, &inst.platform);
            let mc = rpwf_sim::MonteCarlo {
                trials: *trials,
                ..Default::default()
            };
            let report = mc.run(&inst.pipeline, &inst.platform, &safest.mapping);
            let mut out = String::new();
            writeln!(out, "mapping (Thm 1, min FP): {}", safest.mapping).expect("write");
            writeln!(out, "analytic FP            : {:.6}", safest.failure_prob).expect("write");
            writeln!(
                out,
                "MC failure rate        : {:.6}",
                1.0 - report.success_rate
            )
            .expect("write");
            writeln!(
                out,
                "wilson 95% (success)   : [{:.6}, {:.6}]",
                report.wilson95.0, report.wilson95.1
            )
            .expect("write");
            writeln!(
                out,
                "latency min/mean/max   : {:.4} / {:.4} / {:.4} (bound {:.4})",
                report.latency.min, report.latency.mean, report.latency.max, safest.latency
            )
            .expect("write");
            Ok(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(ToString::to_string).collect()
    }

    #[test]
    fn parse_gen() {
        let cmd = parse_args(&args("gen --class ch --failure het -n 4 -m 6 --seed 7")).unwrap();
        assert_eq!(
            cmd,
            Command::Gen {
                class: PlatformClass::CommHomogeneous,
                failure: FailureClass::Heterogeneous,
                n: 4,
                m: 6,
                seed: 7
            }
        );
    }

    #[test]
    fn parse_solve_both_objectives() {
        let cmd = parse_args(&args("solve inst.json --min-fp-under-latency 22")).unwrap();
        assert_eq!(
            cmd,
            Command::Solve {
                path: "inst.json".into(),
                objective: Objective::MinFpUnderLatency(22.0),
                solver_threads: 1,
            }
        );
        let cmd = parse_args(&args("solve inst.json --min-latency-under-fp 0.2")).unwrap();
        assert!(
            matches!(cmd, Command::Solve { objective: Objective::MinLatencyUnderFp(f), .. } if f == 0.2)
        );
    }

    #[test]
    fn parse_explain_both_objectives() {
        let cmd = parse_args(&args("explain inst.json --min-fp-under-latency 1.5")).unwrap();
        assert_eq!(
            cmd,
            Command::Explain {
                path: "inst.json".into(),
                objective: Objective::MinFpUnderLatency(1.5),
                solver_threads: 1,
            }
        );
        let cmd = parse_args(&args(
            "explain inst.json --min-latency-under-fp 0.1 --solver-threads 2",
        ))
        .unwrap();
        assert!(
            matches!(cmd, Command::Explain { objective: Objective::MinLatencyUnderFp(f), solver_threads: 2, .. } if f == 0.1)
        );
        assert!(parse_args(&args("explain inst.json"))
            .unwrap_err()
            .contains("min-fp"));
    }

    #[test]
    fn explain_renders_conflicts_and_what_ifs() {
        let dir = std::env::temp_dir().join("rpwf-cli-explain-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("inst.json");
        let file = InstanceFile {
            pipeline: Pipeline::uniform(2, 100.0, 100.0).unwrap(),
            platform: Platform::fully_homogeneous(3, 1.0, 1.0, 0.9).unwrap(),
        };
        std::fs::write(&path, file.to_json()).unwrap();
        let path_str = path.to_string_lossy().into_owned();

        let out = run(&Command::Explain {
            path: path_str.clone(),
            objective: Objective::MinFpUnderLatency(1.0),
            solver_threads: 1,
        })
        .unwrap();
        assert!(out.contains("feasible : no (proven"), "{out}");
        assert!(out.contains("conflict : {bound"), "{out}");
        assert!(out.contains("fix      : relax {"), "{out}");
        assert!(out.contains("what-if  : nearest feasible latency"), "{out}");

        let feasible = run(&Command::Explain {
            path: path_str,
            objective: Objective::MinFpUnderLatency(1e9),
            solver_threads: 1,
        })
        .unwrap();
        assert!(feasible.contains("nothing to explain"), "{feasible}");
    }

    #[test]
    fn parse_errors_are_informative() {
        assert!(
            parse_args(&args("gen --class bogus --failure hom -n 2 -m 2"))
                .unwrap_err()
                .contains("--class")
        );
        assert!(parse_args(&args("solve inst.json"))
            .unwrap_err()
            .contains("min-fp"));
        assert!(parse_args(&args("frobnicate"))
            .unwrap_err()
            .contains("unknown command"));
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
    }

    #[test]
    fn gen_solve_roundtrip_through_tempfile() {
        let gen = Command::Gen {
            class: PlatformClass::CommHomogeneous,
            failure: FailureClass::Heterogeneous,
            n: 3,
            m: 5,
            seed: 99,
        };
        let json = run(&gen).unwrap();
        let parsed = InstanceFile::from_json(&json).unwrap();
        assert_eq!(parsed.pipeline.n_stages(), 3);
        assert_eq!(parsed.platform.n_procs(), 5);

        let dir = std::env::temp_dir().join("rpwf-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("inst.json");
        std::fs::write(&path, &json).unwrap();
        let path_str = path.to_string_lossy().into_owned();

        // Pick a generous latency budget from Thm 1's mapping.
        let budget = rpwf_algo::mono::minimize_failure(&parsed.pipeline, &parsed.platform).latency;
        let out = run(&Command::Solve {
            path: path_str.clone(),
            objective: Objective::MinFpUnderLatency(budget),
            solver_threads: 1,
        })
        .unwrap();
        assert!(out.contains("exact"), "{out}");
        assert!(out.contains("latency"), "{out}");

        let front = run(&Command::Pareto {
            path: path_str.clone(),
            solver_threads: 1,
        })
        .unwrap();
        assert!(front.lines().count() >= 2, "{front}");

        let sim = run(&Command::Simulate {
            path: path_str,
            trials: 500,
        })
        .unwrap();
        assert!(sim.contains("MC failure rate"), "{sim}");
    }

    #[test]
    fn instance_json_roundtrip_preserves_metrics() {
        let inst = rpwf_gen::make_instance(
            PlatformClass::FullyHeterogeneous,
            FailureClass::Heterogeneous,
            3,
            4,
            5,
        );
        let file = InstanceFile {
            pipeline: inst.pipeline.clone(),
            platform: inst.platform.clone(),
        };
        let parsed = InstanceFile::from_json(&file.to_json()).unwrap();
        // The rebuilt pipeline must produce identical metric values.
        let mapping = IntervalMapping::single_interval(3, vec![ProcId(0), ProcId(2)], 4).unwrap();
        assert_eq!(
            latency(&mapping, &inst.pipeline, &inst.platform),
            latency(&mapping, &parsed.pipeline, &parsed.platform),
        );
    }

    #[test]
    fn run_help_prints_usage() {
        assert_eq!(run(&Command::Help).unwrap(), USAGE);
    }

    #[test]
    fn parse_serve_variants() {
        assert_eq!(
            parse_args(&args("serve --addr 0.0.0.0:9000 --workers 4")).unwrap(),
            Command::Serve {
                addr: Some("0.0.0.0:9000".into()),
                workers: 4,
                solver_threads: 1,
                cache_capacity: 4096,
                node_id: None,
                peers: vec![],
                vnodes: None,
                replicas: None,
                peer_connect_ms: None,
                peer_read_ms: None,
                event_threads: 0,
                max_queue: 0,
                admission_deadline_ms: None,
            }
        );
        assert_eq!(
            parse_args(&args("serve --stdin --cache-capacity 16")).unwrap(),
            Command::Serve {
                addr: None,
                workers: 0,
                solver_threads: 1,
                cache_capacity: 16,
                node_id: None,
                peers: vec![],
                vnodes: None,
                replicas: None,
                peer_connect_ms: None,
                peer_read_ms: None,
                event_threads: 0,
                max_queue: 0,
                admission_deadline_ms: None,
            }
        );
        assert_eq!(
            parse_args(&args("serve")).unwrap(),
            Command::Serve {
                addr: Some("127.0.0.1:7077".into()),
                workers: 0,
                solver_threads: 1,
                cache_capacity: 4096,
                node_id: None,
                peers: vec![],
                vnodes: None,
                replicas: None,
                peer_connect_ms: None,
                peer_read_ms: None,
                event_threads: 0,
                max_queue: 0,
                admission_deadline_ms: None,
            }
        );
        assert!(parse_args(&args("serve --stdin --addr 1.2.3.4:1"))
            .unwrap_err()
            .contains("not both"));
    }

    #[test]
    fn parse_serve_fleet_mode() {
        assert_eq!(
            parse_args(&args(
                "serve --addr 0.0.0.0:7001 --node-id 10.0.0.1:7001 \
                 --peers 10.0.0.2:7001,10.0.0.3:7001 --vnodes 32"
            ))
            .unwrap(),
            Command::Serve {
                addr: Some("0.0.0.0:7001".into()),
                workers: 0,
                solver_threads: 1,
                cache_capacity: 4096,
                node_id: Some("10.0.0.1:7001".into()),
                peers: vec!["10.0.0.2:7001".into(), "10.0.0.3:7001".into()],
                vnodes: Some(32),
                replicas: None,
                peer_connect_ms: None,
                peer_read_ms: None,
                event_threads: 0,
                max_queue: 0,
                admission_deadline_ms: None,
            }
        );
        // Fault-tolerance knobs parse and round-trip.
        assert_eq!(
            parse_args(&args(
                "serve --addr 0.0.0.0:7001 --node-id 10.0.0.1:7001 \
                 --peers 10.0.0.2:7001 --replicas 3 --peer-connect-ms 250 \
                 --peer-read-ms 30000"
            ))
            .unwrap(),
            Command::Serve {
                addr: Some("0.0.0.0:7001".into()),
                workers: 0,
                solver_threads: 1,
                cache_capacity: 4096,
                node_id: Some("10.0.0.1:7001".into()),
                peers: vec!["10.0.0.2:7001".into()],
                vnodes: None,
                replicas: Some(3),
                peer_connect_ms: Some(250),
                peer_read_ms: Some(30_000),
                event_threads: 0,
                max_queue: 0,
                admission_deadline_ms: None,
            }
        );
        // Serving-plane knobs parse and round-trip.
        assert_eq!(
            parse_args(&args(
                "serve --addr 0.0.0.0:7001 --event-threads 4 --max-queue 256 \
                 --admission-deadline-ms 2000"
            ))
            .unwrap(),
            Command::Serve {
                addr: Some("0.0.0.0:7001".into()),
                workers: 0,
                solver_threads: 1,
                cache_capacity: 4096,
                node_id: None,
                peers: vec![],
                vnodes: None,
                replicas: None,
                peer_connect_ms: None,
                peer_read_ms: None,
                event_threads: 4,
                max_queue: 256,
                admission_deadline_ms: Some(2000),
            }
        );
        // Zero replicas would leave keys unowned.
        assert!(parse_args(&args(
            "serve --addr a:1 --node-id a:1 --peers b:2 --replicas 0"
        ))
        .unwrap_err()
        .contains("--replicas"));
        // Peers without an identity is a configuration error…
        assert!(parse_args(&args("serve --peers 10.0.0.2:7001"))
            .unwrap_err()
            .contains("--node-id"));
        // …and fleet mode cannot serve stdin.
        assert!(
            parse_args(&args("serve --stdin --peers 10.0.0.2:7001 --node-id a:1"))
                .unwrap_err()
                .contains("TCP")
        );
    }

    #[test]
    fn batch_runs_requests_in_order() {
        let dir = std::env::temp_dir().join("rpwf-cli-batch-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("requests.jsonl");
        std::fs::write(
            &path,
            "{\"id\": 1, \"cmd\": \"Ping\"}\n{\"id\": 2, \"cmd\": \"Ping\"}\n",
        )
        .unwrap();
        let out = run(&Command::Batch {
            path: path.to_string_lossy().into_owned(),
            workers: 2,
            group: true,
        })
        .unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"id\":1"), "{}", lines[0]);
        assert!(lines[1].contains("\"id\":2"), "{}", lines[1]);
        assert!(
            lines.iter().all(|l| l.contains("\"status\":\"ok\"")),
            "{out}"
        );
    }

    #[test]
    fn batch_missing_file_errors() {
        let err = run(&Command::Batch {
            path: "/nonexistent/requests.jsonl".into(),
            workers: 1,
            group: true,
        })
        .unwrap_err();
        assert!(err.contains("/nonexistent/requests.jsonl"));
    }

    #[test]
    fn parse_batch_grouping_flag() {
        assert_eq!(
            parse_args(&args("batch requests.jsonl --workers 2")).unwrap(),
            Command::Batch {
                path: "requests.jsonl".into(),
                workers: 2,
                group: true,
            }
        );
        assert_eq!(
            parse_args(&args("batch requests.jsonl --no-group")).unwrap(),
            Command::Batch {
                path: "requests.jsonl".into(),
                workers: 0,
                group: false,
            }
        );
    }

    #[test]
    fn parse_trace_verb() {
        assert_eq!(
            parse_args(&args("trace")).unwrap(),
            Command::Trace {
                addr: "127.0.0.1:7077".into(),
                limit: None,
            }
        );
        assert_eq!(
            parse_args(&args("trace --addr 10.0.0.1:7001 --limit 5")).unwrap(),
            Command::Trace {
                addr: "10.0.0.1:7001".into(),
                limit: Some(5),
            }
        );
        assert!(parse_args(&args("trace --limit nope"))
            .unwrap_err()
            .contains("--limit"));
    }

    #[test]
    fn trace_verb_dumps_a_served_slow_query_ring() {
        // Boot a real TCP server, run one traced solve against it, then
        // point the trace verb at it.
        let mut server = rpwf_server::Server::bind(
            "127.0.0.1:0",
            rpwf_server::ServiceConfig {
                workers: 2,
                ..Default::default()
            },
        )
        .expect("bind");
        let addr = server.local_addr().to_string();

        let peer = rpwf_server::peer::Peer::new(addr.clone());
        let solve = serde_json::to_string(&rpwf_server::protocol::Request {
            id: Some(7),
            deadline_ms: None,
            no_cache: None,
            hop: None,
            trace: Some(true),
            trace_ctx: None,
            explain: None,
            cmd: rpwf_server::protocol::Command::Solve {
                pipeline: rpwf_gen::figure5_pipeline(),
                platform: rpwf_gen::figure5_platform(),
                objective: Objective::MinFpUnderLatency(22.0),
            },
        })
        .unwrap();
        let lines = peer
            .call(&solve, std::time::Duration::from_secs(30))
            .expect("traced solve");
        assert!(lines[0].contains("\"trace\""), "{}", lines[0]);

        let out = run(&Command::Trace {
            addr: addr.clone(),
            limit: None,
        })
        .expect("trace verb");
        assert!(out.contains("slow-query ring"), "{out}");
        assert!(out.contains("cmd=solve"), "{out}");
        assert!(out.contains("engine.plan"), "{out}");
        server.shutdown();

        // A dead server is a readable error, not a panic.
        let err = run(&Command::Trace { addr, limit: None }).unwrap_err();
        assert!(err.contains(':'), "{err}");
    }

    #[test]
    fn pareto_works_beyond_exact_backends() {
        // m = 14 fully heterogeneous: the old CLI refused this instance;
        // the front-first path answers with a flagged heuristic front.
        let gen = Command::Gen {
            class: PlatformClass::FullyHeterogeneous,
            failure: FailureClass::Heterogeneous,
            n: 3,
            m: 14,
            seed: 4,
        };
        let json = run(&gen).unwrap();
        let dir = std::env::temp_dir().join("rpwf-cli-front-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("het14.json");
        std::fs::write(&path, &json).unwrap();
        let out = run(&Command::Pareto {
            path: path.to_string_lossy().into_owned(),
            solver_threads: 1,
        })
        .unwrap();
        assert!(out.contains("heuristic"), "{out}");
        assert!(out.contains("sound under-approximation"), "{out}");
        assert!(out.lines().count() >= 3, "{out}");
    }

    #[test]
    fn run_solve_missing_file_errors() {
        let err = run(&Command::Solve {
            path: "/nonexistent/inst.json".into(),
            objective: Objective::MinFpUnderLatency(1.0),
            solver_threads: 1,
        })
        .unwrap_err();
        assert!(err.contains("/nonexistent/inst.json"));
    }
}
