//! # rpwf — Reliable Pipeline Workflows
//!
//! A Rust implementation of *Optimizing Latency and Reliability of Pipeline
//! Workflow Applications* (Anne Benoit, Veronika Rehn-Sonigo, Yves Robert —
//! INRIA RR-6345, IPDPS 2008): bi-criteria mapping of linear pipeline
//! workflows onto heterogeneous failure-prone platforms, trading worst-case
//! **latency** against **failure probability** through replicated interval
//! mappings.
//!
//! This facade crate re-exports the four member crates:
//!
//! * [`core`] (`rpwf-core`) — pipelines, platforms, mappings, the latency
//!   and reliability metrics, Pareto fronts;
//! * [`gen`] (`rpwf-gen`) — seeded workload/platform/instance generators,
//!   including the JPEG encoder pipeline and the paper's worked examples;
//! * [`algo`] (`rpwf-algo`) — every algorithm of the paper (Theorems 1–7,
//!   Algorithms 1–4), exact exponential oracles, heuristics for the
//!   NP-hard/open variants, and both NP-hardness reduction gadgets;
//! * [`sim`] (`rpwf-sim`) — a discrete-event simulator that certifies the
//!   analytic formulas (worst-case equality, Monte Carlo reliability).
//!
//! ## Quickstart
//!
//! ```
//! use rpwf::prelude::*;
//!
//! // Figure 5 of the paper: one slow reliable processor and ten fast
//! // unreliable ones, uniform links.
//! let pipeline = gen::figure5_pipeline();
//! let platform = gen::figure5_platform();
//!
//! // Minimize failure probability subject to latency ≤ 22 (the open
//! // CH + Failure-Heterogeneous problem) with the exact bitmask DP:
//! let best = algo::exact::solve_comm_homog(
//!     &pipeline,
//!     &platform,
//!     Objective::MinFpUnderLatency(22.0),
//! )
//! .unwrap()
//! .expect("feasible at L = 22");
//! assert!(best.failure_prob < 0.2); // the paper's headline number
//! assert_eq!(best.mapping.n_intervals(), 2); // and its two-interval shape
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod cli;

pub use rpwf_algo as algo;
pub use rpwf_core as core;
pub use rpwf_gen as gen;
pub use rpwf_sim as sim;

/// Most-used items across all member crates.
pub mod prelude {
    pub use rpwf_algo::{self as algo, BiSolution, Objective};
    pub use rpwf_core::prelude::*;
    pub use rpwf_gen as gen;
    pub use rpwf_sim as sim;
}
