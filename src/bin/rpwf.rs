//! Thin wrapper over [`rpwf::cli`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match rpwf::cli::parse_args(&args).and_then(|cmd| rpwf::cli::run(&cmd)) {
        Ok(out) => print!("{out}"),
        Err(err) => {
            eprintln!("error: {err}");
            std::process::exit(1);
        }
    }
}
