//! Thin wrapper over [`rpwf::cli`]. The TCP server mode is handled here
//! because it must block on the listener for the process lifetime.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match rpwf::cli::parse_args(&args) {
        Ok(command) => command,
        Err(err) => {
            eprintln!("error: {err}");
            std::process::exit(1);
        }
    };

    if let rpwf::cli::Command::Serve {
        addr: Some(addr),
        workers,
        cache_capacity,
    } = &command
    {
        let config = rpwf_server::ServiceConfig {
            workers: *workers,
            cache_capacity: *cache_capacity,
            ..Default::default()
        };
        match rpwf_server::Server::bind(addr, config) {
            Ok(server) => {
                println!("rpwf-server listening on {}", server.local_addr());
                // Serve until killed.
                loop {
                    std::thread::sleep(std::time::Duration::from_secs(3600));
                }
            }
            Err(err) => {
                eprintln!("error: failed to bind {addr}: {err}");
                std::process::exit(1);
            }
        }
    }

    match rpwf::cli::run(&command) {
        Ok(out) => print!("{out}"),
        Err(err) => {
            eprintln!("error: {err}");
            std::process::exit(1);
        }
    }
}
