//! Thin wrapper over [`rpwf::cli`]. The TCP server mode is handled here
//! because it must block on the listener for the process lifetime.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match rpwf::cli::parse_args(&args) {
        Ok(command) => command,
        Err(err) => {
            eprintln!("error: {err}");
            std::process::exit(1);
        }
    };

    if let rpwf::cli::Command::Serve {
        addr: Some(addr),
        workers,
        solver_threads,
        cache_capacity,
        node_id,
        peers,
        vnodes,
        replicas,
        peer_connect_ms,
        peer_read_ms,
        event_threads,
        max_queue,
        admission_deadline_ms,
    } = &command
    {
        let config = rpwf_server::ServiceConfig {
            workers: *workers,
            solver_threads: *solver_threads,
            cache_capacity: *cache_capacity,
            node_id: node_id.clone(),
            ..Default::default()
        };
        let serving = rpwf_server::ServingOptions {
            event_threads: *event_threads,
            max_queue: *max_queue,
            admission_deadline: admission_deadline_ms.map(std::time::Duration::from_millis),
        };
        let bound = if peers.is_empty() {
            rpwf_server::Server::bind_tuned(addr, config, serving)
        } else {
            let defaults = rpwf_server::RingOptions::default();
            let options = rpwf_server::RingOptions {
                vnodes: *vnodes,
                replicas: replicas.unwrap_or(defaults.replicas),
                peer_connect: peer_connect_ms.map(std::time::Duration::from_millis),
                peer_read: peer_read_ms.map(std::time::Duration::from_millis),
            };
            rpwf_server::Server::bind_ring_tuned(addr, config, peers, options, serving)
        };
        match bound {
            Ok(server) => {
                if peers.is_empty() {
                    println!("rpwf-server listening on {}", server.local_addr());
                } else {
                    println!(
                        "rpwf-server listening on {} (fleet node {}, {} peers)",
                        server.local_addr(),
                        node_id.as_deref().unwrap_or("?"),
                        peers.len()
                    );
                }
                // Serve until killed.
                loop {
                    std::thread::sleep(std::time::Duration::from_secs(3600));
                }
            }
            Err(err) => {
                eprintln!("error: failed to bind {addr}: {err}");
                std::process::exit(1);
            }
        }
    }

    match rpwf::cli::run(&command) {
        Ok(out) => print!("{out}"),
        Err(err) => {
            eprintln!("error: {err}");
            std::process::exit(1);
        }
    }
}
